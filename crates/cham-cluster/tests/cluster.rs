//! Cluster integration: a real 3-shard loopback fleet under a
//! [`ClusterClient`].
//!
//! Four end-to-end claims:
//!
//! 1. **Fan-out changes nothing cryptographically**: an HMVP fanned
//!    across shard-held row bands reassembles to packed ciphertexts
//!    *bit-identical* to a single standalone server computing the same
//!    matrix (bands are aligned to multiples of `N`, so each band's
//!    packing is the corresponding slice of the single-node packing).
//! 2. **Replica failover is invisible**: killing a replica mid-run
//!    loses zero requests — the routes quarantine the dead node and the
//!    surviving replica (which holds every band by replication) serves.
//! 3. **Misrouting heals by refresh, not by retry**: a client started
//!    with a stale (rotated) address map gets a typed `WrongShard`,
//!    rebuilds the map from the fleet's own hello answers, and
//!    succeeds — with zero blind retries.
//! 4. **Version interop is bidirectional**: a v3-pinned client runs the
//!    full workload against a v4 shard-configured server (and sees no
//!    cluster block); a v4 client against a v3-era server downgrades
//!    and reads no cluster block.
//! 5. **The fleet self-heals**: a killed replica is condemned by the
//!    heartbeat monitor (feeding the router's quarantine), rejoins
//!    empty on restart, and anti-entropy repair streams its replica
//!    share back until the inventory diff is zero — post-repair
//!    answers bit-identical to pre-kill.
//! 6. **The repair surface is version-gated**: v5 peers run the full
//!    pre-repair workload against a v6 server (hello bodies byte-equal
//!    but for the revision echo) while `StoreList`/`StoreFetch`/segment
//!    transfers are refused typed on both sides of the wire.
//!
//! Everything runs on degree-64 parameters: band alignment is the ring
//! dimension, so small `N` keeps multi-band matrices cheap.

use cham_cluster::{repair, ClusterClient, HealthConfig, HealthMonitor, NodeHealth, Topology};
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::hmvp::{Hmvp, HmvpResult, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::{ChamParams, ChamParamsBuilder};
use cham_serve::protocol::{self, ErrorCode, FrameKind, Hello, Response};
use cham_serve::server::{Server, ServerConfig};
use cham_serve::shard::{HashRing, ShardSpec};
use cham_serve::{ClientConfig, RetryClient, RetryPolicy, ServeClient, ServeError};
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const DEGREE: usize = 64;
const NODES: u16 = 3;
const VNODES: u32 = 128;

struct Fixture {
    params: Arc<ChamParams>,
    sk: SecretKey,
    gkeys: GaloisKeys,
    indices: Vec<usize>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = Arc::new(ChamParamsBuilder::new().degree(DEGREE).build().unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC1A5);
        let sk = SecretKey::generate(&params, &mut rng);
        let max_log = params.max_pack_log();
        let gkeys = GaloisKeys::generate_for_packing(&sk, max_log, &mut rng).unwrap();
        let indices = (1..=max_log).map(|j| (1usize << j) + 1).collect();
        Fixture {
            params,
            sk,
            gkeys,
            indices,
        }
    })
}

fn quick_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        jitter_seed: seed,
        total_deadline: Some(Duration::from_secs(60)),
        ..RetryPolicy::default()
    }
}

/// Starts a `NODES`-shard fleet with `replication`, returning the
/// servers (slot order) and the matching topology.
fn start_fleet(replication: u16, epoch: u64) -> (Vec<Option<Server>>, Topology) {
    let f = fixture();
    let ring = HashRing::new(NODES, VNODES, replication);
    let mut servers = Vec::new();
    for i in 0..NODES {
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 2,
            shard: Some(ShardSpec::new(ring.clone(), i, epoch)),
            node_id: 0xA0 + u64::from(i),
            ..ServerConfig::default()
        };
        servers.push(Some(
            Server::start("127.0.0.1:0", Arc::clone(&f.params), &config).unwrap(),
        ));
    }
    let topology = Topology::new(
        servers
            .iter()
            .map(|s| s.as_ref().unwrap().local_addr().to_string())
            .collect(),
    )
    .unwrap()
    .with_vnodes(VNODES)
    .with_replication(replication)
    .with_epoch(epoch);
    (servers, topology)
}

fn assert_bit_identical(a: &HmvpResult, b: &HmvpResult) {
    assert_eq!(a.len, b.len, "output length diverged");
    assert_eq!(a.packed.len(), b.packed.len(), "packing shape diverged");
    for (i, (x, y)) in a.packed.iter().zip(&b.packed).enumerate() {
        assert_eq!(x.log_count, y.log_count, "packed {i} depth diverged");
        assert_eq!(x.count, y.count, "packed {i} fill diverged");
        assert_eq!(x.ciphertext, y.ciphertext, "packed {i} bits diverged");
    }
}

/// Fan-out over 3 shards is bit-identical to one standalone server.
#[test]
fn sharded_hmvp_is_bit_exact_vs_single_node() {
    let f = fixture();
    let t = f.params.plain_modulus();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA0);
    // 160 rows over a 64-degree ring: bands of 64, 64, 32.
    let matrix = Matrix::random(160, DEGREE, t.value(), &mut rng);
    let v: Vec<u64> = (0..matrix.cols())
        .map(|_| rng.gen_range(0..t.value()))
        .collect();
    let hmvp = Hmvp::from_arc(Arc::clone(&f.params));
    let enc = Encryptor::new(&f.params, &f.sk);
    let dec = Decryptor::new(&f.params, &f.sk);
    let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();

    // Reference: one standalone (shardless) server computing the whole
    // matrix.
    let single = Server::start(
        "127.0.0.1:0",
        Arc::clone(&f.params),
        &ServerConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut sc =
        RetryClient::connect(single.local_addr().to_string(), Arc::clone(&f.params)).unwrap();
    let key_id = sc.load_keys(&f.gkeys, &f.indices).unwrap();
    let matrix_id = sc.load_matrix(&matrix).unwrap();
    let reference = sc.hmvp(key_id, matrix_id, &cts, None).unwrap();
    single.shutdown();

    // Cluster: 3 shards, bands spread by content id.
    let (mut servers, topology) = start_fleet(2, 1);
    let mut cc = ClusterClient::with_config(
        topology,
        Arc::clone(&f.params),
        ClientConfig::default(),
        quick_policy(0xFA0),
    );
    let ckey_id = cc.load_keys(&f.gkeys, &f.indices).unwrap();
    assert_eq!(ckey_id, key_id, "key content ids are address-independent");
    let sharded = cc.load_matrix_sharded(&matrix, DEGREE).unwrap();
    assert_eq!(sharded.bands.len(), 3);
    assert_eq!(
        sharded.bands.iter().map(|b| b.rows).collect::<Vec<_>>(),
        [64, 64, 32]
    );
    let fanned = cc.hmvp_sharded(ckey_id, &sharded, &cts, None).unwrap();

    assert_bit_identical(&reference, &fanned);
    let got = hmvp.decrypt_result(&fanned, &dec).unwrap();
    assert_eq!(got, matrix.mul_vector_mod(&v, t).unwrap());

    for s in &mut servers {
        s.take().unwrap().shutdown();
    }
}

/// Killing a replica mid-run: zero failed requests, failover observed.
#[test]
fn replica_kill_mid_run_loses_no_requests() {
    let f = fixture();
    let t = f.params.plain_modulus();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x6B1);
    let matrix = Matrix::random(192, DEGREE, t.value(), &mut rng);
    let hmvp = Hmvp::from_arc(Arc::clone(&f.params));
    let enc = Encryptor::new(&f.params, &f.sk);
    let dec = Decryptor::new(&f.params, &f.sk);
    let reference_rhs: Vec<Vec<u64>> = (0..8)
        .map(|_| {
            (0..matrix.cols())
                .map(|_| rng.gen_range(0..t.value()))
                .collect()
        })
        .collect();

    let (mut servers, topology) = start_fleet(2, 1);
    let mut cc = ClusterClient::with_config(
        topology,
        Arc::clone(&f.params),
        ClientConfig::default(),
        quick_policy(0x6B1),
    );
    let key_id = cc.load_keys(&f.gkeys, &f.indices).unwrap();
    let sharded = cc.load_matrix_sharded(&matrix, DEGREE).unwrap();
    // Kill the primary of the first band — guaranteed to be serving at
    // least that band when the axe falls.
    let victim = sharded.bands[0].replicas[0];

    for (i, v) in reference_rhs.iter().enumerate() {
        if i == reference_rhs.len() / 2 {
            servers[usize::from(victim)].take().unwrap().shutdown();
        }
        let cts = hmvp.encrypt_vector(v, &enc, &mut rng).unwrap();
        let result = cc.hmvp_sharded(key_id, &sharded, &cts, None).unwrap();
        let got = hmvp.decrypt_result(&result, &dec).unwrap();
        assert_eq!(got, matrix.mul_vector_mod(v, t).unwrap(), "request {i}");
    }

    let stats = cc.stats();
    assert!(
        stats.failovers >= 1,
        "the killed primary was never failed over: {stats:?}"
    );
    // Balance attribution saw the fleet, and nothing after the kill was
    // credited wrongly: only live slots serve.
    assert_eq!(stats.per_node_requests.len(), usize::from(NODES));
    assert!(stats.per_node_requests.iter().sum::<u64>() > 0);

    for s in &mut servers {
        if let Some(s) = s.take() {
            s.shutdown();
        }
    }
}

/// A stale (rotated) address map heals through one typed `WrongShard`
/// and a topology refresh — not a blind retry loop.
#[test]
fn wrong_shard_triggers_reroute_not_retry_loop() {
    let f = fixture();
    let t = f.params.plain_modulus();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57A1E);
    let matrix = Matrix::random(DEGREE, DEGREE, t.value(), &mut rng);
    let hmvp = Hmvp::from_arc(Arc::clone(&f.params));
    let enc = Encryptor::new(&f.params, &f.sk);
    let dec = Decryptor::new(&f.params, &f.sk);

    // Replication 1: exactly one correct home per id, so a rotated map
    // *always* misroutes.
    let (mut servers, topology) = start_fleet(1, 7);
    let mut rotated_nodes = topology.nodes().to_vec();
    rotated_nodes.rotate_left(1);
    let stale = Topology::new(rotated_nodes)
        .unwrap()
        .with_vnodes(VNODES)
        .with_replication(1)
        .with_epoch(0);
    let mut cc = ClusterClient::with_config(
        stale,
        Arc::clone(&f.params),
        ClientConfig::default(),
        quick_policy(0x57A1E),
    );

    let key_id = cc.load_keys(&f.gkeys, &f.indices).unwrap();
    let handle = cc.load_matrix(&matrix).unwrap();
    let v: Vec<u64> = (0..matrix.cols())
        .map(|_| rng.gen_range(0..t.value()))
        .collect();
    let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
    let result = cc.hmvp(key_id, handle.id, &cts, None).unwrap();
    let got = hmvp.decrypt_result(&result, &dec).unwrap();
    assert_eq!(got, matrix.mul_vector_mod(&v, t).unwrap());

    let stats = cc.stats();
    assert!(
        stats.refreshes >= 1,
        "misrouting never triggered a topology refresh: {stats:?}"
    );
    assert_eq!(
        stats.retries, 0,
        "WrongShard must re-route, not blind-retry: {stats:?}"
    );
    // The refreshed map matches the fleet's real slot order and adopted
    // the fleet's epoch.
    assert_eq!(cc.topology().nodes(), topology.nodes());
    assert_eq!(cc.topology().epoch(), 7);

    for s in &mut servers {
        s.take().unwrap().shutdown();
    }
}

/// v3-pinned client against a v4 shard-configured server: downgraded
/// hello without a cluster block, full workload still serves.
#[test]
fn v3_client_runs_against_v4_sharded_server() {
    let f = fixture();
    let t = f.params.plain_modulus();
    // One-slot ring: the server owns every id, so sharding is enforced
    // but never rejects — exactly what a pre-cluster client expects.
    let server = Server::start(
        "127.0.0.1:0",
        Arc::clone(&f.params),
        &ServerConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 2,
            shard: Some(ShardSpec::new(HashRing::new(1, VNODES, 1), 0, 3)),
            node_id: 0xBEEF,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let v3_config = ClientConfig {
        protocol_version: 3,
        ..ClientConfig::default()
    };
    let mut client =
        ServeClient::connect_with(server.local_addr(), Arc::clone(&f.params), &v3_config).unwrap();
    let info = client.server_info();
    assert_eq!(info.version, 3, "server must honor the pinned revision");
    assert_eq!(info.cluster, None, "no cluster block below v4");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x73);
    let matrix = Matrix::random(DEGREE, DEGREE, t.value(), &mut rng);
    let hmvp = Hmvp::from_arc(Arc::clone(&f.params));
    let enc = Encryptor::new(&f.params, &f.sk);
    let dec = Decryptor::new(&f.params, &f.sk);
    let key_id = client.load_keys(&f.gkeys, &f.indices).unwrap();
    let matrix_id = client.load_matrix(&matrix).unwrap();
    let v: Vec<u64> = (0..matrix.cols())
        .map(|_| rng.gen_range(0..t.value()))
        .collect();
    let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
    let result = client.hmvp(key_id, matrix_id, &cts, None).unwrap();
    let got = hmvp.decrypt_result(&result, &dec).unwrap();
    assert_eq!(got, matrix.mul_vector_mod(&v, t).unwrap());

    // A v4 client on the same server *does* see the identity.
    let v4 = ServeClient::connect(server.local_addr(), Arc::clone(&f.params)).unwrap();
    let identity = v4.server_info().cluster.expect("v4 advertises identity");
    assert_eq!(identity.node_id, 0xBEEF);
    assert_eq!(identity.shard_index, 0);
    assert_eq!(identity.shard_count, 1);
    assert_eq!(identity.epoch, 3);
    drop((client, v4));
    server.shutdown();
}

/// v4 client against a v3-era server (no cluster block on the wire):
/// negotiates down, reads no identity, and keeps working.
#[test]
fn v4_client_downgrades_against_v3_server() {
    let f = fixture();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        // A minimal v3-era server: accepts the hello, answers in v3
        // shape (no cluster block exists at that revision).
        let (mut stream, _) = listener.accept().unwrap();
        let (kind, body) = protocol::read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Hello);
        let hello = Hello::from_bytes(&body).unwrap();
        assert_eq!(hello.version, protocol::PROTOCOL_VERSION);
        let resp = Response::Hello {
            workers: 1,
            queue_capacity: 8,
            max_batch: 4,
            version: 3,
            cluster: None,
        };
        protocol::write_frame(&mut stream, FrameKind::Result, &resp.to_bytes()).unwrap();
    });
    let client = ServeClient::connect(addr, Arc::clone(&f.params)).unwrap();
    let info = client.server_info();
    assert_eq!(
        info.version, 3,
        "client must settle on the server's revision"
    );
    assert_eq!(info.cluster, None, "no cluster block exists below v4");
    drop(client);
    handle.join().unwrap();
}

/// The self-healing loop end to end: a replica dies under load (zero
/// failed requests), the heartbeat condemns it and quarantines routing,
/// the node rejoins empty, and anti-entropy repair streams its replica
/// share back over resumable chunks until the inventory diff is zero —
/// with post-repair answers bit-identical to pre-kill.
#[test]
fn killed_replica_rejoins_and_repair_converges() {
    let f = fixture();
    let t = f.params.plain_modulus();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x4EA1);
    // 192 rows over a 64-degree ring: three full bands.
    let matrix = Matrix::random(192, DEGREE, t.value(), &mut rng);
    let hmvp = Hmvp::from_arc(Arc::clone(&f.params));
    let enc = Encryptor::new(&f.params, &f.sk);

    let (mut servers, topology) = start_fleet(2, 1);
    let mut cc = ClusterClient::with_config(
        topology.clone(),
        Arc::clone(&f.params),
        ClientConfig::default(),
        quick_policy(0x4EA1),
    );
    let key_id = cc.load_keys(&f.gkeys, &f.indices).unwrap();
    let sharded = cc.load_matrix_sharded(&matrix, DEGREE).unwrap();
    let band_ids: Vec<u64> = sharded.bands.iter().map(|b| b.id).collect();

    // Fixed ciphertext inputs: encryption is randomized, so bit-level
    // reproducibility must replay the *same* ciphertexts pre- and
    // post-repair (the server-side pipeline is deterministic).
    let cts_list: Vec<_> = (0..3)
        .map(|_| {
            let v: Vec<u64> = (0..matrix.cols())
                .map(|_| rng.gen_range(0..t.value()))
                .collect();
            hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap()
        })
        .collect();
    let reference: Vec<HmvpResult> = cts_list
        .iter()
        .map(|cts| cc.hmvp_sharded(key_id, &sharded, cts, None).unwrap())
        .collect();

    // Kill the primary of the first band.
    let victim = sharded.bands[0].replicas[0];
    let victim_addr = topology.nodes()[usize::from(victim)].clone();
    servers[usize::from(victim)].take().unwrap().shutdown();

    // The heartbeat loop condemns it over real probes — Up -> Suspect
    // -> Down — and the Down verdict feeds the router's quarantine.
    let mut monitor = HealthMonitor::new(
        topology.clone(),
        Arc::clone(&f.params),
        HealthConfig {
            suspect_after: 1,
            down_after: 2,
            recover_after: 1,
            probe_timeout: Duration::from_millis(200),
            ..HealthConfig::default()
        },
    );
    let t1 = monitor.tick();
    assert_eq!(t1.len(), 1);
    assert_eq!((t1[0].slot, t1[0].to), (victim, NodeHealth::Suspect));
    let t2 = monitor.tick();
    assert_eq!(t2.len(), 1);
    assert_eq!(
        (t2[0].from, t2[0].to),
        (NodeHealth::Suspect, NodeHealth::Down)
    );
    assert_eq!(monitor.down_slots(), vec![victim]);
    for tr in &t2 {
        if tr.to == NodeHealth::Down {
            assert!(
                cc.quarantine_node(&tr.addr, None) >= 1,
                "the dead node was in no route"
            );
        }
    }

    // Degraded window: every request still answers, bit-identical.
    for (cts, expect) in cts_list.iter().zip(&reference) {
        let got = cc.hmvp_sharded(key_id, &sharded, cts, None).unwrap();
        assert_bit_identical(expect, &got);
    }

    // Rejoin: same slot and node id, fresh (empty) state, new port —
    // loopback tests cannot rebind the old port without tripping
    // TIME_WAIT, so the topology is patched to the new address.
    let ring = HashRing::new(NODES, VNODES, 2);
    let restarted = Server::start(
        "127.0.0.1:0",
        Arc::clone(&f.params),
        &ServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 2,
            shard: Some(ShardSpec::new(ring, victim, 1)),
            node_id: 0xA0 + u64::from(victim),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let new_addr = restarted.local_addr().to_string();
    servers[usize::from(victim)] = Some(restarted);
    let mut nodes2 = topology.nodes().to_vec();
    nodes2[usize::from(victim)] = new_addr.clone();
    let topology2 = Topology::new(nodes2)
        .unwrap()
        .with_vnodes(VNODES)
        .with_replication(2)
        .with_epoch(1);

    // Health sees it come back sticky: Down -> Suspect on the first
    // answered probe, Up only after the recover streak. The monitor
    // still probes the old address, so the probe maps it to the new
    // port — exactly what a same-port restart looks like to it.
    let mut probe = |addr: &str| {
        let real = if addr == victim_addr {
            new_addr.as_str()
        } else {
            addr
        };
        ServeClient::connect_with(real, Arc::clone(&f.params), &ClientConfig::default())
            .and_then(|mut c| c.ping())
            .is_ok()
    };
    let back = monitor.tick_with(&mut probe);
    assert_eq!(back.len(), 1);
    assert_eq!(
        (back[0].from, back[0].to),
        (NodeHealth::Down, NodeHealth::Suspect)
    );
    let back = monitor.tick_with(&mut probe);
    assert_eq!(back.len(), 1);
    assert_eq!(
        (back[0].from, back[0].to),
        (NodeHealth::Suspect, NodeHealth::Up)
    );
    assert!(monitor.down_slots().is_empty());

    // Anti-entropy: the first plan is exactly "backfill the rejoiner",
    // then rounds run until one plans nothing.
    let repair_cfg = ClientConfig::default();
    let inv = repair::fetch_inventories(&topology2, &f.params, &repair_cfg);
    let pre = repair::plan(&topology2.ring(), &inv, &band_ids);
    assert!(!pre.is_converged(), "the empty rejoiner must need repair");
    assert!(
        pre.transfers.iter().all(|tr| tr.target == victim),
        "survivors lost nothing: {:?}",
        pre.transfers
    );

    let mut repaired = 0u64;
    let mut chunks_sent = 0u64;
    let mut rounds = 0;
    loop {
        let (plan, report) = repair::repair_round(&topology2, &f.params, &repair_cfg);
        repaired += report.repaired_segments;
        chunks_sent += report.chunks_sent;
        assert_eq!(report.unsourced, 0, "survivors hold every band");
        if plan.is_converged() {
            break;
        }
        rounds += 1;
        assert!(rounds < 8, "repair failed to converge");
    }
    assert!(repaired > 0, "the rejoin must transfer segments");
    assert!(chunks_sent > 0, "repair must ride the chunked path");

    // Converged exactly: the diff against the known upload set is
    // empty, and the rejoined node holds precisely its replica share.
    let inv_after = repair::fetch_inventories(&topology2, &f.params, &repair_cfg);
    assert!(repair::plan(&topology2.ring(), &inv_after, &band_ids).is_converged());
    let victim_inv: BTreeSet<u64> = inv_after[usize::from(victim)]
        .clone()
        .unwrap()
        .into_iter()
        .collect();
    let ring2 = topology2.ring();
    for &id in &band_ids {
        assert_eq!(
            victim_inv.contains(&id),
            ring2.replicas(id).contains(&victim),
            "band {id:#x} placement after repair"
        );
    }

    // And it serves: a fresh client on the patched topology replays the
    // same ciphertexts and gets bits identical to the pre-kill fleet —
    // with the rejoined node actually answering (it is the primary of
    // at least band 0).
    let mut cc2 = ClusterClient::with_config(
        topology2,
        Arc::clone(&f.params),
        ClientConfig::default(),
        quick_policy(0x4EA2),
    );
    assert_eq!(cc2.load_keys(&f.gkeys, &f.indices).unwrap(), key_id);
    for (cts, expect) in cts_list.iter().zip(&reference) {
        let got = cc2.hmvp_sharded(key_id, &sharded, cts, None).unwrap();
        assert_bit_identical(expect, &got);
    }
    let served = cc2.stats().per_node_requests;
    assert!(
        served[usize::from(victim)] > 0,
        "the rejoined node never served: {served:?}"
    );

    for s in &mut servers {
        if let Some(s) = s.take() {
            s.shutdown();
        }
    }
}

/// v5-pinned client against a v6 server: the full pre-repair workload
/// serves, the repair surface is version-gated on *both* sides of the
/// wire, and the v5/v6 hello response bodies agree on every byte except
/// the two-byte revision echo.
#[test]
fn v5_client_runs_against_v6_server() {
    let f = fixture();
    let t = f.params.plain_modulus();
    // One-slot ring so the hello carries a full cluster block — the
    // byte-shape comparison below then covers the identity fields too.
    let server = Server::start(
        "127.0.0.1:0",
        Arc::clone(&f.params),
        &ServerConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 2,
            shard: Some(ShardSpec::new(HashRing::new(1, VNODES, 1), 0, 9)),
            node_id: 0xCAFE,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let v5_config = ClientConfig {
        protocol_version: 5,
        ..ClientConfig::default()
    };
    let mut client =
        ServeClient::connect_with(server.local_addr(), Arc::clone(&f.params), &v5_config).unwrap();
    assert_eq!(client.server_info().version, 5);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x55);
    let matrix = Matrix::random(DEGREE, DEGREE, t.value(), &mut rng);
    let hmvp = Hmvp::from_arc(Arc::clone(&f.params));
    let enc = Encryptor::new(&f.params, &f.sk);
    let dec = Decryptor::new(&f.params, &f.sk);
    let key_id = client.load_keys(&f.gkeys, &f.indices).unwrap();
    let matrix_id = client.load_matrix(&matrix).unwrap();
    let v: Vec<u64> = (0..matrix.cols())
        .map(|_| rng.gen_range(0..t.value()))
        .collect();
    let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
    let result = client.hmvp(key_id, matrix_id, &cts, None).unwrap();
    assert_eq!(
        hmvp.decrypt_result(&result, &dec).unwrap(),
        matrix.mul_vector_mod(&v, t).unwrap()
    );

    // Client-side gate: the repair surface refuses below v6 without
    // touching the wire.
    assert!(matches!(
        client.store_list(),
        Err(ServeError::Incompatible(_))
    ));
    assert!(matches!(
        client.store_fetch(1),
        Err(ServeError::Incompatible(_))
    ));

    // Raw handshakes at both revisions, for the server-side gate and
    // the byte-shape pin.
    let hello_at = |version: u16| {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let hello = Hello {
            version,
            ..Hello::for_params(&f.params)
        };
        protocol::write_frame(&mut stream, FrameKind::Hello, &hello.to_bytes()).unwrap();
        let (kind, body) = protocol::read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Result);
        (stream, body)
    };

    // Server-side gate: a misbehaving v5 peer that sends `StoreList`
    // anyway gets a typed Incompatible, not a hang or a close.
    let (mut raw5, body5) = hello_at(5);
    protocol::write_frame(&mut raw5, FrameKind::StoreList, &[]).unwrap();
    let (kind, body) = protocol::read_frame(&mut raw5).unwrap();
    assert_eq!(kind, FrameKind::Error);
    let (code, message) = protocol::error_from_body(&body).unwrap();
    assert_eq!(code, ErrorCode::Incompatible, "{message}");

    // Byte-exact hello interop: bodies identical but for the revision
    // echo at offsets 11..13.
    let (_raw6, body6) = hello_at(6);
    assert_eq!(
        body5.len(),
        body6.len(),
        "hello shape diverged across v5/v6"
    );
    assert_eq!(body5[..11], body6[..11]);
    assert_eq!(body5[13..], body6[13..]);
    assert_eq!(u16::from_le_bytes([body5[11], body5[12]]), 5);
    assert_eq!(u16::from_le_bytes([body6[11], body6[12]]), 6);
    match Response::from_bytes(&body6, &f.params).unwrap() {
        Response::Hello {
            version, cluster, ..
        } => {
            assert_eq!(version, 6);
            let id = cluster.expect("shard-configured server advertises identity");
            assert_eq!((id.node_id, id.epoch), (0xCAFE, 9));
        }
        other => panic!("unexpected hello reply: {other:?}"),
    }

    drop(client);
    server.shutdown();
}

/// v6 client against a v5-era server: negotiates down to 5 and the
/// repair surface turns off client-side — no wire traffic (the server
/// thread below answers exactly one hello and exits).
#[test]
fn v6_client_downgrades_against_v5_server() {
    let f = fixture();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let (kind, body) = protocol::read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Hello);
        let hello = Hello::from_bytes(&body).unwrap();
        assert_eq!(hello.version, protocol::PROTOCOL_VERSION);
        let resp = Response::Hello {
            workers: 1,
            queue_capacity: 8,
            max_batch: 4,
            version: 5,
            cluster: None,
        };
        protocol::write_frame(&mut stream, FrameKind::Result, &resp.to_bytes()).unwrap();
    });
    let mut client = ServeClient::connect(addr, Arc::clone(&f.params)).unwrap();
    assert_eq!(
        client.server_info().version,
        5,
        "client must settle on the server's revision"
    );
    assert!(matches!(
        client.store_list(),
        Err(ServeError::Incompatible(_))
    ));
    assert!(matches!(
        client.load_segment_streamed(0x1, &[0u8; 16], 8),
        Err(ServeError::Incompatible(_))
    ));
    drop(client);
    handle.join().unwrap();
}
