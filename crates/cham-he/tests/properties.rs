//! Property-based tests for the HE layer: scheme correctness and the
//! conversion algebra under randomized inputs.

use cham_he::encoding::{BatchEncoder, CoeffEncoder};
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::extract::{extract_lwe, lwe_to_rlwe};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::ops::{add_plain, mul_plain, mul_plain_scalar, rescale};
use cham_he::params::ChamParams;
use cham_he::wire;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    params: ChamParams,
    enc: Encryptor,
    dec: Decryptor,
    gkeys: GaloisKeys,
    coder: CoeffEncoder,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        let coder = CoeffEncoder::new(&params);
        Fixture {
            params,
            enc,
            dec,
            gkeys,
            coder,
        }
    })
}

fn tval() -> u64 {
    65537
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn encrypt_decrypt_roundtrip(vals in vec(0..tval(), 1..64), seed in any::<u64>()) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pt = fix.coder.encode_vector(&vals).unwrap();
        for ct in [fix.enc.encrypt(&pt, &mut rng), fix.enc.encrypt_augmented(&pt, &mut rng)] {
            let out = fix.dec.decrypt(&ct);
            prop_assert_eq!(&out.values()[..vals.len()], &vals[..]);
        }
    }

    #[test]
    fn ciphertext_algebra_is_homomorphic(
        xs in vec(0..tval(), 8),
        ys in vec(0..tval(), 8),
        s in 0u64..256,
        seed in any::<u64>(),
    ) {
        let fix = fixture();
        let t = fix.params.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cx = fix.enc.encrypt_augmented(&fix.coder.encode_vector(&xs).unwrap(), &mut rng);
        let cy = fix.enc.encrypt_augmented(&fix.coder.encode_vector(&ys).unwrap(), &mut rng);
        // ct + ct
        let sum = fix.dec.decrypt(&cx.add(&cy).unwrap());
        // ct + pt
        let psum = fix.dec.decrypt(&add_plain(&cx, &fix.coder.encode_vector(&ys).unwrap(), &fix.params).unwrap());
        // s * ct
        let scaled = fix.dec.decrypt(&mul_plain_scalar(&cx, s, &fix.params));
        for i in 0..8 {
            prop_assert_eq!(sum.values()[i], t.add(xs[i], ys[i]));
            prop_assert_eq!(psum.values()[i], t.add(xs[i], ys[i]));
            prop_assert_eq!(scaled.values()[i], t.mul(s, xs[i]));
        }
    }

    #[test]
    fn dot_product_and_rescale(row in vec(0..tval(), 16), v in vec(0..tval(), 16), seed in any::<u64>()) {
        let fix = fixture();
        let t = fix.params.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = fix.enc.encrypt_augmented(&fix.coder.encode_vector(&v).unwrap(), &mut rng);
        let prod = mul_plain(&ct, &fix.coder.encode_row(&row).unwrap(), &fix.params).unwrap();
        let rescaled = rescale(&prod, &fix.params).unwrap();
        let expect = row.iter().zip(&v).fold(0u64, |acc, (&a, &b)| t.add(acc, t.mul(a, b)));
        prop_assert_eq!(fix.dec.decrypt(&rescaled).values()[0], expect);
    }

    #[test]
    fn extract_any_coefficient(vals in vec(0..tval(), 32), idx in 0usize..32, seed in any::<u64>()) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = fix.enc.encrypt(&fix.coder.encode_vector(&vals).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, idx).unwrap();
        prop_assert_eq!(fix.dec.decrypt_lwe(&lwe), vals[idx]);
        // Re-importing keeps the payload.
        let back = lwe_to_rlwe(&lwe);
        prop_assert_eq!(fix.dec.decrypt(&back).values()[0], vals[idx]);
        // And a singleton pack (using the fixture's galois keys) is a
        // well-formed RLWE ciphertext of the same value.
        let packed = cham_he::pack::pack_lwes(std::slice::from_ref(&lwe), &fix.gkeys, &fix.params).unwrap();
        let pt = fix.dec.decrypt(&packed.ciphertext);
        prop_assert_eq!(packed.decode(&pt, &fix.params).unwrap(), vec![vals[idx]]);
    }

    #[test]
    fn galois_then_inverse_galois_is_identity(vals in vec(0..tval(), 16), seed in any::<u64>()) {
        let fix = fixture();
        let n = fix.params.degree();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // k = 2^j + 1 has inverse k' with k·k' ≡ 1 (mod 2N); generate both keys.
        let k = 5usize;
        let k_inv = {
            // invert 5 mod 2N by brute force (odd group is small).
            (1..2 * n).step_by(2).find(|&x| (x * k) % (2 * n) == 1).unwrap()
        };
        let sk_rng = &mut rand::rngs::StdRng::seed_from_u64(0xBEEF);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, sk_rng);
        let keys = GaloisKeys::generate(&sk, &[k, k_inv], &mut rng).unwrap();
        let ct = fix.enc.encrypt(&fix.coder.encode_vector(&vals).unwrap(), &mut rng);
        let rot = cham_he::ops::apply_galois(&ct, k, &keys, &fix.params).unwrap();
        let back = cham_he::ops::apply_galois(&rot, k_inv, &keys, &fix.params).unwrap();
        let out = fix.dec.decrypt(&back);
        prop_assert_eq!(&out.values()[..16], &vals[..]);
    }

    #[test]
    fn wire_roundtrip_random_ciphertexts(vals in vec(0..tval(), 8), seed in any::<u64>()) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = fix.enc.encrypt(&fix.coder.encode_vector(&vals).unwrap(), &mut rng);
        let back = wire::rlwe_from_bytes(&wire::rlwe_to_bytes(&ct), &fix.params).unwrap();
        let out = fix.dec.decrypt(&back);
        prop_assert_eq!(&out.values()[..8], &vals[..]);
        let lwe = extract_lwe(&ct, 0).unwrap();
        let lback = wire::lwe_from_bytes(&wire::lwe_to_bytes(&lwe), &fix.params).unwrap();
        prop_assert_eq!(lback, lwe);
    }

    #[test]
    fn batch_encoder_is_ring_iso(xs in vec(0..tval(), 256), ys in vec(0..tval(), 256)) {
        let fix = fixture();
        let t = fix.params.plain_modulus();
        let enc = BatchEncoder::new(&fix.params).unwrap();
        let px = enc.encode(&xs).unwrap();
        let py = enc.encode(&ys).unwrap();
        // Slot-wise addition == coefficient-wise addition of encodings.
        let sum_pt: Vec<u64> = px.values().iter().zip(py.values()).map(|(&a, &b)| t.add(a, b)).collect();
        let sums = enc.decode(&cham_he::encoding::Plaintext::from_values(sum_pt)).unwrap();
        for i in 0..256 {
            prop_assert_eq!(sums[i], t.add(xs[i], ys[i]));
        }
    }
}

#[test]
fn galois_keys_are_independent_of_fixture() {
    // The fixture secret is reconstructible from its seed — sanity-check
    // that generate() is deterministic given the rng.
    let params = ChamParams::insecure_test_default().unwrap();
    let a = SecretKey::generate(&params, &mut rand::rngs::StdRng::seed_from_u64(0xBEEF));
    let b = SecretKey::generate(&params, &mut rand::rngs::StdRng::seed_from_u64(0xBEEF));
    assert_eq!(a.coeffs(), b.coeffs());
}
