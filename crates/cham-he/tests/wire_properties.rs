//! Property tests for every `cham_he::wire` codec: randomized round-trips
//! plus rejection of truncated and corrupted inputs.
//!
//! Round-trips are asserted two ways: structural equality where the type
//! supports it (RLWE/LWE), and re-serialization equality everywhere
//! (`to_bytes(from_bytes(b)) == b`), which also pins the byte layout —
//! a codec that "round-trips" by normalizing would fail it.

use cham_he::encoding::CoeffEncoder;
use cham_he::encrypt::Encryptor;
use cham_he::extract::extract_lwe;
use cham_he::keys::{GaloisKeys, KeySwitchKey, SecretKey};
use cham_he::params::ChamParams;
use cham_he::wire;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    params: ChamParams,
    enc: Encryptor,
    coder: CoeffEncoder,
    sk: SecretKey,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4A7);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        Fixture {
            params,
            enc,
            coder,
            sk,
        }
    })
}

fn tval() -> u64 {
    65537
}

/// Every strict prefix of a valid payload must be rejected: the reader
/// demands exact consumption, so there is no cut point that parses.
fn assert_all_truncations_fail<T>(
    bytes: &[u8],
    cut: usize,
    parse: impl Fn(&[u8]) -> cham_he::Result<T>,
) -> std::result::Result<(), TestCaseError> {
    let cut = cut % bytes.len();
    prop_assert!(
        parse(&bytes[..cut]).is_err(),
        "prefix of length {cut}/{} parsed",
        bytes.len()
    );
    // Trailing garbage is rejected too.
    let mut extended = bytes.to_vec();
    extended.push(0);
    prop_assert!(parse(&extended).is_err(), "trailing byte accepted");
    Ok(())
}

/// Header layout: `[magic u16][version u8][kind u8][degree u32]
/// [limb_count u8][moduli u64 …]`. Corrupting any of these fields must
/// be rejected. Payloads without a modulus chain (plaintext) pass
/// `with_chain = false` since offset 9 is already payload there.
fn assert_header_corruptions_fail<T>(
    bytes: &[u8],
    with_chain: bool,
    parse: impl Fn(&[u8]) -> cham_he::Result<T>,
) -> std::result::Result<(), TestCaseError> {
    let mut offsets = vec![
        (0, "magic"),
        (2, "version"),
        (3, "kind"),
        (4, "degree"),
        (8, "limb count"),
    ];
    if with_chain {
        offsets.push((9, "modulus value"));
    }
    for (offset, what) in offsets {
        let mut bad = bytes.to_vec();
        bad[offset] ^= 0xFF;
        prop_assert!(parse(&bad).is_err(), "corrupted {what} accepted");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rlwe_roundtrip_and_rejection(
        vals in vec(0..tval(), 1..48),
        augmented in any::<bool>(),
        seed in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pt = fix.coder.encode_vector(&vals).unwrap();
        let ct = if augmented {
            fix.enc.encrypt_augmented(&pt, &mut rng)
        } else {
            fix.enc.encrypt(&pt, &mut rng)
        };
        let bytes = wire::rlwe_to_bytes(&ct);
        let back = wire::rlwe_from_bytes(&bytes, &fix.params).unwrap();
        prop_assert_eq!(&back, &ct);
        prop_assert_eq!(wire::rlwe_to_bytes(&back), bytes.clone());

        assert_all_truncations_fail(&bytes, cut, |b| wire::rlwe_from_bytes(b, &fix.params))?;
        assert_header_corruptions_fail(&bytes, true, |b| wire::rlwe_from_bytes(b, &fix.params))?;
        // An out-of-range coefficient (≥ modulus) must be rejected, not
        // silently reduced: the first payload coefficient lives right
        // after the header.
        let header = 9 + 8 * usize::from(bytes[8]);
        let mut bad = bytes.clone();
        bad[header..header + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        prop_assert!(wire::rlwe_from_bytes(&bad, &fix.params).is_err());
    }

    #[test]
    fn lwe_roundtrip_and_rejection(
        vals in vec(0..tval(), 1..48),
        index in any::<usize>(),
        seed in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pt = fix.coder.encode_vector(&vals).unwrap();
        let ct = fix.enc.encrypt(&pt, &mut rng);
        let lwe = extract_lwe(&ct, index % fix.params.degree()).unwrap();
        let bytes = wire::lwe_to_bytes(&lwe);
        let back = wire::lwe_from_bytes(&bytes, &fix.params).unwrap();
        prop_assert_eq!(&back, &lwe);
        prop_assert_eq!(wire::lwe_to_bytes(&back), bytes.clone());

        assert_all_truncations_fail(&bytes, cut, |b| wire::lwe_from_bytes(b, &fix.params))?;
        assert_header_corruptions_fail(&bytes, true, |b| wire::lwe_from_bytes(b, &fix.params))?;
    }

    #[test]
    fn plaintext_roundtrip_and_rejection(
        vals in vec(0..tval(), 1..48),
        cut in any::<usize>(),
    ) {
        let fix = fixture();
        let pt = fix.coder.encode_vector(&vals).unwrap();
        let bytes = wire::plaintext_to_bytes(&pt);
        let back = wire::plaintext_from_bytes(&bytes, &fix.params).unwrap();
        // Plaintext has no PartialEq; byte-level identity pins both the
        // decode and the layout.
        prop_assert_eq!(wire::plaintext_to_bytes(&back), bytes.clone());
        prop_assert_eq!(&back.values()[..vals.len()], &vals[..]);

        assert_all_truncations_fail(&bytes, cut, |b| wire::plaintext_from_bytes(b, &fix.params))?;
        assert_header_corruptions_fail(&bytes, false, |b| wire::plaintext_from_bytes(b, &fix.params))?;
        // An out-of-range value (≥ t) must be rejected, not reduced.
        let mut bad = bytes.clone();
        bad[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        prop_assert!(wire::plaintext_from_bytes(&bad, &fix.params).is_err());
    }

    #[test]
    fn ksk_roundtrip_and_rejection(seed in any::<u64>(), cut in any::<usize>()) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ksk = KeySwitchKey::generate(&fix.sk, fix.sk.coeffs(), &mut rng).unwrap();
        let bytes = wire::ksk_to_bytes(&ksk);
        let back = wire::ksk_from_bytes(&bytes, &fix.params).unwrap();
        prop_assert_eq!(wire::ksk_to_bytes(&back), bytes.clone());

        assert_all_truncations_fail(&bytes, cut, |b| wire::ksk_from_bytes(b, &fix.params))?;
        assert_header_corruptions_fail(&bytes, true, |b| wire::ksk_from_bytes(b, &fix.params))?;
    }

    #[test]
    fn galois_keys_roundtrip_and_rejection(
        max_log in 1u32..4,
        seed in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gkeys = GaloisKeys::generate_for_packing(&fix.sk, max_log, &mut rng).unwrap();
        let indices: Vec<usize> = (1..=max_log).map(|j| (1usize << j) + 1).collect();
        let bytes = wire::galois_keys_to_bytes(&gkeys, &indices).unwrap();
        let back = wire::galois_keys_from_bytes(&bytes, &fix.params).unwrap();
        prop_assert_eq!(back.len(), indices.len());
        for &i in &indices {
            prop_assert!(back.contains(i));
        }
        prop_assert_eq!(wire::galois_keys_to_bytes(&back, &indices).unwrap(), bytes.clone());

        // Serializing an index the set does not hold must fail.
        prop_assert!(wire::galois_keys_to_bytes(&gkeys, &[3 + (1 << 5)]).is_err());

        assert_all_truncations_fail(&bytes, cut, |b| {
            wire::galois_keys_from_bytes(b, &fix.params)
        })?;
        // The set has its own outer layout: [magic u16][version u8]
        // [kind u8][count u32], then per key [index u64][len u32][ksk].
        // (Corrupting the index byte at offset 8 is *valid* — it just
        // names a different automorphism — so probe the structural
        // fields: magic, version, kind, count, the inner ksk length,
        // and the embedded ksk's own header.)
        for (offset, what) in [
            (0usize, "magic"),
            (2, "version"),
            (3, "kind"),
            (4, "count"),
            (16, "ksk length"),
            (20, "embedded ksk magic"),
        ] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0xFF;
            prop_assert!(
                wire::galois_keys_from_bytes(&bad, &fix.params).is_err(),
                "corrupted {what} accepted"
            );
        }
    }
}
