//! Parallel-equivalence suite for the cham-he entry points that ride the
//! `cham-pool` thread pool: the HMVP dot-product phase, the batched
//! service dispatch, key-switching, and the LWE→RLWE pack tree.
//!
//! Each test computes a *sequential twin* on a single-thread pool (the
//! pool's inline fast path — identical code, no tasks queued) and asserts
//! **bit-exact** equality at pool sizes {1, 2, 3, 7, 8}. HE ciphertexts
//! make good witnesses here: a single flipped bit anywhere in a limb
//! shows up directly in the comparison, long before decryption.

use cham_he::ciphertext::RlweCiphertext;
use cham_he::encrypt::Encryptor;
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, KeySwitchKey, SecretKey};
use cham_he::ops::keyswitch_mask;
use cham_he::pack::pack_lwes;
use cham_he::params::ChamParams;
use cham_pool::ThreadPool;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 5] = [1, 2, 3, 7, 8];

struct Fixture {
    params: ChamParams,
    sk: SecretKey,
    enc: Encryptor,
    gkeys: GaloisKeys,
    rng: rand::rngs::StdRng,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let params = ChamParams::insecure_test_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
    Fixture {
        params,
        sk,
        enc,
        gkeys,
        rng,
    }
}

fn sequential<R>(f: impl FnOnce() -> R) -> R {
    ThreadPool::new(1).install(f)
}

#[test]
fn dot_products_bit_exact_across_pool_sizes() {
    let mut f = fixture(0x5EED_0001);
    let t = f.params.plain_modulus();
    // 37 rows (odd, larger than any tested pool) over 2 column tiles.
    let a = Matrix::random(37, 300, t.value(), &mut f.rng);
    let v: Vec<u64> = (0..300).map(|_| f.rng.gen_range(0..t.value())).collect();
    let hmvp = Hmvp::new(&f.params);
    let cts = hmvp.encrypt_vector(&v, &f.enc, &mut f.rng).unwrap();
    let em = hmvp.encode_matrix(&a).unwrap();
    let expect = sequential(|| hmvp.dot_products(&em, &cts).unwrap());
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        // Cap = pool size, and an uncapped variant: both must agree with
        // the serial twin bit for bit.
        let capped = pool.install(|| hmvp.dot_products_parallel(&em, &cts, threads).unwrap());
        let uncapped = pool.install(|| hmvp.dot_products_parallel(&em, &cts, usize::MAX).unwrap());
        assert_eq!(capped, expect, "capped threads={threads}");
        assert_eq!(uncapped, expect, "uncapped threads={threads}");
    }
}

#[test]
fn multiply_many_bit_exact_across_pool_sizes() {
    let mut f = fixture(0x5EED_0002);
    let t = f.params.plain_modulus();
    let a = Matrix::random(12, 300, t.value(), &mut f.rng);
    let hmvp = Hmvp::from_arc(Arc::new(f.params.clone()));
    let em = hmvp.encode_matrix(&a).unwrap();
    let inputs: Vec<Vec<RlweCiphertext>> = (0..5)
        .map(|_| {
            let v: Vec<u64> = (0..300).map(|_| f.rng.gen_range(0..t.value())).collect();
            hmvp.encrypt_vector(&v, &f.enc, &mut f.rng).unwrap()
        })
        .collect();
    let expect = sequential(|| {
        inputs
            .iter()
            .map(|cts| hmvp.multiply(&em, cts, &f.gkeys).unwrap())
            .collect::<Vec<_>>()
    });
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let got = pool.install(|| hmvp.multiply_many(&em, &inputs, &f.gkeys, threads).unwrap());
        assert_eq!(got.len(), expect.len(), "threads={threads}");
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.len, e.len, "threads={threads}");
            assert_eq!(g.packed.len(), e.packed.len(), "threads={threads}");
            for (gp, ep) in g.packed.iter().zip(&e.packed) {
                assert_eq!(gp.ciphertext, ep.ciphertext, "threads={threads}");
                assert_eq!(gp.log_count, ep.log_count, "threads={threads}");
                assert_eq!(gp.count, ep.count, "threads={threads}");
            }
        }
    }
}

#[test]
fn keyswitch_bit_exact_across_pool_sizes() {
    let mut f = fixture(0x5EED_0003);
    let ksk = KeySwitchKey::generate(&f.sk, f.sk.coeffs(), &mut f.rng).unwrap();
    let coder = cham_he::encoding::CoeffEncoder::new(&f.params);
    let ct = f
        .enc
        .encrypt(&coder.encode_vector(&[42, 17, 999]).unwrap(), &mut f.rng);
    let expect = sequential(|| keyswitch_mask(ct.a(), &ksk, &f.params).unwrap());
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let got = pool.install(|| keyswitch_mask(ct.a(), &ksk, &f.params).unwrap());
        assert_eq!(got, expect, "threads={threads}");
    }
}

#[test]
fn pack_tree_bit_exact_across_pool_sizes() {
    let mut f = fixture(0x5EED_0004);
    let t = f.params.plain_modulus();
    let coder = cham_he::encoding::CoeffEncoder::new(&f.params);
    // 11 inputs: padded to 16, a 4-level tree with odd leftovers.
    let lwes: Vec<_> = (0..11)
        .map(|_| {
            let v = f.rng.gen_range(0..t.value());
            let ct = f
                .enc
                .encrypt(&coder.encode_vector(&[v]).unwrap(), &mut f.rng);
            cham_he::extract::extract_lwe(&ct, 0).unwrap()
        })
        .collect();
    let expect = sequential(|| pack_lwes(&lwes, &f.gkeys, &f.params).unwrap());
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let got = pool.install(|| pack_lwes(&lwes, &f.gkeys, &f.params).unwrap());
        assert_eq!(got.ciphertext, expect.ciphertext, "threads={threads}");
        assert_eq!(got.log_count, expect.log_count, "threads={threads}");
        assert_eq!(got.count, expect.count, "threads={threads}");
    }
}
