//! End-to-end SIMD dispatch equivalence: the full HMVP pipeline (encrypt →
//! encode → dot phase → rescale → pack) must produce byte-identical
//! ciphertexts whether the process runs on the scalar backend or whatever
//! `CHAM_SIMD=auto` resolves to on this host.
//!
//! The backend is process-global and captured by every `NttTable` at
//! construction, so each arm pins the global with `Backend::force` and
//! rebuilds the entire fixture (params, keys, Hmvp) from the same seed —
//! exactly what two separate `CHAM_SIMD=scalar` / `=auto` processes would
//! compute.

use cham_he::encrypt::Encryptor;
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::ChamParams;
use cham_math::Backend;
use rand::{Rng, SeedableRng};

/// Runs the whole HMVP pipeline under one pinned backend and returns the
/// packed result ciphertexts plus the decoded product for sanity.
fn run_pipeline(backend: Backend, seed: u64) -> Vec<Vec<u64>> {
    Backend::force(backend);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let params = ChamParams::insecure_test_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
    let t = params.plain_modulus();
    let a = Matrix::random(19, 300, t.value(), &mut rng);
    let v: Vec<u64> = (0..300).map(|_| rng.gen_range(0..t.value())).collect();
    let hmvp = Hmvp::new(&params);
    let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
    let em = hmvp.encode_matrix(&a).unwrap();
    let out = hmvp.multiply(&em, &cts, &gkeys).unwrap();
    // Serialize every packed ciphertext's limbs into flat words — the
    // "ciphertext bytes" the dispatch contract promises are identical.
    out.packed
        .iter()
        .flat_map(|p| {
            let ct = &p.ciphertext;
            [ct.a(), ct.b()].into_iter().map(|poly| {
                poly.limbs()
                    .iter()
                    .flat_map(|l| l.coeffs().iter().copied())
                    .collect::<Vec<u64>>()
            })
        })
        .collect()
}

#[test]
fn scalar_and_auto_produce_identical_ciphertext_bytes() {
    const SEED: u64 = 0x0051_D0D1;
    let scalar = run_pipeline(Backend::Scalar, SEED);
    let auto = run_pipeline(Backend::detect_auto(), SEED);
    assert!(!scalar.is_empty());
    assert_eq!(
        scalar,
        auto,
        "CHAM_SIMD=scalar and =auto diverged (auto={})",
        Backend::detect_auto()
    );
    // Also pin the portable two-lane backend, available on every host.
    let neon = run_pipeline(Backend::Neon, SEED);
    assert_eq!(scalar, neon, "CHAM_SIMD=scalar and =neon diverged");
    // Leave the process default restored for any tests that follow.
    Backend::force(Backend::detect_auto());
}
