//! Encryption, decryption, and the noise meter.
//!
//! Fresh HMVP inputs are encrypted over the *augmented* basis `Q·p` with
//! scale `Δ_aug = ⌊Qp/t⌋`; the dot-product pipeline's rescale stage divides
//! by `p`, landing on a normal-basis ciphertext with scale `≈ ⌊Q/t⌋`
//! (paper §III-A stage-4, "reduce the noise introduced by polynomial
//! multiplication").
//!
//! The noise meter computes the *exact* invariant noise via CRT lifting —
//! this is how the repository checks the paper's "30 bit before rescale,
//! 26 bit after" claim quantitatively (see `tests/` and EXPERIMENTS.md).

use crate::ciphertext::{LweCiphertext, RlweCiphertext};
use crate::encoding::Plaintext;
use crate::keys::SecretKey;
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::rns::{Form, RnsContext, RnsPoly};
use cham_math::sampling::{noise_rns_poly, ternary_rns_poly, uniform_rns_poly};
use rand::Rng;

/// An RLWE public key: a transparent encryption of zero over the augmented
/// basis.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// `b = −(a·s) + e`, NTT form, augmented basis.
    b: RnsPoly,
    /// Uniform `a`, NTT form, augmented basis.
    a: RnsPoly,
}

impl PublicKey {
    /// Derives a public key from a secret key.
    pub fn generate<R: Rng + ?Sized>(sk: &SecretKey, rng: &mut R) -> Self {
        let aug = sk.params().augmented_context();
        let mut a = uniform_rns_poly(aug, rng);
        a.to_ntt();
        let mut e = noise_rns_poly(aug, rng);
        e.to_ntt();
        let b = e
            .sub(&a.mul_pointwise(sk.s_aug_ntt()).expect("matching contexts"))
            .expect("matching contexts");
        Self { b, a }
    }
}

/// Encrypts plaintexts under a secret (or public) key.
#[derive(Debug, Clone)]
pub struct Encryptor {
    params: ChamParams,
    sk: SecretKey,
}

impl Encryptor {
    /// Creates an encryptor bound to a secret key.
    pub fn new(params: &ChamParams, sk: &SecretKey) -> Self {
        Self {
            params: params.clone(),
            sk: sk.clone(),
        }
    }

    /// Embeds `Δ_basis · μ` into the given context.
    fn scaled_plaintext(&self, pt: &Plaintext, ctx: &RnsContext) -> Result<RnsPoly> {
        if pt.len() != self.params.degree() {
            return Err(HeError::ShapeMismatch {
                expected: self.params.degree(),
                got: pt.len(),
            });
        }
        let delta = ctx.modulus_product() / self.params.plain_modulus().value() as u128;
        let limbs = ctx
            .moduli()
            .iter()
            .map(|m| {
                let d = (delta % m.value() as u128) as u64;
                cham_math::poly::Poly::from_coeffs(
                    pt.values().iter().map(|&v| m.mul(d, m.reduce(v))).collect(),
                )
            })
            .collect();
        Ok(RnsPoly::from_limbs(ctx, limbs, Form::Coeff)?)
    }

    fn encrypt_in(
        &self,
        pt: &Plaintext,
        ctx: &RnsContext,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<RlweCiphertext> {
        let a = uniform_rns_poly(ctx, rng);
        let e = noise_rns_poly(ctx, rng);
        let s_ntt = if ctx == self.params.augmented_context() {
            self.sk.s_aug_ntt()
        } else {
            self.sk.s_ct_ntt()
        };
        let mut a_ntt = a.clone();
        a_ntt.to_ntt();
        let mut a_s = a_ntt.mul_pointwise(s_ntt)?;
        a_s.to_coeff();
        // b = Δμ + e − a·s   (so that b + a·s = Δμ + e)
        let b = self.scaled_plaintext(pt, ctx)?.add(&e)?.sub(&a_s)?;
        RlweCiphertext::new(b, a)
    }

    /// Symmetric encryption over the **augmented** basis `Q·p` — the form
    /// HMVP inputs take (paper: "The DOTPRODUCT module takes augmented
    /// plaintext and ciphertext as input").
    pub fn encrypt_augmented<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        rng: &mut R,
    ) -> RlweCiphertext {
        cham_telemetry::counter_add!("cham_he.encrypt.encrypt_augmented", 1);
        cham_telemetry::time_scope!("cham_he.encrypt.encrypt");
        self.encrypt_in(pt, self.params.augmented_context(), rng)
            .expect("contexts are internally consistent")
    }

    /// Symmetric encryption over the normal basis `Q`.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> RlweCiphertext {
        cham_telemetry::counter_add!("cham_he.encrypt.encrypt", 1);
        cham_telemetry::time_scope!("cham_he.encrypt.encrypt");
        self.encrypt_in(pt, self.params.ciphertext_context(), rng)
            .expect("contexts are internally consistent")
    }

    /// Public-key encryption over the augmented basis.
    pub fn encrypt_with_pk<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<RlweCiphertext> {
        cham_telemetry::counter_add!("cham_he.encrypt.encrypt_pk", 1);
        cham_telemetry::time_scope!("cham_he.encrypt.encrypt");
        let ctx = self.params.augmented_context();
        let (u, _) = ternary_rns_poly(ctx, rng);
        let mut u_ntt = u;
        u_ntt.to_ntt();
        let e0 = noise_rns_poly(ctx, rng);
        let e1 = noise_rns_poly(ctx, rng);
        let mut b = pk.b.mul_pointwise(&u_ntt)?;
        let mut a = pk.a.mul_pointwise(&u_ntt)?;
        b.to_coeff();
        a.to_coeff();
        let b = b.add(&e0)?.add(&self.scaled_plaintext(pt, ctx)?)?;
        let a = a.add(&e1)?;
        RlweCiphertext::new(b, a)
    }

    /// The parameter set.
    #[inline]
    pub fn params(&self) -> &ChamParams {
        &self.params
    }
}

/// Decrypts ciphertexts and measures their noise.
#[derive(Debug, Clone)]
pub struct Decryptor {
    params: ChamParams,
    sk: SecretKey,
}

/// The outcome of decrypting with noise measurement: the plaintext plus the
/// exact invariant-noise statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseReport {
    /// Decoded plaintext.
    pub plaintext: Plaintext,
    /// `log2` of the max absolute noise (≈ the paper's "30 bit"/"26 bit"
    /// figures). Zero noise reports 0.0.
    pub noise_bits: f64,
    /// Remaining noise budget in bits: `log2(Q_basis / (2t)) − noise_bits`.
    /// Decryption is correct while this stays positive.
    pub budget_bits: f64,
}

impl Decryptor {
    /// Creates a decryptor bound to a secret key.
    pub fn new(params: &ChamParams, sk: &SecretKey) -> Self {
        Self {
            params: params.clone(),
            sk: sk.clone(),
        }
    }

    fn phase(&self, ct: &RlweCiphertext) -> RnsPoly {
        let ctx = ct.b().context();
        // Cached embeddings cover the two standard bases; other contexts
        // (e.g. the single-limb result of MODSWITCH) embed on demand.
        let s_owned;
        let s_ntt = if ctx == self.params.augmented_context() {
            self.sk.s_aug_ntt()
        } else if ctx == self.params.ciphertext_context() {
            self.sk.s_ct_ntt()
        } else {
            let mut s = RnsPoly::from_signed(ctx, self.sk.coeffs())
                .expect("secret key length matches any same-degree context");
            s.to_ntt();
            s_owned = s;
            &s_owned
        };
        let mut a = ct.a().clone();
        a.to_ntt();
        let mut a_s = a.mul_pointwise(s_ntt).expect("context consistency");
        a_s.to_coeff();
        let mut b = ct.b().clone();
        b.to_coeff();
        b.add(&a_s).expect("context consistency")
    }

    /// Decrypts a ciphertext in either basis.
    pub fn decrypt(&self, ct: &RlweCiphertext) -> Plaintext {
        self.decrypt_with_noise(ct).plaintext
    }

    /// Decrypts an augmented-basis ciphertext (alias of [`Self::decrypt`],
    /// kept for API symmetry with [`Encryptor::encrypt_augmented`]).
    pub fn decrypt_augmented(&self, ct: &RlweCiphertext) -> Plaintext {
        self.decrypt(ct)
    }

    /// Decrypts and reports the exact invariant noise.
    pub fn decrypt_with_noise(&self, ct: &RlweCiphertext) -> NoiseReport {
        cham_telemetry::counter_add!("cham_he.encrypt.decrypt", 1);
        cham_telemetry::time_scope!("cham_he.encrypt.decrypt");
        let phase = self.phase(ct);
        let ctx = phase.context().clone();
        let q = ctx.modulus_product();
        let t = self.params.plain_modulus().value() as u128;
        let n = self.params.degree();
        let mut values = Vec::with_capacity(n);
        let mut max_noise: i128 = 0;
        for j in 0..n {
            let residues: Vec<u64> = (0..ctx.len())
                .map(|i| phase.limbs()[i].coeffs()[j])
                .collect();
            let v = ctx.crt_lift_centered(&residues);
            // m = round(v * t / q) mod t
            let num = v * t as i128;
            let half = (q / 2) as i128;
            let m = if num >= 0 {
                (num + half) / q as i128
            } else {
                (num - half) / q as i128
            };
            let m_mod = m.rem_euclid(t as i128) as u64;
            values.push(m_mod);
            // Scaled noise: v*t − m*q == e*t (exact integers).
            let e_scaled = (num - m * q as i128).abs();
            max_noise = max_noise.max(e_scaled);
        }
        // noise_bits = log2(max |e|) where |e| = e_scaled / t.
        let noise_bits = if max_noise == 0 {
            0.0
        } else {
            (max_noise as f64).log2() - (t as f64).log2()
        };
        let capacity_bits = (q as f64).log2() - 1.0 - (t as f64).log2();
        let budget_bits = capacity_bits - noise_bits.max(0.0);
        crate::telemetry::record_measured_noise(noise_bits, budget_bits);
        NoiseReport {
            plaintext: Plaintext::from_values(values),
            noise_bits,
            budget_bits,
        }
    }

    /// Decrypts a single LWE ciphertext: `phase = b + ⟨â, s⟩`, decoded to
    /// one value mod `t`.
    pub fn decrypt_lwe(&self, lwe: &LweCiphertext) -> u64 {
        cham_telemetry::counter_add!("cham_he.encrypt.decrypt_lwe", 1);
        let ctx = lwe.a().context().clone();
        let q = ctx.modulus_product();
        let t = self.params.plain_modulus().value() as u128;
        let residues: Vec<u64> = ctx
            .moduli()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut acc = lwe.b()[i];
                for (k, &ak) in lwe.a().limbs()[i].coeffs().iter().enumerate() {
                    let sk = m.from_signed(self.sk.coeffs()[k]);
                    acc = m.add(acc, m.mul(ak, sk));
                }
                acc
            })
            .collect();
        let v = ctx.crt_lift_centered(&residues);
        let num = v * t as i128;
        let half = (q / 2) as i128;
        let m = if num >= 0 {
            (num + half) / q as i128
        } else {
            (num - half) / q as i128
        };
        m.rem_euclid(t as i128) as u64
    }

    /// The parameter set.
    #[inline]
    pub fn params(&self) -> &ChamParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use rand::SeedableRng;

    fn setup() -> (
        ChamParams,
        SecretKey,
        Encryptor,
        Decryptor,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        (params, sk, enc, dec, rng)
    }

    #[test]
    fn roundtrip_augmented() {
        let (params, _, enc, dec, mut rng) = setup();
        let coder = CoeffEncoder::new(&params);
        let t = params.plain_modulus().value();
        let v: Vec<u64> = (0..params.degree() as u64).map(|i| i % t).collect();
        let pt = coder.encode_vector(&v).unwrap();
        let ct = enc.encrypt_augmented(&pt, &mut rng);
        let report = dec.decrypt_with_noise(&ct);
        assert_eq!(report.plaintext.values(), pt.values());
        assert!(report.noise_bits < 8.0, "fresh noise {}", report.noise_bits);
        assert!(report.budget_bits > 80.0, "budget {}", report.budget_bits);
    }

    #[test]
    fn roundtrip_normal_basis() {
        let (params, _, enc, dec, mut rng) = setup();
        let coder = CoeffEncoder::new(&params);
        let pt = coder.encode_vector_signed(&[-3, 7, 0, 12345]).unwrap();
        let ct = enc.encrypt(&pt, &mut rng);
        assert_eq!(dec.decrypt(&ct).values(), pt.values());
    }

    #[test]
    fn public_key_roundtrip() {
        let (params, sk, enc, dec, mut rng) = setup();
        let pk = PublicKey::generate(&sk, &mut rng);
        let coder = CoeffEncoder::new(&params);
        let pt = coder.encode_vector(&[9, 8, 7]).unwrap();
        let ct = enc.encrypt_with_pk(&pk, &pt, &mut rng).unwrap();
        let report = dec.decrypt_with_noise(&ct);
        assert_eq!(report.plaintext.values(), pt.values());
        // pk encryption is noisier than symmetric, but still tiny.
        assert!(report.noise_bits < 16.0);
    }

    #[test]
    fn homomorphic_addition() {
        let (params, _, enc, dec, mut rng) = setup();
        let coder = CoeffEncoder::new(&params);
        let t = params.plain_modulus();
        let a = coder.encode_vector(&[100, 200]).unwrap();
        let b = coder.encode_vector(&[65530, 9]).unwrap();
        let ca = enc.encrypt_augmented(&a, &mut rng);
        let cb = enc.encrypt_augmented(&b, &mut rng);
        let sum = dec.decrypt(&ca.add(&cb).unwrap());
        assert_eq!(sum.values()[0], t.add(100, 65530));
        assert_eq!(sum.values()[1], 209);
    }

    #[test]
    fn decrypting_garbage_fails_gracefully() {
        // A random "ciphertext" decrypts to noise-dominated junk with a
        // negative budget — the failure mode the meter must expose.
        let (params, _, _, dec, mut rng) = setup();
        let ctx = params.ciphertext_context();
        let b = uniform_rns_poly(ctx, &mut rng);
        let a = uniform_rns_poly(ctx, &mut rng);
        let ct = RlweCiphertext::new(b, a).unwrap();
        let report = dec.decrypt_with_noise(&ct);
        // A uniform phase has noise at the decoding boundary: essentially
        // zero budget (tiny positive values are possible by chance).
        assert!(report.budget_bits < 2.0, "budget {}", report.budget_bits);
        assert!(report.noise_bits > 30.0, "noise {}", report.noise_bits);
    }

    #[test]
    fn wrong_length_plaintext_rejected() {
        let (params, _, enc, _, _) = setup();
        let pt = Plaintext::from_values(vec![1; params.degree() / 2]);
        let ctx = params.ciphertext_context().clone();
        assert!(enc.scaled_plaintext(&pt, &ctx).is_err());
    }
}
