//! A CKKS (approximate-arithmetic) scheme over the shared RLWE substrate.
//!
//! The paper's introduction motivates CHAM with the *hybrid-scheme*
//! evolution of HE — "different HE schemes (i.e., B/FV, CKKS, and TFHE)
//! may compose a hybrid scheme" (CHIMERA, PEGASUS) — and CHAM's claim to
//! fame is supporting multiple ciphertext types over one datapath. This
//! module demonstrates that the reproduction's substrate really is
//! scheme-agnostic: the same `RnsPoly` storage, NTT units, key-switching,
//! rescale, and LWE extraction serve CKKS without modification.
//!
//! Provided: the canonical-embedding encoder (`N/2` complex slots),
//! symmetric encryption, addition, plaintext multiplication,
//! ciphertext–ciphertext multiplication with relinearisation (the
//! `s² → s` key-switch reuses [`crate::keys::KeySwitchKey`] verbatim),
//! rescaling by the last prime, and decryption.
//!
//! The encoder uses the direct `O(N²)` embedding evaluation — exact and
//! dependency-free; fine for `N ≤ 4096` (encode ≈ tens of ms). Precision
//! is set by the scale `Δ` against the noise; tests pin ≈ 8 fractional
//! digits at `Δ = 2^30` under the paper's modulus chain.

use crate::ciphertext::RlweCiphertext;
use crate::keys::{KeySwitchKey, SecretKey};
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::rns::RnsPoly;
use cham_math::sampling::{noise_rns_poly, uniform_rns_poly};
use rand::Rng;

/// Default CKKS scale (`Δ = 2^30`).
pub const DEFAULT_SCALE: f64 = (1u64 << 30) as f64;

/// A CKKS ciphertext: an RLWE pair plus its tracked scale.
#[derive(Debug, Clone)]
pub struct CkksCiphertext {
    /// The underlying RLWE ciphertext (normal basis).
    pub ct: RlweCiphertext,
    /// Current scale `Δ` of the encoded message.
    pub scale: f64,
}

/// The CKKS engine for a parameter set.
#[derive(Debug, Clone)]
pub struct Ckks {
    params: ChamParams,
    scale: f64,
}

impl Ckks {
    /// Creates a CKKS engine with the default scale.
    pub fn new(params: &ChamParams) -> Self {
        Self::with_scale(params, DEFAULT_SCALE)
    }

    /// Creates a CKKS engine with a custom scale.
    pub fn with_scale(params: &ChamParams, scale: f64) -> Self {
        Self {
            params: params.clone(),
            scale,
        }
    }

    /// Number of complex slots (`N/2`). Real vectors use the real parts.
    pub fn slot_count(&self) -> usize {
        self.params.degree() / 2
    }

    /// The engine's scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Encodes real slot values into an integer polynomial at the engine
    /// scale via the inverse canonical embedding:
    /// `m_i = round((2Δ/N)·Σ_j Re(z_j · e^{-iπ(2j+1)i/N}))`.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] for more slots than available;
    /// [`HeError::InvalidParams`] when a coefficient overflows the first
    /// ciphertext prime (scale too large for the values).
    pub fn encode(&self, values: &[f64]) -> Result<Vec<i64>> {
        self.encode_at(values, self.scale)
    }

    fn encode_at(&self, values: &[f64], scale: f64) -> Result<Vec<i64>> {
        let n = self.params.degree();
        let half = n / 2;
        if values.len() > half {
            return Err(HeError::ShapeMismatch {
                expected: half,
                got: values.len(),
            });
        }
        let mut coeffs = vec![0i64; n];
        let limit = (self.params.ciphertext_context().moduli()[0].value() / 2) as f64;
        for (i, c) in coeffs.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for (j, &z) in values.iter().enumerate() {
                let angle = -std::f64::consts::PI * (2 * j + 1) as f64 * i as f64 / n as f64;
                acc += z * angle.cos();
            }
            let v = (2.0 * scale / n as f64 * acc).round();
            if !v.is_finite() || v.abs() >= limit {
                return Err(HeError::InvalidParams(
                    "ckks coefficient overflow: reduce the scale or the values",
                ));
            }
            *c = v as i64;
        }
        Ok(coeffs)
    }

    /// Decodes an integer polynomial back to real slot values at `scale`:
    /// `z_j = (1/Δ)·Σ_i m_i · e^{iπ(2j+1)i/N}` (real part).
    pub fn decode(&self, coeffs: &[i64], scale: f64) -> Vec<f64> {
        let n = self.params.degree();
        let half = n / 2;
        (0..half)
            .map(|j| {
                let mut acc = 0.0f64;
                for (i, &m) in coeffs.iter().enumerate() {
                    let angle = std::f64::consts::PI * (2 * j + 1) as f64 * i as f64 / n as f64;
                    acc += m as f64 * angle.cos();
                }
                acc / scale
            })
            .collect()
    }

    /// Symmetric encryption of real slot values (normal basis).
    ///
    /// # Errors
    /// Encoding failures.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        values: &[f64],
        sk: &SecretKey,
        rng: &mut R,
    ) -> Result<CkksCiphertext> {
        let ctx = self.params.ciphertext_context();
        let m = RnsPoly::from_signed(ctx, &self.encode(values)?)?;
        let a = uniform_rns_poly(ctx, rng);
        let e = noise_rns_poly(ctx, rng);
        let mut a_ntt = a.clone();
        a_ntt.to_ntt();
        let mut a_s = a_ntt.mul_pointwise(sk.s_ct_ntt())?;
        a_s.to_coeff();
        let b = m.add(&e)?.sub(&a_s)?;
        Ok(CkksCiphertext {
            ct: RlweCiphertext::new(b, a)?,
            scale: self.scale,
        })
    }

    /// Decrypts to real slot values.
    pub fn decrypt(&self, ct: &CkksCiphertext, sk: &SecretKey) -> Vec<f64> {
        let ctx = ct.ct.b().context().clone();
        let mut a = ct.ct.a().clone();
        a.to_ntt();
        let s_ntt = if ctx == *self.params.ciphertext_context() {
            sk.s_ct_ntt().clone()
        } else {
            let mut s = RnsPoly::from_signed(&ctx, sk.coeffs()).expect("degree matches");
            s.to_ntt();
            s
        };
        let mut a_s = a.mul_pointwise(&s_ntt).expect("context consistency");
        a_s.to_coeff();
        let mut b = ct.ct.b().clone();
        b.to_coeff();
        let phase = b.add(&a_s).expect("context consistency");
        let n = self.params.degree();
        let coeffs: Vec<i64> = (0..n)
            .map(|j| {
                let residues: Vec<u64> = (0..ctx.len())
                    .map(|i| phase.limbs()[i].coeffs()[j])
                    .collect();
                ctx.crt_lift_centered(&residues) as i64
            })
            .collect();
        self.decode(&coeffs, ct.scale)
    }

    /// Homomorphic addition (scales must match to ≈1 ulp).
    ///
    /// # Errors
    /// [`HeError::Incompatible`] on scale mismatch.
    pub fn add(&self, x: &CkksCiphertext, y: &CkksCiphertext) -> Result<CkksCiphertext> {
        if (x.scale - y.scale).abs() / x.scale > 1e-9 {
            return Err(HeError::Incompatible("ckks scales differ"));
        }
        Ok(CkksCiphertext {
            ct: x.ct.add(&y.ct)?,
            scale: x.scale,
        })
    }

    /// Plaintext multiplication: slot-wise product with an unencrypted
    /// vector (encoded at the engine scale; result scale is the product).
    ///
    /// # Errors
    /// Encoding failures.
    pub fn mul_plain(&self, x: &CkksCiphertext, values: &[f64]) -> Result<CkksCiphertext> {
        let ctx = x.ct.b().context().clone();
        let mut pt = RnsPoly::from_signed(&ctx, &self.encode(values)?)?;
        pt.to_ntt();
        let mut b = x.ct.b().clone();
        let mut a = x.ct.a().clone();
        b.to_ntt();
        a.to_ntt();
        let mut b = b.mul_pointwise(&pt)?;
        let mut a = a.mul_pointwise(&pt)?;
        b.to_coeff();
        a.to_coeff();
        Ok(CkksCiphertext {
            ct: RlweCiphertext::new(b, a)?,
            scale: x.scale * self.scale,
        })
    }

    /// Generates the relinearisation key (`s² → s`), reusing the generic
    /// RNS key-switch key.
    ///
    /// # Errors
    /// Key-generation failures.
    pub fn relin_key<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> Result<KeySwitchKey> {
        // s² in the negacyclic ring, over i64 (|coeff| ≤ N for ternary s).
        let n = self.params.degree();
        let s = sk.coeffs();
        let mut s2 = vec![0i64; n];
        for i in 0..n {
            if s[i] == 0 {
                continue;
            }
            for j in 0..n {
                let k = i + j;
                let prod = s[i] * s[j];
                if k < n {
                    s2[k] += prod;
                } else {
                    s2[k - n] -= prod;
                }
            }
        }
        KeySwitchKey::generate(sk, &s2, rng)
    }

    /// Ciphertext–ciphertext multiplication with relinearisation: tensor
    /// the two pairs, key-switch the `s²` component back, and return at
    /// the product scale (call [`Ckks::rescale`] next to tame it).
    ///
    /// # Errors
    /// Context mismatches; key-switch failures.
    pub fn mul(
        &self,
        x: &CkksCiphertext,
        y: &CkksCiphertext,
        rlk: &KeySwitchKey,
    ) -> Result<CkksCiphertext> {
        let mut xb = x.ct.b().clone();
        let mut xa = x.ct.a().clone();
        let mut yb = y.ct.b().clone();
        let mut ya = y.ct.a().clone();
        xb.to_ntt();
        xa.to_ntt();
        yb.to_ntt();
        ya.to_ntt();
        // Tensor: d0 = b·b', d1 = b·a' + a·b', d2 = a·a'.
        let d0 = xb.mul_pointwise(&yb)?;
        let d1 = xb.mul_pointwise(&ya)?.add(&xa.mul_pointwise(&yb)?)?;
        let mut d2 = xa.mul_pointwise(&ya)?;
        let mut d0 = d0;
        let mut d1 = d1;
        d0.to_coeff();
        d1.to_coeff();
        d2.to_coeff();
        // Relinearise d2 (which multiplies s²) down to the (b, a) pair.
        let (ks_b, ks_a) = crate::ops::keyswitch_mask(&d2, rlk, &self.params)?;
        let b = d0.add(&ks_b)?;
        let a = d1.add(&ks_a)?;
        Ok(CkksCiphertext {
            ct: RlweCiphertext::new(b, a)?,
            scale: x.scale * y.scale,
        })
    }

    /// Rescale: divide by the last remaining prime, dropping it from the
    /// basis and dividing the scale accordingly — the CKKS analogue of the
    /// pipeline's stage-4 (and the very same `RnsPoly::rescale_by_last`).
    ///
    /// # Errors
    /// [`HeError::Incompatible`] when no prime can be dropped.
    pub fn rescale(&self, x: &CkksCiphertext) -> Result<CkksCiphertext> {
        let ctx = x.ct.b().context().clone();
        if ctx.len() < 2 {
            return Err(HeError::Incompatible("no prime left to rescale by"));
        }
        let dropped = ctx.moduli()[ctx.len() - 1].value() as f64;
        let target = ctx.drop_last()?;
        let mut b = x.ct.b().clone();
        let mut a = x.ct.a().clone();
        b.to_coeff();
        a.to_coeff();
        Ok(CkksCiphertext {
            ct: RlweCiphertext::new(b.rescale_by_last(&target)?, a.rescale_by_last(&target)?)?,
            scale: x.scale / dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (ChamParams, SecretKey, Ckks, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2718);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let ckks = Ckks::new(&params);
        (params, sk, ckks, rng)
    }

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "slot {i}: {x} vs {y}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (_, _, ckks, _) = setup();
        let vals: Vec<f64> = (0..ckks.slot_count())
            .map(|i| (i as f64 * 0.37).sin() * 3.0)
            .collect();
        let coeffs = ckks.encode(&vals).unwrap();
        let back = ckks.decode(&coeffs, ckks.scale());
        close(&vals, &back, 1e-6);
    }

    #[test]
    fn encrypt_decrypt_approximates() {
        let (_, sk, ckks, mut rng) = setup();
        let vals: Vec<f64> = (0..ckks.slot_count())
            .map(|i| (i as f64).cos() * 2.0)
            .collect();
        let ct = ckks.encrypt(&vals, &sk, &mut rng).unwrap();
        let back = ckks.decrypt(&ct, &sk);
        close(&vals, &back, 1e-4);
    }

    #[test]
    fn addition_is_slotwise() {
        let (_, sk, ckks, mut rng) = setup();
        let half = ckks.slot_count();
        let xs: Vec<f64> = (0..half).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = (0..half).map(|i| -(i as f64) / 50.0).collect();
        let cx = ckks.encrypt(&xs, &sk, &mut rng).unwrap();
        let cy = ckks.encrypt(&ys, &sk, &mut rng).unwrap();
        let sum = ckks.decrypt(&ckks.add(&cx, &cy).unwrap(), &sk);
        let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
        close(&expect, &sum, 1e-3);
    }

    #[test]
    fn plaintext_multiplication_and_rescale() {
        let (_, sk, ckks, mut rng) = setup();
        let half = ckks.slot_count();
        let xs: Vec<f64> = (0..half).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
        let ys: Vec<f64> = (0..half).map(|i| 0.5 - (i % 3) as f64 * 0.125).collect();
        let cx = ckks.encrypt(&xs, &sk, &mut rng).unwrap();
        let prod = ckks.mul_plain(&cx, &ys).unwrap();
        let rescaled = ckks.rescale(&prod).unwrap();
        assert_eq!(rescaled.ct.b().context().len(), 1);
        let got = ckks.decrypt(&rescaled, &sk);
        let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a * b).collect();
        close(&expect, &got, 1e-2);
    }

    #[test]
    fn ciphertext_multiplication_with_relin() {
        let (_, sk, ckks, mut rng) = setup();
        let half = ckks.slot_count();
        let xs: Vec<f64> = (0..half).map(|i| ((i % 7) as f64 - 3.0) * 0.5).collect();
        let ys: Vec<f64> = (0..half).map(|i| ((i % 4) as f64) * 0.4 + 0.1).collect();
        let rlk = ckks.relin_key(&sk, &mut rng).unwrap();
        let cx = ckks.encrypt(&xs, &sk, &mut rng).unwrap();
        let cy = ckks.encrypt(&ys, &sk, &mut rng).unwrap();
        let prod = ckks.mul(&cx, &cy, &rlk).unwrap();
        let rescaled = ckks.rescale(&prod).unwrap();
        let got = ckks.decrypt(&rescaled, &sk);
        let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a * b).collect();
        close(&expect, &got, 5e-2);
    }

    #[test]
    fn scale_mismatch_rejected() {
        let (params, sk, ckks, mut rng) = setup();
        let other = Ckks::with_scale(&params, DEFAULT_SCALE * 2.0);
        let cx = ckks.encrypt(&[1.0], &sk, &mut rng).unwrap();
        let cy = other.encrypt(&[1.0], &sk, &mut rng).unwrap();
        assert!(ckks.add(&cx, &cy).is_err());
    }

    #[test]
    fn overflow_and_shape_validation() {
        let (_, _, ckks, _) = setup();
        let too_many = vec![0.0; ckks.slot_count() + 1];
        assert!(ckks.encode(&too_many).is_err());
        // A scale far beyond the prime overflows the coefficients.
        let huge = Ckks::with_scale(&ckks.params, 1e18);
        assert!(huge.encode(&[1.0]).is_err());
    }

    #[test]
    fn rescale_requires_two_limbs() {
        let (_, sk, ckks, mut rng) = setup();
        let ct = ckks.encrypt(&[1.0], &sk, &mut rng).unwrap();
        let once = ckks.rescale(&ct).unwrap();
        assert!(ckks.rescale(&once).is_err());
    }

    #[test]
    fn lwe_extraction_crosses_schemes() {
        // The conversion layer is scheme-agnostic: extracting coefficient 0
        // of a CKKS ciphertext yields (approximately) the encoded constant
        // term — the PEGASUS-style bridge the paper's intro motivates.
        let (params, sk, ckks, mut rng) = setup();
        let vals = vec![2.5f64; ckks.slot_count()];
        // Constant slot vector => m(X) ≈ Δ·2.5 in the constant coefficient.
        let ct = ckks.encrypt(&vals, &sk, &mut rng).unwrap();
        let lwe = crate::extract::extract_lwe(&ct.ct, 0).unwrap();
        // Decrypt the LWE phase manually and compare against Δ·2.5.
        let ctx = lwe.a().context().clone();
        let residues: Vec<u64> = ctx
            .moduli()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut acc = lwe.b()[i];
                for (k, &ak) in lwe.a().limbs()[i].coeffs().iter().enumerate() {
                    acc = m.add(acc, m.mul(ak, m.from_signed(sk.coeffs()[k])));
                }
                acc
            })
            .collect();
        let phase = ctx.crt_lift_centered(&residues) as f64;
        let got = phase / ckks.scale();
        assert!((got - 2.5).abs() < 1e-3, "got {got}");
        let _ = params;
    }
}
