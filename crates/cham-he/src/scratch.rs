//! Per-worker scratch buffers for the fused HMVP kernels.
//!
//! The dot phase runs one [`cham_math::rns::FusedAccumulator`] pair per row;
//! backing those with freshly allocated `u128` vectors would put two heap
//! allocations back on every row — exactly the churn the fused kernel
//! removes. Instead, workers check buffers out of a small pool keyed by the
//! `cham-pool` worker index, so the steady state recycles one scratch pair
//! per worker with no locking contention (each worker hits its own slot).
//!
//! Ownership rules:
//! * a scratch is owned exclusively for the duration of one
//!   [`with_dot_scratch`] call and returned to the caller's slot afterwards,
//! * buffers are size-matched, never resized — a request for an unseen
//!   `(degree, limbs)` shape allocates (a *miss*) and the buffer joins the
//!   pool on release,
//! * slot depth is bounded ([`MAX_PER_SLOT`]); excess buffers are dropped
//!   rather than hoarded.
//!
//! Hit/miss counts are always-on atomics (like the pool stats from
//! `cham-pool`) so run records can report them without the `telemetry`
//! feature; with the feature they are mirrored to the
//! `cham_he.hmvp.scratch.{hit,miss}` counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on buffers parked per worker slot.
const MAX_PER_SLOT: usize = 4;

/// A reusable pair of deferred-reduction accumulators (`b` and `a`
/// components of a ciphertext row), each `limbs × degree` lanes.
pub(crate) struct DotScratch {
    pub(crate) b_acc: Vec<u128>,
    pub(crate) a_acc: Vec<u128>,
}

struct ScratchPool {
    /// Slot 0 serves non-pool threads; slot `i + 1` serves pool worker `i`.
    slots: Vec<Mutex<Vec<DotScratch>>>,
}

static POOL: OnceLock<ScratchPool> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static ScratchPool {
    POOL.get_or_init(|| {
        let slots = cham_pool::current_threads() + 1;
        ScratchPool {
            slots: (0..slots).map(|_| Mutex::new(Vec::new())).collect(),
        }
    })
}

/// The calling thread's slot. Worker indices from a private (non-global)
/// pool may exceed the slot count sized off the global pool — the modulo
/// keeps them valid at worst sharing a slot.
fn slot_index(p: &ScratchPool) -> usize {
    cham_pool::current_worker_index().map_or(0, |i| (i + 1) % p.slots.len())
}

/// Scratch-pool hit and miss totals `(hits, misses)` since process start.
/// A flat miss count across repeated dot phases is the zero-allocation
/// steady-state witness asserted by tests and reported in run records.
#[must_use]
pub fn scratch_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Runs `f` with a checked-out scratch of exactly `len` lanes per
/// accumulator, returning the buffer to the worker's slot afterwards.
pub(crate) fn with_dot_scratch<T>(len: usize, f: impl FnOnce(&mut DotScratch) -> T) -> T {
    let p = pool();
    let idx = slot_index(p);
    let mut scratch = {
        let mut stack = p.slots[idx].lock().expect("scratch slot poisoned");
        match stack.iter().position(|s| s.b_acc.len() == len) {
            Some(pos) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                cham_telemetry::counter_add!("cham_he.hmvp.scratch.hit", 1);
                stack.swap_remove(pos)
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                cham_telemetry::counter_add!("cham_he.hmvp.scratch.miss", 1);
                DotScratch {
                    b_acc: vec![0u128; len],
                    a_acc: vec![0u128; len],
                }
            }
        }
    };
    let out = f(&mut scratch);
    // Return to the slot we took it from; a worker migrating between
    // calls only costs a future miss, never correctness.
    let mut stack = p.slots[idx].lock().expect("scratch slot poisoned");
    if stack.len() < MAX_PER_SLOT {
        stack.push(scratch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_a_hit_and_misses_stay_flat() {
        let len = 48;
        let (_, m0) = scratch_stats();
        with_dot_scratch(len, |s| {
            assert_eq!(s.b_acc.len(), len);
            assert_eq!(s.a_acc.len(), len);
        });
        let (_, m1) = scratch_stats();
        let h1 = scratch_stats().0;
        // Every subsequent same-shape call on this thread reuses the buffer.
        for _ in 0..10 {
            with_dot_scratch(len, |_| {});
        }
        let (h2, m2) = scratch_stats();
        assert_eq!(m2, m1, "steady state must not allocate");
        assert!(h2 >= h1 + 10);
        assert!(m1 > m0, "first call was a miss");
    }

    #[test]
    fn distinct_shapes_do_not_alias() {
        with_dot_scratch(16, |s| s.b_acc.fill(7));
        with_dot_scratch(32, |s| {
            assert_eq!(s.b_acc.len(), 32);
        });
        // The 16-lane buffer is still pooled and comes back dirty — callers
        // (FusedAccumulator::new) zero it.
        with_dot_scratch(16, |s| {
            assert_eq!(s.b_acc.len(), 16);
        });
    }
}
