//! Wire format: byte serialization for ciphertexts and plaintexts.
//!
//! The two-party protocols (§II-F) ship ciphertexts between machines; this
//! module defines the byte layout the `cham-apps` transcripts charge for
//! and round-trips it losslessly. The format is deliberately simple and
//! versioned:
//!
//! ```text
//! [magic u16 = 0xC4A7] [version u8] [kind u8]
//! [degree u32 LE] [limb_count u8] [limb moduli u64 LE ...]
//! payload (kind-specific), all coefficients u64 LE
//! ```
//!
//! Deserialization validates the header against the receiver's parameter
//! set — a ciphertext for foreign parameters is rejected, not
//! misinterpreted.

use crate::ciphertext::{LweCiphertext, RlweCiphertext};
use crate::encoding::Plaintext;
use crate::hmvp::EncodedMatrix;
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::poly::Poly;
use cham_math::rns::{Form, RnsContext, RnsPoly};

const MAGIC: u16 = 0xC4A7;
const VERSION: u8 = 1;

/// Payload discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Rlwe = 1,
    Lwe = 2,
    Plain = 3,
    Ksk = 4,
    GaloisSet = 5,
    EncodedMatrix = 6,
}

impl Kind {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            1 => Ok(Kind::Rlwe),
            2 => Ok(Kind::Lwe),
            3 => Ok(Kind::Plain),
            4 => Ok(Kind::Ksk),
            5 => Ok(Kind::GaloisSet),
            6 => Ok(Kind::EncodedMatrix),
            _ => Err(HeError::Incompatible("unknown wire payload kind")),
        }
    }
}

fn write_header(out: &mut Vec<u8>, kind: Kind, ctx: Option<&RnsContext>, degree: usize) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&(degree as u32).to_le_bytes());
    match ctx {
        Some(ctx) => {
            out.push(ctx.len() as u8);
            for m in ctx.moduli() {
                out.extend_from_slice(&m.value().to_le_bytes());
            }
        }
        None => out.push(0),
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(HeError::Incompatible("truncated wire payload"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn read_header<'a>(
    r: &mut Reader<'a>,
    params: &ChamParams,
) -> Result<(Kind, usize, Option<RnsContext>)> {
    if r.u16()? != MAGIC {
        return Err(HeError::Incompatible("bad wire magic"));
    }
    if r.u8()? != VERSION {
        return Err(HeError::Incompatible("unsupported wire version"));
    }
    let kind = Kind::from_u8(r.u8()?)?;
    let degree = r.u32()? as usize;
    if degree != params.degree() {
        return Err(HeError::ShapeMismatch {
            expected: params.degree(),
            got: degree,
        });
    }
    let limbs = r.u8()? as usize;
    let ctx = if limbs == 0 {
        None
    } else {
        let mut primes = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            primes.push(r.u64()?);
        }
        // Only the receiver's known bases are acceptable.
        let ct_primes: Vec<u64> = params
            .ciphertext_context()
            .moduli()
            .iter()
            .map(|m| m.value())
            .collect();
        let aug_primes: Vec<u64> = params
            .augmented_context()
            .moduli()
            .iter()
            .map(|m| m.value())
            .collect();
        let ctx = if primes == ct_primes {
            params.ciphertext_context().clone()
        } else if primes == aug_primes {
            params.augmented_context().clone()
        } else if primes.len() == 1 && primes[0] == ct_primes[0] {
            params.ciphertext_context().drop_last()?
        } else {
            return Err(HeError::Incompatible(
                "wire payload uses a foreign modulus chain",
            ));
        };
        Some(ctx)
    };
    Ok((kind, degree, ctx))
}

fn write_rns_poly(out: &mut Vec<u8>, p: &RnsPoly) {
    for limb in p.limbs() {
        for &c in limb.coeffs() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
}

fn read_rns_poly(r: &mut Reader<'_>, ctx: &RnsContext) -> Result<RnsPoly> {
    let n = ctx.degree();
    let mut limbs = Vec::with_capacity(ctx.len());
    for m in ctx.moduli() {
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.u64()?;
            if v >= m.value() {
                return Err(HeError::Incompatible(
                    "wire coefficient out of canonical range",
                ));
            }
            coeffs.push(v);
        }
        limbs.push(Poly::from_coeffs(coeffs));
    }
    Ok(RnsPoly::from_limbs(ctx, limbs, Form::Coeff)?)
}

/// Serializes an RLWE ciphertext (converted to coefficient form).
pub fn rlwe_to_bytes(ct: &RlweCiphertext) -> Vec<u8> {
    let mut c = ct.clone();
    c.to_coeff();
    let ctx = c.b().context().clone();
    let mut out = Vec::with_capacity(16 + 2 * ctx.len() * ctx.degree() * 8);
    write_header(&mut out, Kind::Rlwe, Some(&ctx), ctx.degree());
    write_rns_poly(&mut out, c.b());
    write_rns_poly(&mut out, c.a());
    out
}

/// Deserializes an RLWE ciphertext.
///
/// # Errors
/// [`HeError::Incompatible`] / [`HeError::ShapeMismatch`] for malformed,
/// truncated, foreign-parameter, or trailing-garbage payloads.
pub fn rlwe_from_bytes(data: &[u8], params: &ChamParams) -> Result<RlweCiphertext> {
    let mut r = Reader::new(data);
    let (kind, _, ctx) = read_header(&mut r, params)?;
    if kind != Kind::Rlwe {
        return Err(HeError::Incompatible("expected an rlwe payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible("rlwe payload missing modulus chain"))?;
    let b = read_rns_poly(&mut r, &ctx)?;
    let a = read_rns_poly(&mut r, &ctx)?;
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after rlwe payload"));
    }
    RlweCiphertext::new(b, a)
}

/// Serializes an LWE ciphertext.
pub fn lwe_to_bytes(ct: &LweCiphertext) -> Vec<u8> {
    let ctx = ct.a().context().clone();
    let mut out = Vec::with_capacity(16 + (ctx.len() + ctx.len() * ctx.degree()) * 8);
    write_header(&mut out, Kind::Lwe, Some(&ctx), ctx.degree());
    for &b in ct.b() {
        out.extend_from_slice(&b.to_le_bytes());
    }
    write_rns_poly(&mut out, ct.a());
    out
}

/// Deserializes an LWE ciphertext.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`].
pub fn lwe_from_bytes(data: &[u8], params: &ChamParams) -> Result<LweCiphertext> {
    let mut r = Reader::new(data);
    let (kind, _, ctx) = read_header(&mut r, params)?;
    if kind != Kind::Lwe {
        return Err(HeError::Incompatible("expected an lwe payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible("lwe payload missing modulus chain"))?;
    let mut b = Vec::with_capacity(ctx.len());
    for m in ctx.moduli() {
        let v = r.u64()?;
        if v >= m.value() {
            return Err(HeError::Incompatible(
                "wire coefficient out of canonical range",
            ));
        }
        b.push(v);
    }
    let a = read_rns_poly(&mut r, &ctx)?;
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after lwe payload"));
    }
    LweCiphertext::new(b, a)
}

/// Serializes a key-switch key (NTT-form digits over the augmented basis).
pub fn ksk_to_bytes(ksk: &crate::keys::KeySwitchKey) -> Vec<u8> {
    let ctx = ksk.b[0].context().clone();
    let mut out = Vec::new();
    write_header(&mut out, Kind::Ksk, Some(&ctx), ctx.degree());
    out.push(ksk.digit_count() as u8);
    for i in 0..ksk.digit_count() {
        write_rns_poly(&mut out, &ksk.b[i]);
        write_rns_poly(&mut out, &ksk.a[i]);
    }
    out
}

/// Deserializes a key-switch key.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`].
pub fn ksk_from_bytes(data: &[u8], params: &ChamParams) -> Result<crate::keys::KeySwitchKey> {
    let mut r = Reader::new(data);
    let (kind, _, ctx) = read_header(&mut r, params)?;
    if kind != Kind::Ksk {
        return Err(HeError::Incompatible("expected a key-switch-key payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible("ksk payload missing modulus chain"))?;
    if ctx != *params.augmented_context() {
        return Err(HeError::Incompatible(
            "ksk must live in the augmented basis",
        ));
    }
    let digits = r.u8()? as usize;
    if digits == 0 || digits > 8 {
        return Err(HeError::Incompatible("implausible ksk digit count"));
    }
    let mut b = Vec::with_capacity(digits);
    let mut a = Vec::with_capacity(digits);
    for _ in 0..digits {
        let mut bp = read_rns_poly(&mut r, &ctx)?;
        let mut ap = read_rns_poly(&mut r, &ctx)?;
        // Stored coefficients are the NTT-domain words; restore the form
        // tag by converting coeff->ntt-tagged without touching data.
        bp = retag_ntt(bp);
        ap = retag_ntt(ap);
        b.push(bp);
        a.push(ap);
    }
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after ksk payload"));
    }
    Ok(crate::keys::KeySwitchKey { b, a })
}

/// Re-tags a freshly-read polynomial as NTT-form without transforming
/// (the wire format for keys stores NTT-domain words verbatim).
fn retag_ntt(p: RnsPoly) -> RnsPoly {
    let ctx = p.context().clone();
    let limbs = p.limbs().to_vec();
    RnsPoly::from_limbs(&ctx, limbs, Form::Ntt).expect("limbs match context")
}

/// Serializes a Galois key set (sorted by automorphism index for a
/// canonical byte representation).
pub fn galois_keys_to_bytes(keys: &crate::keys::GaloisKeys, indices: &[usize]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(Kind::GaloisSet as u8);
    out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    for &k in &sorted {
        let ksk = keys.get(k)?;
        let body = ksk_to_bytes(ksk);
        out.extend_from_slice(&(k as u64).to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }
    Ok(out)
}

/// Deserializes a Galois key set.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`].
pub fn galois_keys_from_bytes(data: &[u8], params: &ChamParams) -> Result<crate::keys::GaloisKeys> {
    let mut r = Reader::new(data);
    if r.u16()? != MAGIC {
        return Err(HeError::Incompatible("bad wire magic"));
    }
    if r.u8()? != VERSION {
        return Err(HeError::Incompatible("unsupported wire version"));
    }
    if r.u8()? != Kind::GaloisSet as u8 {
        return Err(HeError::Incompatible("expected a galois-key-set payload"));
    }
    let count = r.u32()? as usize;
    if count > 64 {
        return Err(HeError::Incompatible("implausible galois key count"));
    }
    let mut keys = crate::keys::GaloisKeys::new();
    for _ in 0..count {
        let k = r.u64()? as usize;
        let len = r.u32()? as usize;
        let body = r.take(len)?;
        keys.insert(k, ksk_from_bytes(body, params)?);
    }
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after galois key set"));
    }
    Ok(keys)
}

/// Serializes a pre-encoded matrix: the `rows × col_tiles` NTT-form
/// plaintexts over the augmented basis that [`crate::hmvp::Hmvp::encode_matrix`]
/// prepares. Persisting this form (rather than the raw matrix) lets a
/// restore skip the one-time encode entirely — the encode-once economics
/// the HMVP throughput case rests on survive a process restart.
///
/// # Errors
/// [`HeError::InvalidParams`] for an empty tile grid (cannot happen for a
/// matrix produced by `encode_matrix`).
pub fn encoded_matrix_to_bytes(m: &EncodedMatrix) -> Result<Vec<u8>> {
    let tiles = m.tiles();
    let first = tiles
        .first()
        .and_then(|row| row.first())
        .ok_or(HeError::InvalidParams("encoded matrix has no tiles"))?;
    let ctx = first.context().clone();
    let (rows, cols) = m.shape();
    let col_tiles = m.col_tiles();
    let mut out = Vec::with_capacity(28 + rows * col_tiles * ctx.len() * ctx.degree() * 8);
    write_header(&mut out, Kind::EncodedMatrix, Some(&ctx), ctx.degree());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
    out.extend_from_slice(&(col_tiles as u32).to_le_bytes());
    for row in tiles {
        for tile in row {
            write_rns_poly(&mut out, tile);
        }
    }
    Ok(out)
}

/// Deserializes a pre-encoded matrix.
///
/// Tile words are stored NTT-domain verbatim (same convention as key
/// material) and re-tagged on read; no transform runs.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`], plus the payload must live in
/// the augmented basis and its byte length must match the declared shape
/// exactly (checked before any tile allocation).
pub fn encoded_matrix_from_bytes(data: &[u8], params: &ChamParams) -> Result<EncodedMatrix> {
    let mut r = Reader::new(data);
    let (kind, degree, ctx) = read_header(&mut r, params)?;
    if kind != Kind::EncodedMatrix {
        return Err(HeError::Incompatible("expected an encoded-matrix payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible(
        "encoded-matrix payload missing modulus chain",
    ))?;
    if ctx != *params.augmented_context() {
        return Err(HeError::Incompatible(
            "encoded matrix must live in the augmented basis",
        ));
    }
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let col_tiles = r.u32()? as usize;
    if rows == 0 || cols == 0 || col_tiles != cols.div_ceil(degree) {
        return Err(HeError::Incompatible("implausible encoded-matrix shape"));
    }
    // Exact-length check before allocating anything tile-sized: the
    // declared shape fixes the payload size to the byte.
    let tile_bytes = ctx.len() * degree * 8;
    let expected = rows
        .checked_mul(col_tiles)
        .and_then(|t| t.checked_mul(tile_bytes))
        .ok_or(HeError::Incompatible("implausible encoded-matrix shape"))?;
    if data.len() - r.pos != expected {
        return Err(HeError::Incompatible(
            "encoded-matrix payload length does not match its shape",
        ));
    }
    let mut tiles = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(col_tiles);
        for _ in 0..col_tiles {
            row.push(retag_ntt(read_rns_poly(&mut r, &ctx)?));
        }
        tiles.push(row);
    }
    if !r.done() {
        return Err(HeError::Incompatible(
            "trailing bytes after encoded-matrix payload",
        ));
    }
    Ok(EncodedMatrix::from_tiles(rows, cols, tiles))
}

/// Serializes a plaintext.
pub fn plaintext_to_bytes(pt: &Plaintext) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + pt.len() * 8);
    write_header(&mut out, Kind::Plain, None, pt.len());
    for &v in pt.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes a plaintext.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`], plus values must be below `t`.
pub fn plaintext_from_bytes(data: &[u8], params: &ChamParams) -> Result<Plaintext> {
    let mut r = Reader::new(data);
    let (kind, degree, _) = read_header(&mut r, params)?;
    if kind != Kind::Plain {
        return Err(HeError::Incompatible("expected a plaintext payload"));
    }
    let t = params.plain_modulus().value();
    let mut values = Vec::with_capacity(degree);
    for _ in 0..degree {
        let v = r.u64()?;
        if v >= t {
            return Err(HeError::Incompatible("plaintext value exceeds the modulus"));
        }
        values.push(v);
    }
    if !r.done() {
        return Err(HeError::Incompatible(
            "trailing bytes after plaintext payload",
        ));
    }
    Ok(Plaintext::from_values(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::extract::extract_lwe;
    use crate::keys::SecretKey;
    use rand::SeedableRng;

    fn setup() -> (
        ChamParams,
        Encryptor,
        Decryptor,
        CoeffEncoder,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        (params, enc, dec, coder, rng)
    }

    #[test]
    fn rlwe_roundtrip_both_bases() {
        let (params, enc, dec, coder, mut rng) = setup();
        let pt = coder.encode_vector(&[11, 22, 33]).unwrap();
        for ct in [
            enc.encrypt(&pt, &mut rng),
            enc.encrypt_augmented(&pt, &mut rng),
        ] {
            let bytes = rlwe_to_bytes(&ct);
            let back = rlwe_from_bytes(&bytes, &params).unwrap();
            assert_eq!(dec.decrypt(&back).values()[..3], [11, 22, 33]);
        }
    }

    #[test]
    fn rlwe_roundtrip_after_modswitch() {
        let (params, enc, dec, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[9]).unwrap(), &mut rng);
        let small = crate::ops::mod_switch_to_single(&ct, &params).unwrap();
        let back = rlwe_from_bytes(&rlwe_to_bytes(&small), &params).unwrap();
        assert_eq!(dec.decrypt(&back).values()[0], 9);
        // Single-limb payloads are ~half the size.
        assert!(rlwe_to_bytes(&small).len() < rlwe_to_bytes(&ct).len());
    }

    #[test]
    fn ntt_form_ciphertext_serializes() {
        let (params, enc, dec, coder, mut rng) = setup();
        let mut ct = enc.encrypt(&coder.encode_vector(&[5]).unwrap(), &mut rng);
        ct.to_ntt();
        let back = rlwe_from_bytes(&rlwe_to_bytes(&ct), &params).unwrap();
        assert_eq!(dec.decrypt(&back).values()[0], 5);
    }

    #[test]
    fn lwe_roundtrip() {
        let (params, enc, dec, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[777]).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, 0).unwrap();
        let back = lwe_from_bytes(&lwe_to_bytes(&lwe), &params).unwrap();
        assert_eq!(dec.decrypt_lwe(&back), 777);
        assert_eq!(back, lwe);
    }

    #[test]
    fn plaintext_roundtrip() {
        let (params, _, _, coder, _) = setup();
        let pt = coder.encode_vector(&[1, 2, 3]).unwrap();
        let back = plaintext_from_bytes(&plaintext_to_bytes(&pt), &params).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn malformed_payloads_rejected() {
        let (params, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let good = rlwe_to_bytes(&ct);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[2] = 99;
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Wrong kind.
        let mut bad = good.clone();
        bad[3] = Kind::Lwe as u8;
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Truncated.
        assert!(rlwe_from_bytes(&good[..good.len() - 1], &params).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Foreign modulus chain.
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&65537u64.to_le_bytes());
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Out-of-range coefficient.
        let mut bad = good;
        let coeff_start = 8 + 2 * 8; // header + 2 limb moduli
        bad[coeff_start..coeff_start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(rlwe_from_bytes(&bad, &params).is_err());
    }

    #[test]
    fn ksk_and_galois_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = crate::keys::SecretKey::generate(&params, &mut rng);
        let coder = CoeffEncoder::new(&params);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        // A KSK round-trips and still key-switches correctly.
        let ksk = crate::keys::KeySwitchKey::generate(&sk, sk.coeffs(), &mut rng).unwrap();
        let back = ksk_from_bytes(&ksk_to_bytes(&ksk), &params).unwrap();
        let ct = enc.encrypt(&coder.encode_vector(&[321]).unwrap(), &mut rng);
        let (ks_b, ks_a) = crate::ops::keyswitch_mask(ct.a(), &back, &params).unwrap();
        let switched =
            crate::ciphertext::RlweCiphertext::new(ct.b().clone().add(&ks_b).unwrap(), ks_a)
                .unwrap();
        assert_eq!(dec.decrypt(&switched).values()[0], 321);
        // A Galois set round-trips and still packs.
        let gkeys = crate::keys::GaloisKeys::generate_for_packing(&sk, 2, &mut rng).unwrap();
        let bytes = galois_keys_to_bytes(&gkeys, &[3, 5]).unwrap();
        let gback = galois_keys_from_bytes(&bytes, &params).unwrap();
        let lwes: Vec<_> = [7u64, 8, 9, 10]
            .iter()
            .map(|&v| {
                let c = enc.encrypt(&coder.encode_vector(&[v]).unwrap(), &mut rng);
                crate::extract::extract_lwe(&c, 0).unwrap()
            })
            .collect();
        let packed = crate::pack::pack_lwes(&lwes, &gback, &params).unwrap();
        let pt = dec.decrypt(&packed.ciphertext);
        assert_eq!(packed.decode(&pt, &params).unwrap(), vec![7, 8, 9, 10]);
        // Asking to serialize a missing index fails.
        assert!(galois_keys_to_bytes(&gkeys, &[99]).is_err());
        // Malformed set payloads are rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(galois_keys_from_bytes(&bad, &params).is_err());
        assert!(galois_keys_from_bytes(&bytes[..10], &params).is_err());
    }

    #[test]
    fn encoded_matrix_roundtrip_bit_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let hmvp = crate::hmvp::Hmvp::new(&params);
        let t = params.plain_modulus().value();
        // A shape spanning multiple column tiles.
        let a = crate::hmvp::Matrix::random(3, params.degree() + 5, t, &mut rng);
        let encoded = hmvp.encode_matrix(&a).unwrap();
        let bytes = encoded_matrix_to_bytes(&encoded).unwrap();
        let back = encoded_matrix_from_bytes(&bytes, &params).unwrap();
        assert_eq!(back.shape(), encoded.shape());
        assert_eq!(back.col_tiles(), encoded.col_tiles());
        // The restored encoding is byte-identical on re-serialization...
        assert_eq!(encoded_matrix_to_bytes(&back).unwrap(), bytes);
        // ...and produces the exact same decrypted HMVP result.
        let v: Vec<u64> = (0..a.cols()).map(|i| (i as u64 * 7 + 1) % t).collect();
        let gkeys =
            crate::keys::GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng)
                .unwrap();
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let from_original = hmvp.multiply(&encoded, &cts, &gkeys).unwrap();
        let from_restored = hmvp.multiply(&back, &cts, &gkeys).unwrap();
        let got_a = hmvp.decrypt_result(&from_original, &dec).unwrap();
        let got_b = hmvp.decrypt_result(&from_restored, &dec).unwrap();
        assert_eq!(got_a, got_b);
        assert_eq!(got_a, a.mul_vector_mod(&v, params.plain_modulus()).unwrap());
    }

    #[test]
    fn encoded_matrix_malformed_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let params = ChamParams::insecure_test_default().unwrap();
        let hmvp = crate::hmvp::Hmvp::new(&params);
        let t = params.plain_modulus().value();
        let a = crate::hmvp::Matrix::random(2, 6, t, &mut rng);
        let good = encoded_matrix_to_bytes(&hmvp.encode_matrix(&a).unwrap()).unwrap();

        // Wrong kind byte.
        let mut bad = good.clone();
        bad[3] = Kind::Ksk as u8;
        assert!(encoded_matrix_from_bytes(&bad, &params).is_err());
        // Truncated.
        assert!(encoded_matrix_from_bytes(&good[..good.len() - 1], &params).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(encoded_matrix_from_bytes(&bad, &params).is_err());
        // Zero rows.
        let limbs = params.augmented_context().len();
        let shape_at = 8 + limbs * 8; // magic+ver+kind+degree + limb moduli
        let mut bad = good.clone();
        bad[shape_at..shape_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(encoded_matrix_from_bytes(&bad, &params).is_err());
        // Inflated row count: shape no longer matches the byte length,
        // rejected before any tile is allocated.
        let mut bad = good.clone();
        bad[shape_at..shape_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(encoded_matrix_from_bytes(&bad, &params).is_err());
        // col_tiles inconsistent with cols.
        let mut bad = good.clone();
        bad[shape_at + 8..shape_at + 12].copy_from_slice(&7u32.to_le_bytes());
        assert!(encoded_matrix_from_bytes(&bad, &params).is_err());
        // Out-of-range tile word.
        let mut bad = good;
        let words_at = shape_at + 12;
        bad[words_at..words_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(encoded_matrix_from_bytes(&bad, &params).is_err());
    }

    #[test]
    fn wrong_degree_rejected() {
        let (_, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let bytes = rlwe_to_bytes(&ct);
        let other = crate::params::ChamParamsBuilder::new()
            .degree(512)
            .build()
            .unwrap();
        assert!(matches!(
            rlwe_from_bytes(&bytes, &other),
            Err(HeError::ShapeMismatch { .. })
        ));
    }
}
