//! Wire format: byte serialization for ciphertexts and plaintexts.
//!
//! The two-party protocols (§II-F) ship ciphertexts between machines; this
//! module defines the byte layout the `cham-apps` transcripts charge for
//! and round-trips it losslessly. The format is deliberately simple and
//! versioned:
//!
//! ```text
//! [magic u16 = 0xC4A7] [version u8] [kind u8]
//! [degree u32 LE] [limb_count u8] [limb moduli u64 LE ...]
//! payload (kind-specific), all coefficients u64 LE
//! ```
//!
//! Deserialization validates the header against the receiver's parameter
//! set — a ciphertext for foreign parameters is rejected, not
//! misinterpreted.

use crate::ciphertext::{LweCiphertext, RlweCiphertext};
use crate::encoding::Plaintext;
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::poly::Poly;
use cham_math::rns::{Form, RnsContext, RnsPoly};

const MAGIC: u16 = 0xC4A7;
const VERSION: u8 = 1;

/// Payload discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Rlwe = 1,
    Lwe = 2,
    Plain = 3,
    Ksk = 4,
    GaloisSet = 5,
}

impl Kind {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            1 => Ok(Kind::Rlwe),
            2 => Ok(Kind::Lwe),
            3 => Ok(Kind::Plain),
            4 => Ok(Kind::Ksk),
            5 => Ok(Kind::GaloisSet),
            _ => Err(HeError::Incompatible("unknown wire payload kind")),
        }
    }
}

fn write_header(out: &mut Vec<u8>, kind: Kind, ctx: Option<&RnsContext>, degree: usize) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&(degree as u32).to_le_bytes());
    match ctx {
        Some(ctx) => {
            out.push(ctx.len() as u8);
            for m in ctx.moduli() {
                out.extend_from_slice(&m.value().to_le_bytes());
            }
        }
        None => out.push(0),
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(HeError::Incompatible("truncated wire payload"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn read_header<'a>(
    r: &mut Reader<'a>,
    params: &ChamParams,
) -> Result<(Kind, usize, Option<RnsContext>)> {
    if r.u16()? != MAGIC {
        return Err(HeError::Incompatible("bad wire magic"));
    }
    if r.u8()? != VERSION {
        return Err(HeError::Incompatible("unsupported wire version"));
    }
    let kind = Kind::from_u8(r.u8()?)?;
    let degree = r.u32()? as usize;
    if degree != params.degree() {
        return Err(HeError::ShapeMismatch {
            expected: params.degree(),
            got: degree,
        });
    }
    let limbs = r.u8()? as usize;
    let ctx = if limbs == 0 {
        None
    } else {
        let mut primes = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            primes.push(r.u64()?);
        }
        // Only the receiver's known bases are acceptable.
        let ct_primes: Vec<u64> = params
            .ciphertext_context()
            .moduli()
            .iter()
            .map(|m| m.value())
            .collect();
        let aug_primes: Vec<u64> = params
            .augmented_context()
            .moduli()
            .iter()
            .map(|m| m.value())
            .collect();
        let ctx = if primes == ct_primes {
            params.ciphertext_context().clone()
        } else if primes == aug_primes {
            params.augmented_context().clone()
        } else if primes.len() == 1 && primes[0] == ct_primes[0] {
            params.ciphertext_context().drop_last()?
        } else {
            return Err(HeError::Incompatible(
                "wire payload uses a foreign modulus chain",
            ));
        };
        Some(ctx)
    };
    Ok((kind, degree, ctx))
}

fn write_rns_poly(out: &mut Vec<u8>, p: &RnsPoly) {
    for limb in p.limbs() {
        for &c in limb.coeffs() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
}

fn read_rns_poly(r: &mut Reader<'_>, ctx: &RnsContext) -> Result<RnsPoly> {
    let n = ctx.degree();
    let mut limbs = Vec::with_capacity(ctx.len());
    for m in ctx.moduli() {
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.u64()?;
            if v >= m.value() {
                return Err(HeError::Incompatible(
                    "wire coefficient out of canonical range",
                ));
            }
            coeffs.push(v);
        }
        limbs.push(Poly::from_coeffs(coeffs));
    }
    Ok(RnsPoly::from_limbs(ctx, limbs, Form::Coeff)?)
}

/// Serializes an RLWE ciphertext (converted to coefficient form).
pub fn rlwe_to_bytes(ct: &RlweCiphertext) -> Vec<u8> {
    let mut c = ct.clone();
    c.to_coeff();
    let ctx = c.b().context().clone();
    let mut out = Vec::with_capacity(16 + 2 * ctx.len() * ctx.degree() * 8);
    write_header(&mut out, Kind::Rlwe, Some(&ctx), ctx.degree());
    write_rns_poly(&mut out, c.b());
    write_rns_poly(&mut out, c.a());
    out
}

/// Deserializes an RLWE ciphertext.
///
/// # Errors
/// [`HeError::Incompatible`] / [`HeError::ShapeMismatch`] for malformed,
/// truncated, foreign-parameter, or trailing-garbage payloads.
pub fn rlwe_from_bytes(data: &[u8], params: &ChamParams) -> Result<RlweCiphertext> {
    let mut r = Reader::new(data);
    let (kind, _, ctx) = read_header(&mut r, params)?;
    if kind != Kind::Rlwe {
        return Err(HeError::Incompatible("expected an rlwe payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible("rlwe payload missing modulus chain"))?;
    let b = read_rns_poly(&mut r, &ctx)?;
    let a = read_rns_poly(&mut r, &ctx)?;
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after rlwe payload"));
    }
    RlweCiphertext::new(b, a)
}

/// Serializes an LWE ciphertext.
pub fn lwe_to_bytes(ct: &LweCiphertext) -> Vec<u8> {
    let ctx = ct.a().context().clone();
    let mut out = Vec::with_capacity(16 + (ctx.len() + ctx.len() * ctx.degree()) * 8);
    write_header(&mut out, Kind::Lwe, Some(&ctx), ctx.degree());
    for &b in ct.b() {
        out.extend_from_slice(&b.to_le_bytes());
    }
    write_rns_poly(&mut out, ct.a());
    out
}

/// Deserializes an LWE ciphertext.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`].
pub fn lwe_from_bytes(data: &[u8], params: &ChamParams) -> Result<LweCiphertext> {
    let mut r = Reader::new(data);
    let (kind, _, ctx) = read_header(&mut r, params)?;
    if kind != Kind::Lwe {
        return Err(HeError::Incompatible("expected an lwe payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible("lwe payload missing modulus chain"))?;
    let mut b = Vec::with_capacity(ctx.len());
    for m in ctx.moduli() {
        let v = r.u64()?;
        if v >= m.value() {
            return Err(HeError::Incompatible(
                "wire coefficient out of canonical range",
            ));
        }
        b.push(v);
    }
    let a = read_rns_poly(&mut r, &ctx)?;
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after lwe payload"));
    }
    LweCiphertext::new(b, a)
}

/// Serializes a key-switch key (NTT-form digits over the augmented basis).
pub fn ksk_to_bytes(ksk: &crate::keys::KeySwitchKey) -> Vec<u8> {
    let ctx = ksk.b[0].context().clone();
    let mut out = Vec::new();
    write_header(&mut out, Kind::Ksk, Some(&ctx), ctx.degree());
    out.push(ksk.digit_count() as u8);
    for i in 0..ksk.digit_count() {
        write_rns_poly(&mut out, &ksk.b[i]);
        write_rns_poly(&mut out, &ksk.a[i]);
    }
    out
}

/// Deserializes a key-switch key.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`].
pub fn ksk_from_bytes(data: &[u8], params: &ChamParams) -> Result<crate::keys::KeySwitchKey> {
    let mut r = Reader::new(data);
    let (kind, _, ctx) = read_header(&mut r, params)?;
    if kind != Kind::Ksk {
        return Err(HeError::Incompatible("expected a key-switch-key payload"));
    }
    let ctx = ctx.ok_or(HeError::Incompatible("ksk payload missing modulus chain"))?;
    if ctx != *params.augmented_context() {
        return Err(HeError::Incompatible(
            "ksk must live in the augmented basis",
        ));
    }
    let digits = r.u8()? as usize;
    if digits == 0 || digits > 8 {
        return Err(HeError::Incompatible("implausible ksk digit count"));
    }
    let mut b = Vec::with_capacity(digits);
    let mut a = Vec::with_capacity(digits);
    for _ in 0..digits {
        let mut bp = read_rns_poly(&mut r, &ctx)?;
        let mut ap = read_rns_poly(&mut r, &ctx)?;
        // Stored coefficients are the NTT-domain words; restore the form
        // tag by converting coeff->ntt-tagged without touching data.
        bp = retag_ntt(bp);
        ap = retag_ntt(ap);
        b.push(bp);
        a.push(ap);
    }
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after ksk payload"));
    }
    Ok(crate::keys::KeySwitchKey { b, a })
}

/// Re-tags a freshly-read polynomial as NTT-form without transforming
/// (the wire format for keys stores NTT-domain words verbatim).
fn retag_ntt(p: RnsPoly) -> RnsPoly {
    let ctx = p.context().clone();
    let limbs = p.limbs().to_vec();
    RnsPoly::from_limbs(&ctx, limbs, Form::Ntt).expect("limbs match context")
}

/// Serializes a Galois key set (sorted by automorphism index for a
/// canonical byte representation).
pub fn galois_keys_to_bytes(keys: &crate::keys::GaloisKeys, indices: &[usize]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(Kind::GaloisSet as u8);
    out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    for &k in &sorted {
        let ksk = keys.get(k)?;
        let body = ksk_to_bytes(ksk);
        out.extend_from_slice(&(k as u64).to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }
    Ok(out)
}

/// Deserializes a Galois key set.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`].
pub fn galois_keys_from_bytes(data: &[u8], params: &ChamParams) -> Result<crate::keys::GaloisKeys> {
    let mut r = Reader::new(data);
    if r.u16()? != MAGIC {
        return Err(HeError::Incompatible("bad wire magic"));
    }
    if r.u8()? != VERSION {
        return Err(HeError::Incompatible("unsupported wire version"));
    }
    if r.u8()? != Kind::GaloisSet as u8 {
        return Err(HeError::Incompatible("expected a galois-key-set payload"));
    }
    let count = r.u32()? as usize;
    if count > 64 {
        return Err(HeError::Incompatible("implausible galois key count"));
    }
    let mut keys = crate::keys::GaloisKeys::new();
    for _ in 0..count {
        let k = r.u64()? as usize;
        let len = r.u32()? as usize;
        let body = r.take(len)?;
        keys.insert(k, ksk_from_bytes(body, params)?);
    }
    if !r.done() {
        return Err(HeError::Incompatible("trailing bytes after galois key set"));
    }
    Ok(keys)
}

/// Serializes a plaintext.
pub fn plaintext_to_bytes(pt: &Plaintext) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + pt.len() * 8);
    write_header(&mut out, Kind::Plain, None, pt.len());
    for &v in pt.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes a plaintext.
///
/// # Errors
/// Same conditions as [`rlwe_from_bytes`], plus values must be below `t`.
pub fn plaintext_from_bytes(data: &[u8], params: &ChamParams) -> Result<Plaintext> {
    let mut r = Reader::new(data);
    let (kind, degree, _) = read_header(&mut r, params)?;
    if kind != Kind::Plain {
        return Err(HeError::Incompatible("expected a plaintext payload"));
    }
    let t = params.plain_modulus().value();
    let mut values = Vec::with_capacity(degree);
    for _ in 0..degree {
        let v = r.u64()?;
        if v >= t {
            return Err(HeError::Incompatible("plaintext value exceeds the modulus"));
        }
        values.push(v);
    }
    if !r.done() {
        return Err(HeError::Incompatible(
            "trailing bytes after plaintext payload",
        ));
    }
    Ok(Plaintext::from_values(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::extract::extract_lwe;
    use crate::keys::SecretKey;
    use rand::SeedableRng;

    fn setup() -> (
        ChamParams,
        Encryptor,
        Decryptor,
        CoeffEncoder,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        (params, enc, dec, coder, rng)
    }

    #[test]
    fn rlwe_roundtrip_both_bases() {
        let (params, enc, dec, coder, mut rng) = setup();
        let pt = coder.encode_vector(&[11, 22, 33]).unwrap();
        for ct in [
            enc.encrypt(&pt, &mut rng),
            enc.encrypt_augmented(&pt, &mut rng),
        ] {
            let bytes = rlwe_to_bytes(&ct);
            let back = rlwe_from_bytes(&bytes, &params).unwrap();
            assert_eq!(dec.decrypt(&back).values()[..3], [11, 22, 33]);
        }
    }

    #[test]
    fn rlwe_roundtrip_after_modswitch() {
        let (params, enc, dec, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[9]).unwrap(), &mut rng);
        let small = crate::ops::mod_switch_to_single(&ct, &params).unwrap();
        let back = rlwe_from_bytes(&rlwe_to_bytes(&small), &params).unwrap();
        assert_eq!(dec.decrypt(&back).values()[0], 9);
        // Single-limb payloads are ~half the size.
        assert!(rlwe_to_bytes(&small).len() < rlwe_to_bytes(&ct).len());
    }

    #[test]
    fn ntt_form_ciphertext_serializes() {
        let (params, enc, dec, coder, mut rng) = setup();
        let mut ct = enc.encrypt(&coder.encode_vector(&[5]).unwrap(), &mut rng);
        ct.to_ntt();
        let back = rlwe_from_bytes(&rlwe_to_bytes(&ct), &params).unwrap();
        assert_eq!(dec.decrypt(&back).values()[0], 5);
    }

    #[test]
    fn lwe_roundtrip() {
        let (params, enc, dec, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[777]).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, 0).unwrap();
        let back = lwe_from_bytes(&lwe_to_bytes(&lwe), &params).unwrap();
        assert_eq!(dec.decrypt_lwe(&back), 777);
        assert_eq!(back, lwe);
    }

    #[test]
    fn plaintext_roundtrip() {
        let (params, _, _, coder, _) = setup();
        let pt = coder.encode_vector(&[1, 2, 3]).unwrap();
        let back = plaintext_from_bytes(&plaintext_to_bytes(&pt), &params).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn malformed_payloads_rejected() {
        let (params, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let good = rlwe_to_bytes(&ct);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[2] = 99;
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Wrong kind.
        let mut bad = good.clone();
        bad[3] = Kind::Lwe as u8;
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Truncated.
        assert!(rlwe_from_bytes(&good[..good.len() - 1], &params).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Foreign modulus chain.
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&65537u64.to_le_bytes());
        assert!(rlwe_from_bytes(&bad, &params).is_err());
        // Out-of-range coefficient.
        let mut bad = good;
        let coeff_start = 8 + 2 * 8; // header + 2 limb moduli
        bad[coeff_start..coeff_start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(rlwe_from_bytes(&bad, &params).is_err());
    }

    #[test]
    fn ksk_and_galois_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = crate::keys::SecretKey::generate(&params, &mut rng);
        let coder = CoeffEncoder::new(&params);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        // A KSK round-trips and still key-switches correctly.
        let ksk = crate::keys::KeySwitchKey::generate(&sk, sk.coeffs(), &mut rng).unwrap();
        let back = ksk_from_bytes(&ksk_to_bytes(&ksk), &params).unwrap();
        let ct = enc.encrypt(&coder.encode_vector(&[321]).unwrap(), &mut rng);
        let (ks_b, ks_a) = crate::ops::keyswitch_mask(ct.a(), &back, &params).unwrap();
        let switched =
            crate::ciphertext::RlweCiphertext::new(ct.b().clone().add(&ks_b).unwrap(), ks_a)
                .unwrap();
        assert_eq!(dec.decrypt(&switched).values()[0], 321);
        // A Galois set round-trips and still packs.
        let gkeys = crate::keys::GaloisKeys::generate_for_packing(&sk, 2, &mut rng).unwrap();
        let bytes = galois_keys_to_bytes(&gkeys, &[3, 5]).unwrap();
        let gback = galois_keys_from_bytes(&bytes, &params).unwrap();
        let lwes: Vec<_> = [7u64, 8, 9, 10]
            .iter()
            .map(|&v| {
                let c = enc.encrypt(&coder.encode_vector(&[v]).unwrap(), &mut rng);
                crate::extract::extract_lwe(&c, 0).unwrap()
            })
            .collect();
        let packed = crate::pack::pack_lwes(&lwes, &gback, &params).unwrap();
        let pt = dec.decrypt(&packed.ciphertext);
        assert_eq!(packed.decode(&pt, &params).unwrap(), vec![7, 8, 9, 10]);
        // Asking to serialize a missing index fails.
        assert!(galois_keys_to_bytes(&gkeys, &[99]).is_err());
        // Malformed set payloads are rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(galois_keys_from_bytes(&bad, &params).is_err());
        assert!(galois_keys_from_bytes(&bytes[..10], &params).is_err());
    }

    #[test]
    fn wrong_degree_rejected() {
        let (_, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let bytes = rlwe_to_bytes(&ct);
        let other = crate::params::ChamParamsBuilder::new()
            .degree(512)
            .build()
            .unwrap();
        assert!(matches!(
            rlwe_from_bytes(&bytes, &other),
            Err(HeError::ShapeMismatch { .. })
        ));
    }
}
