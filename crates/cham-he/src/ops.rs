//! Homomorphic operations: plaintext multiplication, rescale, key-switch,
//! and Galois automorphism.
//!
//! These are the per-stage computations of the CHAM pipeline:
//!
//! * stage 1–3 — [`mul_plain`]: NTT, coefficient-wise multiply, INTT,
//! * stage 4 — [`rescale`]: divide by the special modulus,
//! * stage 5–9 — monomial multiply / add / sub (on [`RlweCiphertext`]),
//!   [`apply_galois`] (AUTOMORPHISM + KEYSWITCH).

use crate::ciphertext::RlweCiphertext;
use crate::encoding::Plaintext;
use crate::keys::{GaloisKeys, KeySwitchKey};
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::rns::{Form, FusedAccumulator, RnsContext, RnsPoly};

/// Lifts a plaintext into an RNS basis with **centred** coefficients (so
/// multiplication noise scales with `t/2`, not `t`), returning it in NTT
/// form ready for coefficient-wise multiplication.
///
/// # Errors
/// [`HeError::ShapeMismatch`] on length mismatch.
pub fn lift_plaintext_ntt(
    pt: &Plaintext,
    params: &ChamParams,
    ctx: &RnsContext,
) -> Result<RnsPoly> {
    if pt.len() != ctx.degree() {
        return Err(HeError::ShapeMismatch {
            expected: ctx.degree(),
            got: pt.len(),
        });
    }
    let t = params.plain_modulus();
    let signed: Vec<i64> = pt.values().iter().map(|&v| t.center(t.reduce(v))).collect();
    let mut p = RnsPoly::from_signed(ctx, &signed)?;
    p.to_ntt();
    Ok(p)
}

/// Plaintext–ciphertext multiplication: `ct' = pt ⊙ ct` (the DOTPRODUCT
/// stage when `pt` encodes a matrix row per Eq. 1).
///
/// Accepts the ciphertext in either form; returns it in coefficient form
/// (the pipeline's INTT stage output).
///
/// # Errors
/// Shape/context mismatches from the RNS layer.
pub fn mul_plain(
    ct: &RlweCiphertext,
    pt: &Plaintext,
    params: &ChamParams,
) -> Result<RlweCiphertext> {
    cham_telemetry::counter_add!("cham_he.ops.mul_plain", 1);
    let ctx = ct.b().context().clone();
    let pt_ntt = lift_plaintext_ntt(pt, params, &ctx)?;
    let mut b = ct.b().clone();
    let mut a = ct.a().clone();
    b.to_ntt();
    a.to_ntt();
    b.mul_pointwise_assign(&pt_ntt)?;
    a.mul_pointwise_assign(&pt_ntt)?;
    b.to_coeff();
    a.to_coeff();
    RlweCiphertext::new(b, a)
}

/// Same as [`mul_plain`] but with a pre-lifted NTT-form plaintext — the
/// production path where matrix rows are transformed once and reused
/// (CHAM streams matrix plaintexts from off-chip already in NTT form).
///
/// # Errors
/// Context mismatches from the RNS layer.
pub fn mul_plain_prepared(ct: &RlweCiphertext, pt_ntt: &RnsPoly) -> Result<RlweCiphertext> {
    if pt_ntt.form() != Form::Ntt {
        return Err(HeError::Incompatible(
            "prepared plaintext must be in NTT form",
        ));
    }
    let mut b = ct.b().clone();
    let mut a = ct.a().clone();
    b.to_ntt();
    a.to_ntt();
    b.mul_pointwise_assign(pt_ntt)?;
    a.mul_pointwise_assign(pt_ntt)?;
    b.to_coeff();
    a.to_coeff();
    RlweCiphertext::new(b, a)
}

/// Plaintext addition: `ct' = ct + Δ·pt` (noise unchanged). Used by the
/// HeteroLR protocol's `add_vec` step, where party B folds its own share
/// into A's encrypted activations.
///
/// # Errors
/// Shape mismatches from the RNS layer.
pub fn add_plain(
    ct: &RlweCiphertext,
    pt: &Plaintext,
    params: &ChamParams,
) -> Result<RlweCiphertext> {
    let ctx = ct.b().context().clone();
    if pt.len() != ctx.degree() {
        return Err(HeError::ShapeMismatch {
            expected: ctx.degree(),
            got: pt.len(),
        });
    }
    let t = params.plain_modulus();
    let delta = ctx.modulus_product() / t.value() as u128;
    let limbs = ctx
        .moduli()
        .iter()
        .map(|m| {
            let d = (delta % m.value() as u128) as u64;
            cham_math::poly::Poly::from_coeffs(
                pt.values().iter().map(|&v| m.mul(d, m.reduce(v))).collect(),
            )
        })
        .collect();
    let mut scaled = RnsPoly::from_limbs(&ctx, limbs, Form::Coeff)?;
    if ct.form() == Form::Ntt {
        scaled.to_ntt();
    }
    // Fold `b` into the freshly built Δ·pt in place — one allocation for
    // the sum instead of a second from `add`.
    scaled.add_assign(ct.b())?;
    RlweCiphertext::new(scaled, ct.a().clone())
}

/// Small-scalar multiplication: `ct' = c·ct`, multiplying the plaintext by
/// the *centred* representative of `c mod t` (noise scales with `|c|`, so
/// keep `c` small).
pub fn mul_plain_scalar(ct: &RlweCiphertext, c: u64, params: &ChamParams) -> RlweCiphertext {
    let t = params.plain_modulus();
    let centred = t.center(t.reduce(c));
    let ctx = ct.b().context();
    let apply = |p: &RnsPoly| {
        let limbs = p
            .limbs()
            .iter()
            .zip(ctx.moduli())
            .map(|(l, m)| l.mul_scalar(m.from_signed(centred), m))
            .collect();
        RnsPoly::from_limbs(ctx, limbs, p.form()).expect("limbs match context")
    };
    RlweCiphertext::new(apply(ct.b()), apply(ct.a())).expect("components consistent")
}

/// RESCALE (pipeline stage-4): divide an augmented-basis ciphertext by the
/// special modulus `p`, producing a normal-basis ciphertext and shrinking
/// the multiplication noise by `≈ log2 p` bits.
///
/// # Errors
/// [`HeError::Incompatible`] when the ciphertext is not in the augmented
/// basis of `params`.
pub fn rescale(ct: &RlweCiphertext, params: &ChamParams) -> Result<RlweCiphertext> {
    cham_telemetry::counter_add!("cham_he.ops.rescale", 1);
    if ct.b().context() != params.augmented_context() {
        return Err(HeError::Incompatible(
            "rescale expects an augmented-basis ciphertext",
        ));
    }
    let target = params.ciphertext_context();
    let mut b = ct.b().clone();
    let mut a = ct.a().clone();
    b.to_coeff();
    a.to_coeff();
    RlweCiphertext::new(b.rescale_by_last(target)?, a.rescale_by_last(target)?)
}

/// MODSWITCH: drops the last remaining auxiliary prime of a *normal-basis*
/// ciphertext, producing a single-limb ciphertext over `q0` — the
/// communication optimisation for result ciphertexts (§IV-B lists
/// MODSWITCH among the PPU functions): the returned ciphertext is half the
/// size and still decrypts, with scale `≈ q0/t`.
///
/// # Errors
/// [`HeError::Incompatible`] unless the input is in the normal basis of
/// `params`.
pub fn mod_switch_to_single(ct: &RlweCiphertext, params: &ChamParams) -> Result<RlweCiphertext> {
    cham_telemetry::counter_add!("cham_he.ops.mod_switch", 1);
    if ct.b().context() != params.ciphertext_context() {
        return Err(HeError::Incompatible(
            "mod_switch expects a normal-basis ciphertext",
        ));
    }
    let target = params.ciphertext_context().drop_last()?;
    let mut b = ct.b().clone();
    let mut a = ct.a().clone();
    b.to_coeff();
    a.to_coeff();
    RlweCiphertext::new(b.rescale_by_last(&target)?, a.rescale_by_last(&target)?)
}

/// Key-switches the mask `a` (currently keyed to some `s_old`) to the
/// owner's key, returning the correction pair `(b_ks, a_ks)` over the
/// normal basis such that `b_ks + a_ks·s ≈ a·s_old`.
///
/// This is the KEYSWITCH functional unit: RNS digit decomposition, one
/// NTT-domain multiply-accumulate per digit against the KSK, then a rescale
/// by `p`.
///
/// # Errors
/// Context mismatches from the RNS layer.
pub fn keyswitch_mask(
    a: &RnsPoly,
    ksk: &KeySwitchKey,
    params: &ChamParams,
) -> Result<(RnsPoly, RnsPoly)> {
    cham_telemetry::counter_add!("cham_he.ops.keyswitch", 1);
    cham_telemetry::time_scope!("cham_he.ops.keyswitch");
    let aug = params.augmented_context();
    let target = params.ciphertext_context();
    let mut a_coeff = a.clone();
    a_coeff.to_coeff();
    let mut digits = a_coeff.decompose_digits(aug)?;
    if digits.len() != ksk.digit_count() {
        return Err(HeError::Incompatible(
            "digit count does not match the key-switch key",
        ));
    }
    // The per-digit NTTs are independent — fan them out across the pool.
    // The digit × KSK multiplies then run through one fused accumulator
    // pair over per-worker scratch (deferred reduction, no per-term
    // allocation); the sum of products is the same residues the strict
    // multiply/add sequence produces, so the result stays bit-identical.
    cham_pool::for_each_mut(&mut digits, |_, d| d.to_ntt());
    let lanes = aug.len() * aug.degree();
    let (mut acc_b, mut acc_a) =
        crate::scratch::with_dot_scratch(lanes, |s| -> Result<(RnsPoly, RnsPoly)> {
            let mut b_acc = FusedAccumulator::new(aug, &mut s.b_acc)?;
            let mut a_acc = FusedAccumulator::new(aug, &mut s.a_acc)?;
            for (i, d) in digits.iter().enumerate() {
                b_acc.accumulate(d, &ksk.b[i])?;
                a_acc.accumulate(d, &ksk.a[i])?;
            }
            Ok((b_acc.finish(), a_acc.finish()))
        })?;
    acc_b.to_coeff();
    acc_a.to_coeff();
    Ok((
        acc_b.rescale_by_last(target)?,
        acc_a.rescale_by_last(target)?,
    ))
}

/// AUTOMORPHISM + KEYSWITCH (Alg. 2 lines 4–5): applies the Galois map
/// `X → X^k` to a normal-basis ciphertext and switches the result back to
/// the original key using the Galois key set.
///
/// # Errors
/// [`HeError::MissingGaloisKey`] when no key for `k` is stored;
/// [`HeError::Incompatible`] for an augmented-basis input.
pub fn apply_galois(
    ct: &RlweCiphertext,
    k: usize,
    gkeys: &GaloisKeys,
    params: &ChamParams,
) -> Result<RlweCiphertext> {
    cham_telemetry::counter_add!("cham_he.ops.apply_galois", 1);
    if ct.b().context() != params.ciphertext_context() {
        return Err(HeError::Incompatible(
            "apply_galois expects a normal-basis ciphertext",
        ));
    }
    let ksk = gkeys.get(k)?;
    let mut c = ct.clone();
    c.to_coeff();
    let b_k = c.b().automorph(k)?;
    let a_k = c.a().automorph(k)?;
    let (ks_b, ks_a) = keyswitch_mask(&a_k, ksk, params)?;
    RlweCiphertext::new(b_k.add(&ks_b)?, ks_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::SecretKey;
    use rand::{Rng, SeedableRng};

    fn setup() -> (
        ChamParams,
        SecretKey,
        Encryptor,
        Decryptor,
        CoeffEncoder,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        (params, sk, enc, dec, coder, rng)
    }

    #[test]
    fn mul_plain_dot_product_constant_coeff() {
        let (params, _, enc, dec, coder, mut rng) = setup();
        let t = params.plain_modulus();
        let n = params.degree();
        let row: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let ct_v = enc.encrypt_augmented(&coder.encode_vector(&v).unwrap(), &mut rng);
        let pt_row = coder.encode_row(&row).unwrap();
        let prod = mul_plain(&ct_v, &pt_row, &params).unwrap();
        let report = dec.decrypt_with_noise(&prod);
        let expect = row
            .iter()
            .zip(&v)
            .fold(0u64, |acc, (&x, &y)| t.add(acc, t.mul(x, y)));
        assert_eq!(report.plaintext.values()[0], expect);
        assert!(report.budget_bits > 0.0);
    }

    #[test]
    fn rescale_preserves_plaintext_and_shrinks_noise() {
        let (params, _, enc, dec, coder, mut rng) = setup();
        let t = params.plain_modulus();
        let n = params.degree();
        let row: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let ct_v = enc.encrypt_augmented(&coder.encode_vector(&v).unwrap(), &mut rng);
        let prod = mul_plain(&ct_v, &coder.encode_row(&row).unwrap(), &params).unwrap();
        let before = dec.decrypt_with_noise(&prod);
        let rescaled = rescale(&prod, &params).unwrap();
        let after = dec.decrypt_with_noise(&rescaled);
        assert_eq!(before.plaintext.values()[0], after.plaintext.values()[0]);
        assert!(
            after.noise_bits < before.noise_bits,
            "before {} after {}",
            before.noise_bits,
            after.noise_bits
        );
    }

    #[test]
    fn rescale_rejects_normal_basis() {
        let (params, _, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        assert!(rescale(&ct, &params).is_err());
    }

    #[test]
    fn keyswitch_identity_key_preserves_decryption() {
        // Switching from s to s itself must be (nearly) a no-op.
        let (params, sk, enc, dec, coder, mut rng) = setup();
        let pt = coder.encode_vector(&[42, 17, 65000]).unwrap();
        let ct = enc.encrypt(&pt, &mut rng);
        let ksk = KeySwitchKey::generate(&sk, sk.coeffs(), &mut rng).unwrap();
        let (ks_b, ks_a) = keyswitch_mask(ct.a(), &ksk, &params).unwrap();
        let new_ct = RlweCiphertext::new(ct.b().clone().add(&ks_b).unwrap(), ks_a).unwrap();
        let report = dec.decrypt_with_noise(&new_ct);
        assert_eq!(report.plaintext.values()[..3], [42, 17, 65000]);
        assert!(report.budget_bits > 20.0);
    }

    #[test]
    fn apply_galois_permutes_plaintext() {
        let (params, sk, enc, dec, coder, mut rng) = setup();
        let n = params.degree();
        let t = params.plain_modulus();
        let vals: Vec<u64> = (0..n as u64).map(|i| i % t.value()).collect();
        let pt = coder.encode_vector(&vals).unwrap();
        let ct = enc.encrypt(&pt, &mut rng);
        let k = 3usize;
        let gkeys = GaloisKeys::generate(&sk, &[k], &mut rng).unwrap();
        let rotated = apply_galois(&ct, k, &gkeys, &params).unwrap();
        let report = dec.decrypt_with_noise(&rotated);
        // Expected: σ_k applied to the plaintext polynomial over Z_t.
        let expect = cham_math::poly::Poly::from_coeffs(vals)
            .automorph(k, t)
            .unwrap();
        assert_eq!(report.plaintext.values(), expect.coeffs());
        assert!(report.budget_bits > 10.0, "budget {}", report.budget_bits);
    }

    #[test]
    fn apply_galois_requires_key() {
        let (params, _, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let gkeys = GaloisKeys::new();
        assert!(matches!(
            apply_galois(&ct, 3, &gkeys, &params),
            Err(HeError::MissingGaloisKey(3))
        ));
    }

    #[test]
    fn apply_galois_rejects_augmented() {
        let (params, sk, enc, _, coder, mut rng) = setup();
        let ct = enc.encrypt_augmented(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let gkeys = GaloisKeys::generate(&sk, &[3], &mut rng).unwrap();
        assert!(apply_galois(&ct, 3, &gkeys, &params).is_err());
    }

    #[test]
    fn mod_switch_halves_size_and_preserves_plaintext() {
        let (params, _, enc, dec, coder, mut rng) = setup();
        let pt = coder.encode_vector(&[42, 65000, 7]).unwrap();
        let ct = enc.encrypt(&pt, &mut rng);
        let small = mod_switch_to_single(&ct, &params).unwrap();
        assert_eq!(small.b().context().len(), 1);
        let report = dec.decrypt_with_noise(&small);
        assert_eq!(&report.plaintext.values()[..3], &[42, 65000, 7]);
        assert!(report.budget_bits > 0.0, "budget {}", report.budget_bits);
        // Switching an augmented ciphertext is rejected.
        let aug = enc.encrypt_augmented(&pt, &mut rng);
        assert!(mod_switch_to_single(&aug, &params).is_err());
    }

    #[test]
    fn add_plain_and_scalar_mul() {
        let (params, _, enc, dec, coder, mut rng) = setup();
        let t = params.plain_modulus();
        let pt_a = coder.encode_vector(&[100, 65530]).unwrap();
        let pt_b = coder.encode_vector(&[7, 10]).unwrap();
        let ct = enc.encrypt_augmented(&pt_a, &mut rng);
        let sum = add_plain(&ct, &pt_b, &params).unwrap();
        let got = dec.decrypt(&sum);
        assert_eq!(got.values()[0], 107);
        assert_eq!(got.values()[1], t.add(65530, 10));
        // Scalar multiply by 3 and by t−1 (i.e. −1).
        let tripled = mul_plain_scalar(&ct, 3, &params);
        assert_eq!(dec.decrypt(&tripled).values()[0], 300);
        let negated = mul_plain_scalar(&ct, t.value() - 1, &params);
        assert_eq!(dec.decrypt(&negated).values()[0], t.value() - 100);
    }

    #[test]
    fn add_plain_works_in_ntt_form() {
        let (params, _, enc, dec, coder, mut rng) = setup();
        let mut ct = enc.encrypt_augmented(&coder.encode_vector(&[5]).unwrap(), &mut rng);
        ct.to_ntt();
        let sum = add_plain(&ct, &coder.encode_vector(&[6]).unwrap(), &params).unwrap();
        let mut sum = sum;
        sum.to_coeff();
        assert_eq!(dec.decrypt(&sum).values()[0], 11);
    }

    #[test]
    fn prepared_plaintext_matches_unprepared() {
        let (params, _, enc, dec, coder, mut rng) = setup();
        let t = params.plain_modulus().value();
        let n = params.degree();
        let row: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let ct = enc.encrypt_augmented(&coder.encode_vector(&v).unwrap(), &mut rng);
        let pt = coder.encode_row(&row).unwrap();
        let direct = mul_plain(&ct, &pt, &params).unwrap();
        let prepared = lift_plaintext_ntt(&pt, &params, params.augmented_context()).unwrap();
        let via_prepared = mul_plain_prepared(&ct, &prepared).unwrap();
        assert_eq!(
            dec.decrypt(&direct).values(),
            dec.decrypt(&via_prepared).values()
        );
    }
}
