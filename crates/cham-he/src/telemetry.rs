//! Telemetry hooks for the HE layer.
//!
//! Invocation counters cover the paper's operation set (encrypt,
//! decrypt, keyswitch, EXTRACTLWES, PACKTWOLWES, …) under
//! `cham_he.<module>.<op>` names. Noise tracking records two kinds of
//! data: *measured* invariant noise and remaining budget from
//! [`crate::encrypt::Decryptor::decrypt_with_noise`] (histograms in
//! bits), and the *predicted* per-op noise-budget deltas from the
//! [`crate::noise::NoiseEstimator`] (cumulative bit counters per op),
//! so a run record shows both what the estimator promised and what the
//! ciphertexts actually did. No-ops without the `telemetry` feature.

use cham_telemetry::{counter_add, Histogram};

/// Rounds a (possibly negative or fractional) bit quantity to a `u64`
/// counter/histogram increment.
#[inline]
fn bits(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        v.round() as u64
    } else {
        0
    }
}

/// Records a measured noise report (from an actual decryption).
#[inline]
pub(crate) fn record_measured_noise(noise_bits: f64, budget_bits: f64) {
    static NOISE: Histogram = Histogram::with_unit("cham_he.noise.measured_noise_bits", "bits");
    static BUDGET: Histogram = Histogram::with_unit("cham_he.noise.measured_budget_bits", "bits");
    NOISE.record(bits(noise_bits));
    BUDGET.record(bits(budget_bits));
}

/// Records a predicted noise-budget delta for `MULPLAIN`: the estimator
/// turned `input` absolute noise into `output`.
#[inline]
pub(crate) fn record_estimate_mul_plain(input: f64, output: f64) {
    counter_add!("cham_he.noise.estimate.mul_plain.calls", 1);
    counter_add!(
        "cham_he.noise.estimate.mul_plain.growth_bits",
        bits(output.log2() - input.max(1.0).log2())
    );
}

/// Records a predicted noise-budget delta for `RESCALE` (noise usually
/// *shrinks*; the delta counter accumulates the reduction in bits).
#[inline]
pub(crate) fn record_estimate_rescale(input: f64, output: f64) {
    counter_add!("cham_he.noise.estimate.rescale.calls", 1);
    counter_add!(
        "cham_he.noise.estimate.rescale.reduction_bits",
        bits(input.max(1.0).log2() - output.max(1.0).log2())
    );
}

/// Records the predicted additive keyswitch noise.
#[inline]
pub(crate) fn record_estimate_keyswitch(additive: f64) {
    counter_add!("cham_he.noise.estimate.keyswitch.calls", 1);
    counter_add!(
        "cham_he.noise.estimate.keyswitch.additive_bits",
        bits(additive.log2())
    );
}

/// Records a predicted noise-budget delta for `PACKLWES`.
#[inline]
pub(crate) fn record_estimate_pack(input: f64, output: f64) {
    counter_add!("cham_he.noise.estimate.pack.calls", 1);
    counter_add!(
        "cham_he.noise.estimate.pack.growth_bits",
        bits(output.log2() - input.max(1.0).log2())
    );
}
