//! B/FV ciphertext–ciphertext multiplication with relinearisation.
//!
//! CHAM's HMVP only needs plaintext×ciphertext products, but a complete
//! B/FV library — and the Beaver-triple protocols built on it — benefits
//! from one level of ct×ct multiplication. The construction here exploits
//! the repository's *exact* CRT machinery instead of the approximate
//! fast-base-extension of RNS-BFV (BEHZ/HPS):
//!
//! 1. lift both ciphertexts **exactly** (centred CRT) into an extension
//!    basis `{p₂, p₃, p, q1, q0}` wide enough (≈178 bits) that the tensor
//!    product `N·(Q/2)²·t` cannot wrap,
//! 2. tensor `(d0, d1, d2)` in the NTT domain,
//! 3. scale by `t` and divide-and-round by `q0` then `q1` (two rescale
//!    steps — the same pipeline-stage-4 primitive),
//! 4. read the (now small, ≤ 2⁹⁴) results back via centred CRT and embed
//!    them into the standard basis `{q0, q1}`,
//! 5. relinearise `d2` with the generic `s² → s` key-switch.
//!
//! At the paper's parameters (`log Q ≈ 68`, `t = 65537`) this supports
//! **depth-1** multiplication with ≈17 bits of budget to spare — matching
//! the paper's own positioning of `N = 4096` as a *linear-computation*
//! parameter set (§II-F). The extension primes keep low Hamming weight
//! (4), staying in the spirit of §IV-A.3.

use crate::ciphertext::RlweCiphertext;
use crate::keys::{KeySwitchKey, SecretKey};
use crate::ops::keyswitch_mask;
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::poly::Poly;
use cham_math::rns::{Form, RnsContext, RnsPoly};
use rand::Rng;

/// Extension prime `p₂ = 2³⁶ + 2¹⁸ + 2¹³ + 1` (Hamming weight 4,
/// `≡ 1 mod 2¹³`).
pub const EXT_P2: u64 = (1 << 36) + (1 << 18) + (1 << 13) + 1;
/// Extension prime `p₃ = 2³⁶ + 2¹⁹ + 2¹⁶ + 1` (Hamming weight 4,
/// `≡ 1 mod 2¹³`).
pub const EXT_P3: u64 = (1 << 36) + (1 << 19) + (1 << 16) + 1;

/// Embeds centred `i128` coefficients into an RNS basis.
fn embed_centered(ctx: &RnsContext, vals: &[i128]) -> RnsPoly {
    let limbs = ctx
        .moduli()
        .iter()
        .map(|m| {
            let q = m.value() as i128;
            Poly::from_coeffs(vals.iter().map(|&v| v.rem_euclid(q) as u64).collect())
        })
        .collect();
    RnsPoly::from_limbs(ctx, limbs, Form::Coeff).expect("limbs match context")
}

/// Reads an RNS polynomial back as centred `i128` coefficients (exact
/// while the true magnitude stays below half the basis product).
fn lift_centered(p: &RnsPoly) -> Vec<i128> {
    let ctx = p.context();
    (0..ctx.degree())
        .map(|j| {
            let residues: Vec<u64> = (0..ctx.len()).map(|i| p.limbs()[i].coeffs()[j]).collect();
            ctx.crt_lift_centered(&residues)
        })
        .collect()
}

/// The ct×ct multiplier: extension contexts plus the relinearisation key.
pub struct BfvMultiplier {
    params: ChamParams,
    /// `{p₂, p₃, p, q1, q0}` — ordered so the two rescales drop `q0`, `q1`.
    mult_ctx: RnsContext,
    relin_key: KeySwitchKey,
}

impl std::fmt::Debug for BfvMultiplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BfvMultiplier")
            .field("ext_limbs", &self.mult_ctx.len())
            .finish()
    }
}

impl BfvMultiplier {
    /// Builds the multiplier, generating the relinearisation key.
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] if the parameter set's primes collide
    /// with the extension primes; key-generation failures otherwise.
    pub fn new<R: Rng + ?Sized>(params: &ChamParams, sk: &SecretKey, rng: &mut R) -> Result<Self> {
        let ct_primes: Vec<u64> = params
            .ciphertext_context()
            .moduli()
            .iter()
            .map(|m| m.value())
            .collect();
        if ct_primes.len() != 2 {
            return Err(HeError::InvalidParams(
                "ct-ct multiplication is implemented for the two-prime chain",
            ));
        }
        if ct_primes.contains(&EXT_P2) || ct_primes.contains(&EXT_P3) {
            return Err(HeError::InvalidParams(
                "extension primes collide with the ciphertext chain",
            ));
        }
        let order = [
            EXT_P2,
            EXT_P3,
            params.special_prime(),
            ct_primes[1],
            ct_primes[0],
        ];
        let mult_ctx = RnsContext::new(params.degree(), &order)?;
        let relin_key = KeySwitchKey::generate(sk, &sk.squared_coeffs(), rng)?;
        Ok(Self {
            params: params.clone(),
            mult_ctx,
            relin_key,
        })
    }

    /// Multiplies two normal-basis ciphertexts, returning a normal-basis
    /// ciphertext of the product plaintext (negacyclic product mod `t`;
    /// slot-wise product under batch encoding).
    ///
    /// # Errors
    /// [`HeError::Incompatible`] unless both inputs are in the normal
    /// basis.
    pub fn multiply(&self, x: &RlweCiphertext, y: &RlweCiphertext) -> Result<RlweCiphertext> {
        let ct_ctx = self.params.ciphertext_context();
        if x.b().context() != ct_ctx || y.b().context() != ct_ctx {
            return Err(HeError::Incompatible(
                "ct-ct multiplication expects normal-basis ciphertexts",
            ));
        }
        // 1) Exact centred lift into the extension basis.
        let lift = |p: &RnsPoly| -> RnsPoly {
            let mut q = p.clone();
            q.to_coeff();
            embed_centered(&self.mult_ctx, &lift_centered(&q))
        };
        let mut xb = lift(x.b());
        let mut xa = lift(x.a());
        let mut yb = lift(y.b());
        let mut ya = lift(y.a());
        xb.to_ntt();
        xa.to_ntt();
        yb.to_ntt();
        ya.to_ntt();
        // 2) Tensor.
        let mut d0 = xb.mul_pointwise(&yb)?;
        let mut d1 = xb.mul_pointwise(&ya)?.add(&xa.mul_pointwise(&yb)?)?;
        let mut d2 = xa.mul_pointwise(&ya)?;
        d0.to_coeff();
        d1.to_coeff();
        d2.to_coeff();
        // 3) Scale by t and divide-and-round by q0 then q1.
        let t = self.params.plain_modulus().value();
        let step = |d: RnsPoly| -> Result<RnsPoly> {
            let scaled = d.mul_scalar(t);
            let after_q0 = scaled.rescale_by_last(&self.mult_ctx.drop_last()?)?;
            let final_ctx = self.mult_ctx.drop_last()?.drop_last()?;
            Ok(after_q0.rescale_by_last(&final_ctx)?)
        };
        let c0_ext = step(d0)?;
        let c1_ext = step(d1)?;
        let c2_ext = step(d2)?;
        // 4) Centred read-back into the standard basis.
        let back = |p: &RnsPoly| embed_centered(ct_ctx, &lift_centered(p));
        let c0 = back(&c0_ext);
        let c1 = back(&c1_ext);
        let c2 = back(&c2_ext);
        // 5) Relinearise the s² component.
        let (ks_b, ks_a) = keyswitch_mask(&c2, &self.relin_key, &self.params)?;
        RlweCiphertext::new(c0.add(&ks_b)?, c1.add(&ks_a)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{BatchEncoder, CoeffEncoder};
    use crate::encrypt::{Decryptor, Encryptor};
    use cham_math::primality::is_prime;
    use rand::{Rng, SeedableRng};

    fn setup() -> (
        ChamParams,
        SecretKey,
        Encryptor,
        Decryptor,
        BfvMultiplier,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31415);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let mult = BfvMultiplier::new(&params, &sk, &mut rng).unwrap();
        (params, sk, enc, dec, mult, rng)
    }

    #[test]
    fn extension_primes_are_usable() {
        assert!(is_prime(EXT_P2));
        assert!(is_prime(EXT_P3));
        assert_eq!(EXT_P2 % 8192, 1);
        assert_eq!(EXT_P3 % 8192, 1);
        assert_eq!(EXT_P2.count_ones(), 4);
        assert_eq!(EXT_P3.count_ones(), 4);
    }

    #[test]
    fn constant_times_constant() {
        let (params, _, enc, dec, mult, mut rng) = setup();
        let t = params.plain_modulus();
        let coder = CoeffEncoder::new(&params);
        for (a, b) in [(3u64, 5u64), (0, 1234), (65536, 65536), (40000, 50000)] {
            let ca = enc.encrypt(&coder.encode_vector(&[a]).unwrap(), &mut rng);
            let cb = enc.encrypt(&coder.encode_vector(&[b]).unwrap(), &mut rng);
            let prod = mult.multiply(&ca, &cb).unwrap();
            let report = dec.decrypt_with_noise(&prod);
            assert_eq!(report.plaintext.values()[0], t.mul(a, b), "a={a} b={b}");
            assert!(report.budget_bits > 0.0, "budget {}", report.budget_bits);
        }
    }

    #[test]
    fn polynomial_product_is_negacyclic() {
        let (params, _, enc, dec, mult, mut rng) = setup();
        let t = params.plain_modulus();
        let coder = CoeffEncoder::new(&params);
        let n = params.degree();
        let xs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let ys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let cx = enc.encrypt(&coder.encode_vector(&xs).unwrap(), &mut rng);
        let cy = enc.encrypt(&coder.encode_vector(&ys).unwrap(), &mut rng);
        let prod = mult.multiply(&cx, &cy).unwrap();
        let report = dec.decrypt_with_noise(&prod);
        let expect = Poly::from_coeffs(xs).mul_negacyclic_schoolbook(&Poly::from_coeffs(ys), t);
        assert_eq!(report.plaintext.values(), expect.coeffs());
        assert!(report.budget_bits > 0.0, "budget {}", report.budget_bits);
    }

    #[test]
    fn batch_encoded_product_is_slotwise() {
        let (params, _, enc, dec, mult, mut rng) = setup();
        let t = params.plain_modulus();
        let batch = BatchEncoder::new(&params).unwrap();
        let xs: Vec<u64> = (0..batch.slot_count())
            .map(|_| rng.gen_range(0..t.value()))
            .collect();
        let ys: Vec<u64> = (0..batch.slot_count())
            .map(|_| rng.gen_range(0..t.value()))
            .collect();
        let cx = enc.encrypt(&batch.encode(&xs).unwrap(), &mut rng);
        let cy = enc.encrypt(&batch.encode(&ys).unwrap(), &mut rng);
        let prod = mult.multiply(&cx, &cy).unwrap();
        let decoded = batch.decode(&dec.decrypt(&prod)).unwrap();
        let expect: Vec<u64> = xs.iter().zip(&ys).map(|(&a, &b)| t.mul(a, b)).collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn product_composes_with_addition() {
        // Enc(a)·Enc(b) + Enc(c)·Enc(d) decrypts to ab + cd.
        let (params, _, enc, dec, mult, mut rng) = setup();
        let t = params.plain_modulus();
        let coder = CoeffEncoder::new(&params);
        let e = |v: u64, rng: &mut rand::rngs::StdRng| {
            enc.encrypt(&coder.encode_vector(&[v]).unwrap(), rng)
        };
        let (a, b, c, d) = (123u64, 456u64, 789u64, 321u64);
        let p1 = mult.multiply(&e(a, &mut rng), &e(b, &mut rng)).unwrap();
        let p2 = mult.multiply(&e(c, &mut rng), &e(d, &mut rng)).unwrap();
        let sum = dec.decrypt(&p1.add(&p2).unwrap());
        assert_eq!(sum.values()[0], t.add(t.mul(a, b), t.mul(c, d)));
    }

    #[test]
    fn depth_two_exhausts_the_budget() {
        // The paper's N = 4096 set targets linear computation; a second
        // multiplication level must visibly burn the budget.
        let (params, _, enc, dec, mult, mut rng) = setup();
        let coder = CoeffEncoder::new(&params);
        let c2 = enc.encrypt(&coder.encode_vector(&[2]).unwrap(), &mut rng);
        let c3 = enc.encrypt(&coder.encode_vector(&[3]).unwrap(), &mut rng);
        let depth1 = mult.multiply(&c2, &c3).unwrap();
        let budget1 = dec.decrypt_with_noise(&depth1).budget_bits;
        let depth2 = mult.multiply(&depth1, &c2).unwrap();
        let budget2 = dec.decrypt_with_noise(&depth2).budget_bits;
        assert!(
            budget2 < budget1,
            "budget did not shrink: {budget1} -> {budget2}"
        );
    }

    #[test]
    fn rejects_augmented_inputs() {
        let (params, _, enc, _, mult, mut rng) = setup();
        let coder = CoeffEncoder::new(&params);
        let aug = enc.encrypt_augmented(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let norm = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        assert!(mult.multiply(&aug, &norm).is_err());
        assert!(mult.multiply(&norm, &aug).is_err());
        let _ = params;
    }
}
