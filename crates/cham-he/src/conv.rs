//! 2-D convolution via coefficient encoding — the paper's "Alg. 1 can be
//! extended to other linear functions, such as 2-D and 3-D convolutions
//! through encoding the original tensors in similar ways" (§II-E, citing
//! Cheetah).
//!
//! An `H × W` image is flattened into a polynomial (`x[i][j] → X^{iW+j}`)
//! and a `k × k` kernel is laid out reversed (`w[a][b] →
//! X^{(k−1−a)W + (k−1−b)}`). One polynomial product then places every
//! *valid* convolution output `O[i][j] = Σ w[a][b]·x[i+a][j+b]` at
//! coefficient `(i+k−1)·W + (j+k−1)`. The outputs are pulled out with
//! [`crate::extract::extract_lwe`] at those indices and re-packed —
//! exercising the general-index extraction path of the conversion layer.

use crate::ciphertext::RlweCiphertext;
use crate::encoding::{CoeffEncoder, Plaintext};
use crate::encrypt::{Decryptor, Encryptor};
use crate::extract::extract_lwe;
use crate::keys::GaloisKeys;
use crate::ops::{mul_plain, rescale};
use crate::pack::{pack_lwes, PackedRlwe};
use crate::params::ChamParams;
use crate::{HeError, Result};
use rand::Rng;

/// A dense 2-D image over `Z_t`, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    height: usize,
    width: usize,
    data: Vec<u64>,
}

impl Image {
    /// Builds an image from row-major data.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when `data.len() != height * width`.
    pub fn from_data(height: usize, width: usize, data: Vec<u64>) -> Result<Self> {
        if data.len() != height * width {
            return Err(HeError::ShapeMismatch {
                expected: height * width,
                got: data.len(),
            });
        }
        Ok(Self {
            height,
            width,
            data,
        })
    }

    /// A random image with entries below `t`.
    pub fn random<R: Rng + ?Sized>(height: usize, width: usize, t: u64, rng: &mut R) -> Self {
        let data = (0..height * width).map(|_| rng.gen_range(0..t)).collect();
        Self {
            height,
            width,
            data,
        }
    }

    /// Image height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pixel at `(i, j)`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn at(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.width + j]
    }

    /// Plain valid-mode 2-D convolution (reference oracle).
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when the kernel is larger than the image.
    pub fn conv2d_plain(&self, kernel: &Image, t: &cham_math::Modulus) -> Result<Image> {
        if kernel.height > self.height || kernel.width > self.width {
            return Err(HeError::ShapeMismatch {
                expected: self.height * self.width,
                got: kernel.height * kernel.width,
            });
        }
        let oh = self.height - kernel.height + 1;
        let ow = self.width - kernel.width + 1;
        let mut out = vec![0u64; oh * ow];
        for i in 0..oh {
            for j in 0..ow {
                let mut acc = 0u64;
                for a in 0..kernel.height {
                    for b in 0..kernel.width {
                        acc = t.add(acc, t.mul(kernel.at(a, b), self.at(i + a, j + b)));
                    }
                }
                out[i * ow + j] = acc;
            }
        }
        Image::from_data(oh, ow, out)
    }
}

/// Homomorphic 2-D convolution engine.
#[derive(Debug, Clone)]
pub struct Conv2d {
    params: ChamParams,
    coder: CoeffEncoder,
}

impl Conv2d {
    /// Creates a convolution engine.
    pub fn new(params: &ChamParams) -> Self {
        Self {
            params: params.clone(),
            coder: CoeffEncoder::new(params),
        }
    }

    fn check_fit(&self, img_h: usize, img_w: usize) -> Result<()> {
        if img_h * img_w > self.params.degree() {
            return Err(HeError::InvalidParams(
                "image does not fit in one ciphertext (tile it first)",
            ));
        }
        Ok(())
    }

    /// Encrypts an image (flattened coefficient layout, augmented basis).
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] when the image exceeds the ring degree.
    pub fn encrypt_image<R: Rng + ?Sized>(
        &self,
        img: &Image,
        enc: &Encryptor,
        rng: &mut R,
    ) -> Result<RlweCiphertext> {
        self.check_fit(img.height, img.width)?;
        let pt = self.coder.encode_vector(&img.data)?;
        Ok(enc.encrypt_augmented(&pt, rng))
    }

    /// Encodes a kernel for an image of width `img_w` (reversed layout).
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] when the kernel footprint exceeds the
    /// ring degree.
    pub fn encode_kernel(&self, kernel: &Image, img_w: usize) -> Result<Plaintext> {
        let n = self.params.degree();
        let footprint = (kernel.height - 1) * img_w + kernel.width;
        if footprint > n {
            return Err(HeError::InvalidParams(
                "kernel footprint exceeds the ring degree",
            ));
        }
        let mut vals = vec![0u64; n];
        let t = self.params.plain_modulus();
        for a in 0..kernel.height {
            for b in 0..kernel.width {
                let pos = (kernel.height - 1 - a) * img_w + (kernel.width - 1 - b);
                vals[pos] = t.reduce(kernel.at(a, b));
            }
        }
        Ok(Plaintext::from_values(vals))
    }

    /// Homomorphic valid-mode convolution: multiply, rescale, extract every
    /// output coefficient, and pack the outputs into RLWE ciphertexts in
    /// row-major order.
    ///
    /// # Errors
    /// Shape errors; missing Galois keys for packing.
    pub fn convolve(
        &self,
        ct_img: &RlweCiphertext,
        kernel: &Image,
        img_h: usize,
        img_w: usize,
        gkeys: &GaloisKeys,
    ) -> Result<ConvResult> {
        self.check_fit(img_h, img_w)?;
        if kernel.height > img_h || kernel.width > img_w {
            return Err(HeError::ShapeMismatch {
                expected: img_h * img_w,
                got: kernel.height * kernel.width,
            });
        }
        let pt_k = self.encode_kernel(kernel, img_w)?;
        let prod = mul_plain(ct_img, &pt_k, &self.params)?;
        let prod = rescale(&prod, &self.params)?;
        let oh = img_h - kernel.height + 1;
        let ow = img_w - kernel.width + 1;
        let mut lwes = Vec::with_capacity(oh * ow);
        for i in 0..oh {
            for j in 0..ow {
                let idx = (i + kernel.height - 1) * img_w + (j + kernel.width - 1);
                lwes.push(extract_lwe(&prod, idx)?);
            }
        }
        let n = self.params.degree();
        let packed = lwes
            .chunks(n)
            .map(|chunk| pack_lwes(chunk, gkeys, &self.params))
            .collect::<Result<Vec<_>>>()?;
        Ok(ConvResult {
            packed,
            out_h: oh,
            out_w: ow,
        })
    }

    /// Decrypts a convolution result back to an output image.
    ///
    /// # Errors
    /// Decode errors from the packing layer.
    pub fn decrypt_result(&self, res: &ConvResult, dec: &Decryptor) -> Result<Image> {
        let mut vals = Vec::with_capacity(res.out_h * res.out_w);
        for packed in &res.packed {
            let pt = dec.decrypt(&packed.ciphertext);
            vals.extend(packed.decode(&pt, &self.params)?);
        }
        vals.truncate(res.out_h * res.out_w);
        Image::from_data(res.out_h, res.out_w, vals)
    }
}

/// Packed homomorphic convolution output.
#[derive(Debug, Clone)]
pub struct ConvResult {
    /// Packed output ciphertexts in row-major output order.
    pub packed: Vec<PackedRlwe>,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// A dense 3-D volume over `Z_t` (depth-major, then rows, then columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Volume {
    depth: usize,
    height: usize,
    width: usize,
    data: Vec<u64>,
}

impl Volume {
    /// Builds a volume from `depth × height × width` data.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] on a size mismatch.
    pub fn from_data(depth: usize, height: usize, width: usize, data: Vec<u64>) -> Result<Self> {
        if data.len() != depth * height * width {
            return Err(HeError::ShapeMismatch {
                expected: depth * height * width,
                got: data.len(),
            });
        }
        Ok(Self {
            depth,
            height,
            width,
            data,
        })
    }

    /// A random volume with entries below `t`.
    pub fn random<R: Rng + ?Sized>(
        depth: usize,
        height: usize,
        width: usize,
        t: u64,
        rng: &mut R,
    ) -> Self {
        let data = (0..depth * height * width)
            .map(|_| rng.gen_range(0..t))
            .collect();
        Self {
            depth,
            height,
            width,
            data,
        }
    }

    /// Dimensions `(depth, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.depth, self.height, self.width)
    }

    /// Voxel at `(d, i, j)`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn at(&self, d: usize, i: usize, j: usize) -> u64 {
        self.data[(d * self.height + i) * self.width + j]
    }

    /// Plain valid-mode 3-D convolution (reference oracle).
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when the kernel exceeds the volume.
    pub fn conv3d_plain(&self, kernel: &Volume, t: &cham_math::Modulus) -> Result<Volume> {
        let (kd, kh, kw) = kernel.shape();
        if kd > self.depth || kh > self.height || kw > self.width {
            return Err(HeError::ShapeMismatch {
                expected: self.data.len(),
                got: kernel.data.len(),
            });
        }
        let (od, oh, ow) = (
            self.depth - kd + 1,
            self.height - kh + 1,
            self.width - kw + 1,
        );
        let mut out = vec![0u64; od * oh * ow];
        for d in 0..od {
            for i in 0..oh {
                for j in 0..ow {
                    let mut acc = 0u64;
                    for a in 0..kd {
                        for b in 0..kh {
                            for c in 0..kw {
                                acc = t.add(
                                    acc,
                                    t.mul(kernel.at(a, b, c), self.at(d + a, i + b, j + c)),
                                );
                            }
                        }
                    }
                    out[(d * oh + i) * ow + j] = acc;
                }
            }
        }
        Volume::from_data(od, oh, ow, out)
    }
}

/// Homomorphic 3-D convolution engine — the same flattening trick as
/// [`Conv2d`] with a depth-major linear index `d·H·W + i·W + j`.
#[derive(Debug, Clone)]
pub struct Conv3d {
    params: ChamParams,
    coder: CoeffEncoder,
}

impl Conv3d {
    /// Creates a 3-D convolution engine.
    pub fn new(params: &ChamParams) -> Self {
        Self {
            params: params.clone(),
            coder: CoeffEncoder::new(params),
        }
    }

    /// Encrypts a volume (flattened coefficient layout, augmented basis).
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] when the volume exceeds the ring degree.
    pub fn encrypt_volume<R: Rng + ?Sized>(
        &self,
        vol: &Volume,
        enc: &Encryptor,
        rng: &mut R,
    ) -> Result<RlweCiphertext> {
        if vol.data.len() > self.params.degree() {
            return Err(HeError::InvalidParams(
                "volume does not fit in one ciphertext (tile it first)",
            ));
        }
        let pt = self.coder.encode_vector(&vol.data)?;
        Ok(enc.encrypt_augmented(&pt, rng))
    }

    /// Homomorphic valid-mode 3-D convolution.
    ///
    /// # Errors
    /// Shape errors; missing Galois keys for packing.
    pub fn convolve(
        &self,
        ct_vol: &RlweCiphertext,
        kernel: &Volume,
        vol_shape: (usize, usize, usize),
        gkeys: &GaloisKeys,
    ) -> Result<Conv3dResult> {
        let (vd, vh, vw) = vol_shape;
        let (kd, kh, kw) = kernel.shape();
        if vd * vh * vw > self.params.degree() {
            return Err(HeError::InvalidParams("volume exceeds the ring degree"));
        }
        if kd > vd || kh > vh || kw > vw {
            return Err(HeError::ShapeMismatch {
                expected: vd * vh * vw,
                got: kd * kh * kw,
            });
        }
        // Kernel reversed in all three axes, positioned in the flattened
        // index space of the volume.
        let t = self.params.plain_modulus();
        let mut vals = vec![0u64; self.params.degree()];
        for a in 0..kd {
            for b in 0..kh {
                for c in 0..kw {
                    let pos = ((kd - 1 - a) * vh + (kh - 1 - b)) * vw + (kw - 1 - c);
                    vals[pos] = t.reduce(kernel.at(a, b, c));
                }
            }
        }
        let pt_k = Plaintext::from_values(vals);
        let prod = mul_plain(ct_vol, &pt_k, &self.params)?;
        let prod = rescale(&prod, &self.params)?;
        let (od, oh, ow) = (vd - kd + 1, vh - kh + 1, vw - kw + 1);
        let mut lwes = Vec::with_capacity(od * oh * ow);
        for d in 0..od {
            for i in 0..oh {
                for j in 0..ow {
                    let idx = ((d + kd - 1) * vh + (i + kh - 1)) * vw + (j + kw - 1);
                    lwes.push(extract_lwe(&prod, idx)?);
                }
            }
        }
        let n = self.params.degree();
        let packed = lwes
            .chunks(n)
            .map(|chunk| pack_lwes(chunk, gkeys, &self.params))
            .collect::<Result<Vec<_>>>()?;
        Ok(Conv3dResult {
            packed,
            out_shape: (od, oh, ow),
        })
    }

    /// Decrypts a 3-D convolution result.
    ///
    /// # Errors
    /// Decode errors from the packing layer.
    pub fn decrypt_result(&self, res: &Conv3dResult, dec: &Decryptor) -> Result<Volume> {
        let (od, oh, ow) = res.out_shape;
        let mut vals = Vec::with_capacity(od * oh * ow);
        for packed in &res.packed {
            let pt = dec.decrypt(&packed.ciphertext);
            vals.extend(packed.decode(&pt, &self.params)?);
        }
        vals.truncate(od * oh * ow);
        Volume::from_data(od, oh, ow, vals)
    }
}

/// Packed homomorphic 3-D convolution output.
#[derive(Debug, Clone)]
pub struct Conv3dResult {
    /// Packed output ciphertexts in depth/row-major output order.
    pub packed: Vec<PackedRlwe>,
    /// Output shape `(depth, height, width)`.
    pub out_shape: (usize, usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use rand::SeedableRng;

    fn setup() -> (
        ChamParams,
        Encryptor,
        Decryptor,
        GaloisKeys,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(909);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        (params, enc, dec, gkeys, rng)
    }

    fn run_conv(h: usize, w: usize, kh: usize, kw: usize) {
        let (params, enc, dec, gkeys, mut rng) = setup();
        // Small pixel/weight magnitudes keep the products within Z_t
        // semantics (no modular wrap in the reference).
        let img = Image::random(h, w, 256, &mut rng);
        let ker = Image::random(kh, kw, 16, &mut rng);
        let c = Conv2d::new(&params);
        let ct = c.encrypt_image(&img, &enc, &mut rng).unwrap();
        let res = c.convolve(&ct, &ker, h, w, &gkeys).unwrap();
        let got = c.decrypt_result(&res, &dec).unwrap();
        let expect = img.conv2d_plain(&ker, params.plain_modulus()).unwrap();
        assert_eq!(got, expect, "h={h} w={w} kh={kh} kw={kw}");
    }

    #[test]
    fn conv_3x3_kernel() {
        run_conv(10, 10, 3, 3);
    }

    #[test]
    fn conv_rect_image_rect_kernel() {
        run_conv(8, 16, 2, 5);
    }

    #[test]
    fn conv_1x1_kernel_is_scaling() {
        run_conv(6, 6, 1, 1);
    }

    #[test]
    fn conv_kernel_equals_image() {
        run_conv(5, 5, 5, 5);
    }

    #[test]
    fn conv_validation() {
        let (params, enc, _, gkeys, mut rng) = setup();
        let c = Conv2d::new(&params);
        let big = Image::random(64, 64, 10, &mut rng); // 4096 > 256
        assert!(c.encrypt_image(&big, &enc, &mut rng).is_err());
        let img = Image::random(8, 8, 10, &mut rng);
        let ct = c.encrypt_image(&img, &enc, &mut rng).unwrap();
        let huge_kernel = Image::random(9, 9, 10, &mut rng);
        assert!(c.convolve(&ct, &huge_kernel, 8, 8, &gkeys).is_err());
        assert!(Image::from_data(2, 2, vec![1, 2, 3]).is_err());
    }

    fn run_conv3d(vd: usize, vh: usize, vw: usize, kd: usize, kh: usize, kw: usize) {
        let (params, enc, dec, gkeys, mut rng) = setup();
        let vol = Volume::random(vd, vh, vw, 64, &mut rng);
        let ker = Volume::random(kd, kh, kw, 8, &mut rng);
        let c = Conv3d::new(&params);
        let ct = c.encrypt_volume(&vol, &enc, &mut rng).unwrap();
        let res = c.convolve(&ct, &ker, (vd, vh, vw), &gkeys).unwrap();
        let got = c.decrypt_result(&res, &dec).unwrap();
        let expect = vol.conv3d_plain(&ker, params.plain_modulus()).unwrap();
        assert_eq!(got, expect, "{vd}x{vh}x{vw} * {kd}x{kh}x{kw}");
    }

    #[test]
    fn conv3d_cubic() {
        run_conv3d(4, 6, 6, 2, 3, 3);
    }

    #[test]
    fn conv3d_flat_depth_matches_2d() {
        // Depth-1 3-D convolution degenerates to the 2-D case.
        run_conv3d(1, 8, 8, 1, 3, 3);
    }

    #[test]
    fn conv3d_kernel_equals_volume() {
        run_conv3d(3, 4, 4, 3, 4, 4);
    }

    #[test]
    fn conv3d_validation() {
        let (params, enc, _, gkeys, mut rng) = setup();
        let c = Conv3d::new(&params);
        // 8*8*8 = 512 > 256.
        let big = Volume::random(8, 8, 8, 10, &mut rng);
        assert!(c.encrypt_volume(&big, &enc, &mut rng).is_err());
        let vol = Volume::random(2, 8, 8, 10, &mut rng);
        let ct = c.encrypt_volume(&vol, &enc, &mut rng).unwrap();
        let huge = Volume::random(3, 3, 3, 10, &mut rng);
        assert!(c.convolve(&ct, &huge, (2, 8, 8), &gkeys).is_err());
        assert!(Volume::from_data(2, 2, 2, vec![0; 7]).is_err());
    }

    #[test]
    fn plain_conv_oracle_identity_kernel() {
        let t = cham_math::Modulus::new(65537).unwrap();
        let img = Image::from_data(2, 2, vec![1, 2, 3, 4]).unwrap();
        let ker = Image::from_data(1, 1, vec![1]).unwrap();
        assert_eq!(img.conv2d_plain(&ker, &t).unwrap(), img);
    }
}
