//! `EXTRACTLWES` (Eq. 3) and the inverse `LWE-TO-RLWE` conversion.
//!
//! After the dot product, only the *constant coefficient* of each result
//! ciphertext is meaningful (Eq. 2). `EXTRACTLWES` peels that coefficient
//! off as an LWE ciphertext `(b₀, â)` with
//!
//! ```text
//! â(X) = a₀ − Σ_{j=1}^{N−1} a_j X^{N−j}       (Eq. 3)
//! ```
//!
//! so that `b₀ + ⟨â, s⟩` equals the RLWE phase's constant coefficient. The
//! rearrangement is an involution; applying it again (`LWE-TO-RLWE`)
//! recovers an RLWE-shaped pair whose phase carries the payload in its
//! constant coefficient — the form `PACKLWES` consumes. On CHAM both
//! directions are `SHIFTNEG`/`REV`-style coefficient passes executed by the
//! PPUs in the same pipeline stage as RESCALE (§III-A).

use crate::ciphertext::{LweCiphertext, RlweCiphertext};
use crate::{HeError, Result};
use cham_math::poly::Poly;
use cham_math::rns::{Form, RnsPoly};

/// The Eq. 3 coefficient rearrangement: `â₀ = a₀`, `â_{N−j} = −a_j`.
/// An involution (applying twice is the identity).
fn rearrange(a: &RnsPoly) -> RnsPoly {
    let ctx = a.context().clone();
    let n = ctx.degree();
    let limbs = a
        .limbs()
        .iter()
        .zip(ctx.moduli())
        .map(|(limb, m)| {
            let src = limb.coeffs();
            let mut out = vec![0u64; n];
            out[0] = src[0];
            for j in 1..n {
                out[n - j] = m.neg(src[j]);
            }
            Poly::from_coeffs(out)
        })
        .collect();
    RnsPoly::from_limbs(&ctx, limbs, Form::Coeff).expect("limbs match context")
}

/// `EXTRACTLWES` at coefficient `index`: converts an RLWE ciphertext into
/// the LWE ciphertext of its plaintext's `index`-th coefficient.
///
/// The CHAM pipeline only extracts `index = 0` (the dot-product result);
/// general indices are provided because the 2-D convolution extension reads
/// interior coefficients.
///
/// # Errors
/// [`HeError::ShapeMismatch`] when `index >= N`.
pub fn extract_lwe(ct: &RlweCiphertext, index: usize) -> Result<LweCiphertext> {
    cham_telemetry::counter_add!("cham_he.extract.extract_lwe", 1);
    let n = ct.b().context().degree();
    if index >= n {
        return Err(HeError::ShapeMismatch {
            expected: n,
            got: index,
        });
    }
    let mut c = ct.clone();
    c.to_coeff();
    // Shift the wanted coefficient into position 0: multiplying by X^{-i}
    // = -X^{N-i} moves coefficient i to 0 (and is exactly how the PPUs do
    // it, via SHIFTNEG).
    let shifted = if index == 0 {
        c
    } else {
        c.mul_monomial(2 * n - index)?
    };
    let b_res: Vec<u64> = shifted
        .b()
        .limbs()
        .iter()
        .map(|limb| limb.coeffs()[0])
        .collect();
    let a_hat = rearrange(shifted.a());
    LweCiphertext::new(b_res, a_hat)
}

/// `LWE-TO-RLWE`: re-imports an LWE ciphertext as an RLWE ciphertext whose
/// plaintext carries the payload in its constant coefficient (non-constant
/// coefficients are meaningless "garbage" that `PACKLWES` overwrites).
pub fn lwe_to_rlwe(lwe: &LweCiphertext) -> RlweCiphertext {
    let ctx = lwe.a().context().clone();
    let n = ctx.degree();
    // b(X) = b0 (constant coefficient only).
    let b_limbs = lwe
        .b()
        .iter()
        .map(|&b0| {
            let mut v = vec![0u64; n];
            v[0] = b0;
            Poly::from_coeffs(v)
        })
        .collect();
    let b = RnsPoly::from_limbs(&ctx, b_limbs, Form::Coeff).expect("limbs match context");
    let a = rearrange(lwe.a());
    RlweCiphertext::new(b, a).expect("components share context and form")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::SecretKey;
    use crate::params::ChamParams;
    use rand::{Rng, SeedableRng};

    fn setup() -> (
        ChamParams,
        Encryptor,
        Decryptor,
        CoeffEncoder,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        (params, enc, dec, coder, rng)
    }

    #[test]
    fn extract_constant_coefficient() {
        let (params, enc, dec, coder, mut rng) = setup();
        let t = params.plain_modulus().value();
        let vals: Vec<u64> = (0..params.degree()).map(|_| rng.gen_range(0..t)).collect();
        let ct = enc.encrypt(&coder.encode_vector(&vals).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, 0).unwrap();
        assert_eq!(dec.decrypt_lwe(&lwe), vals[0]);
    }

    #[test]
    fn extract_arbitrary_coefficients() {
        let (params, enc, dec, coder, mut rng) = setup();
        let t = params.plain_modulus().value();
        let n = params.degree();
        let vals: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let ct = enc.encrypt(&coder.encode_vector(&vals).unwrap(), &mut rng);
        for idx in [0usize, 1, 7, n / 2, n - 1] {
            let lwe = extract_lwe(&ct, idx).unwrap();
            assert_eq!(dec.decrypt_lwe(&lwe), vals[idx], "index {idx}");
        }
        assert!(extract_lwe(&ct, n).is_err());
    }

    #[test]
    fn lwe_to_rlwe_keeps_payload_at_constant_coeff() {
        let (_, enc, dec, coder, mut rng) = setup();
        let ct = enc.encrypt(&coder.encode_vector(&[321, 7, 9]).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, 0).unwrap();
        let back = lwe_to_rlwe(&lwe);
        let pt = dec.decrypt(&back);
        assert_eq!(pt.values()[0], 321);
    }

    #[test]
    fn rearrangement_is_involution() {
        let (params, _, _, _, mut rng) = setup();
        let ctx = params.ciphertext_context();
        let a = cham_math::sampling::uniform_rns_poly(ctx, &mut rng);
        assert_eq!(rearrange(&rearrange(&a)), a);
    }

    #[test]
    fn lwe_to_rlwe_of_extract_zero_restores_mask() {
        // For index 0 the round trip reproduces the original mask `a`
        // exactly, and `b` truncated to its constant coefficient.
        let (_, enc, _, coder, mut rng) = setup();
        let mut ct = enc.encrypt(&coder.encode_vector(&[5]).unwrap(), &mut rng);
        ct.to_coeff();
        let lwe = extract_lwe(&ct, 0).unwrap();
        let rt = lwe_to_rlwe(&lwe);
        assert_eq!(rt.a(), ct.a());
        assert_eq!(rt.b().limbs()[0].coeffs()[0], ct.b().limbs()[0].coeffs()[0]);
        assert!(rt.b().limbs()[0].coeffs()[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn extract_after_augmented_pipeline() {
        // Extraction works in the augmented basis too (pre-rescale LWEs are
        // never used by the pipeline, but the types permit it).
        let (_, enc, dec, coder, mut rng) = setup();
        let ct = enc.encrypt_augmented(&coder.encode_vector(&[4242]).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, 0).unwrap();
        assert_eq!(dec.decrypt_lwe(&lwe), 4242);
    }
}
