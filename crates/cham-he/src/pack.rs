//! `PACKTWOLWES` (Alg. 2) and `PACKLWES` (Alg. 3).
//!
//! Packing folds `2^h` LWE ciphertexts (each carrying one scalar in its
//! constant coefficient, plus garbage elsewhere) into a single RLWE
//! ciphertext. The recursion combines an "even" and an "odd" packed
//! ciphertext at each level `h`:
//!
//! ```text
//! ct = (ct_even + X^{N/2^h}·ct_odd) + σ_{2^h+1}(ct_even − X^{N/2^h}·ct_odd)
//! ```
//!
//! `σ_{2^h+1}` fixes every coefficient position that is a multiple of
//! `N/2^{h−1}` (the payload positions of both halves) and negates the
//! odd-multiples of `N/2^h`, so payloads double and line up at stride
//! `N/2^h` while the final key-switch (inside [`crate::ops::apply_galois`])
//! returns the ciphertext to the original key. Packing `2^h` inputs needs
//! `2^h − 1` reductions (paper: "4095 reductions … to pack 4096").
//!
//! Each level doubles the payload, so the packed plaintext holds
//! `2^h·μ_j` at coefficient `j·N/2^h`; [`PackedRlwe::decode_factor`]
//! exposes the `2^{−h} mod t` correction the decoder applies (exact because
//! the plaintext modulus is odd).

use crate::ciphertext::{LweCiphertext, RlweCiphertext};
use crate::extract::lwe_to_rlwe;
use crate::keys::GaloisKeys;
use crate::ops::apply_galois;
use crate::params::ChamParams;
use crate::{HeError, Result};

/// The result of `PACKLWES`: the packed ciphertext plus the bookkeeping a
/// decoder needs (stride and scale).
#[derive(Debug, Clone)]
pub struct PackedRlwe {
    /// The packed RLWE ciphertext (normal basis).
    pub ciphertext: RlweCiphertext,
    /// `log2` of the packed count (recursion depth `h`).
    pub log_count: u32,
    /// Number of payload slots actually filled (≤ `2^log_count`).
    pub count: usize,
}

impl PackedRlwe {
    /// Coefficient stride between consecutive payloads: `N / 2^h`.
    pub fn stride(&self, params: &ChamParams) -> usize {
        params.degree() >> self.log_count
    }

    /// The factor `(2^h)^{−1} mod t` the decoder multiplies payloads by.
    pub fn decode_factor(&self, params: &ChamParams) -> u64 {
        let t = params.plain_modulus();
        t.inv(t.pow(2, self.log_count as u64))
            .expect("t is odd, so powers of two are invertible")
    }

    /// Reads the payload values out of a decrypted plaintext.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when the plaintext length differs from
    /// the ring degree.
    pub fn decode(&self, pt: &crate::encoding::Plaintext, params: &ChamParams) -> Result<Vec<u64>> {
        if pt.len() != params.degree() {
            return Err(HeError::ShapeMismatch {
                expected: params.degree(),
                got: pt.len(),
            });
        }
        let stride = self.stride(params);
        let f = self.decode_factor(params);
        let t = params.plain_modulus();
        Ok((0..self.count)
            .map(|j| t.mul(pt.values()[j * stride], f))
            .collect())
    }
}

/// `PACKTWOLWES` (Alg. 2): one reduction step at recursion level `h ≥ 1`,
/// combining two ciphertexts whose payloads sit at stride `N/2^{h−1}`.
///
/// # Errors
/// * [`HeError::MissingGaloisKey`] when `σ_{2^h+1}` has no key,
/// * [`HeError::InvalidParams`] when `h` exceeds `log2 N`,
/// * context mismatches from the RNS layer.
pub fn pack_two(
    h: u32,
    even: &RlweCiphertext,
    odd: &RlweCiphertext,
    gkeys: &GaloisKeys,
    params: &ChamParams,
) -> Result<RlweCiphertext> {
    cham_telemetry::counter_add!("cham_he.pack.pack_two", 1);
    let n = params.degree();
    if h == 0 || h > params.max_pack_log() {
        return Err(HeError::InvalidParams("pack level out of range"));
    }
    let g = n >> h; // monomial exponent N/2^h
    let k = (1usize << h) + 1; // automorphism index 2^h + 1
    let mut even = even.clone();
    let mut odd = odd.clone();
    even.to_coeff();
    odd.to_coeff();
    let ct_mono = odd.mul_monomial(g)?; // line 1: multiply a monomial
    let ct_plus = even.add(&ct_mono)?; // line 2
    let ct_minus = even.sub(&ct_mono)?; // line 3
    let ct_auto = apply_galois(&ct_minus, k, gkeys, params)?; // lines 4–5
    ct_plus.add(&ct_auto)
}

/// `PACKLWES` (Alg. 3): packs up to `N` LWE ciphertexts into one RLWE
/// ciphertext. Inputs beyond a power of two are padded with transparent
/// zero ciphertexts.
///
/// # Errors
/// * [`HeError::InvalidParams`] for an empty input or more than `N` inputs,
/// * missing Galois keys / context mismatches from the reduction steps.
pub fn pack_lwes(
    lwes: &[LweCiphertext],
    gkeys: &GaloisKeys,
    params: &ChamParams,
) -> Result<PackedRlwe> {
    cham_telemetry::counter_add!("cham_he.pack.pack_lwes", 1);
    cham_telemetry::time_scope!("cham_he.pack.pack_lwes");
    if lwes.is_empty() {
        return Err(HeError::InvalidParams("cannot pack zero ciphertexts"));
    }
    if lwes.len() > params.degree() {
        return Err(HeError::InvalidParams(
            "cannot pack more ciphertexts than the ring degree",
        ));
    }
    let count = lwes.len();
    let padded = count.next_power_of_two();
    let log = padded.trailing_zeros();
    let mut level: Vec<RlweCiphertext> = lwes.iter().map(lwe_to_rlwe).collect();
    if let Some(first) = level.first() {
        let zero = first.zero_like();
        level.resize(padded, zero);
    }
    // The even/odd recursion consumes index bits LSB-first, which would
    // deliver payloads in bit-reversed coefficient order; feeding the
    // inputs bit-reversed makes the output natural-ordered.
    let mut reordered = level.clone();
    for (i, ct) in level.into_iter().enumerate() {
        reordered[cham_math::bit_reverse(i, log)] = ct;
    }
    let mut level = reordered;
    let mut h = 1u32;
    while level.len() > 1 {
        // Within one tree level every pair reduction is independent (the
        // dependency chain runs *between* levels), so pairs fan out across
        // the pool; a two-element level short-circuits to the plain loop
        // inside `map`.
        let pairs: Vec<&[RlweCiphertext]> = level.chunks(2).collect();
        let next = cham_pool::map(&pairs, |_, pair| {
            pack_two(h, &pair[0], &pair[1], gkeys, params)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        level = next;
        h += 1;
    }
    Ok(PackedRlwe {
        ciphertext: level.pop().expect("one ciphertext remains"),
        log_count: padded.trailing_zeros(),
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::extract::extract_lwe;
    use crate::keys::SecretKey;
    use rand::{Rng, SeedableRng};

    fn setup() -> (
        ChamParams,
        SecretKey,
        Encryptor,
        Decryptor,
        CoeffEncoder,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        (params, sk, enc, dec, coder, rng)
    }

    /// Encrypt scalars, extract their LWEs, pack, decrypt, decode.
    fn pack_roundtrip(values: &[u64]) -> Vec<u64> {
        let (params, sk, enc, dec, coder, mut rng) = setup();
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        let lwes: Vec<LweCiphertext> = values
            .iter()
            .map(|&v| {
                let ct = enc.encrypt(&coder.encode_vector(&[v]).unwrap(), &mut rng);
                extract_lwe(&ct, 0).unwrap()
            })
            .collect();
        let packed = pack_lwes(&lwes, &gkeys, &params).unwrap();
        let pt = dec.decrypt(&packed.ciphertext);
        packed.decode(&pt, &params).unwrap()
    }

    #[test]
    fn pack_two_values() {
        assert_eq!(pack_roundtrip(&[123, 456]), vec![123, 456]);
    }

    #[test]
    fn pack_eight_values() {
        let vals = [5u64, 0, 65535, 1, 40000, 7, 12345, 999];
        assert_eq!(pack_roundtrip(&vals), vals.to_vec());
    }

    #[test]
    fn pack_single_value() {
        assert_eq!(pack_roundtrip(&[77]), vec![77]);
    }

    #[test]
    fn pack_non_power_of_two_pads() {
        let vals = [1u64, 2, 3, 4, 5];
        assert_eq!(pack_roundtrip(&vals), vals.to_vec());
    }

    #[test]
    fn pack_full_ring() {
        // Pack N ciphertexts — every coefficient becomes a payload.
        let (params, sk, enc, dec, coder, mut rng) = setup();
        let n = params.degree();
        let t = params.plain_modulus().value();
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        let vals: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let lwes: Vec<LweCiphertext> = vals
            .iter()
            .map(|&v| {
                let ct = enc.encrypt(&coder.encode_vector(&[v]).unwrap(), &mut rng);
                extract_lwe(&ct, 0).unwrap()
            })
            .collect();
        let packed = pack_lwes(&lwes, &gkeys, &params).unwrap();
        assert_eq!(packed.stride(&params), 1);
        let report = dec.decrypt_with_noise(&packed.ciphertext);
        assert!(report.budget_bits > 0.0, "budget {}", report.budget_bits);
        let decoded = packed.decode(&report.plaintext, &params).unwrap();
        assert_eq!(decoded, vals);
    }

    #[test]
    fn pack_validation() {
        let (params, sk, enc, _, coder, mut rng) = setup();
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        assert!(pack_lwes(&[], &gkeys, &params).is_err());
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        let lwe = extract_lwe(&ct, 0).unwrap();
        let too_many = vec![lwe; params.degree() + 1];
        assert!(pack_lwes(&too_many, &gkeys, &params).is_err());
    }

    #[test]
    fn pack_missing_galois_key() {
        let (params, sk, enc, _, coder, mut rng) = setup();
        // Keys only up to level 1 — packing 4 values needs level 2.
        let gkeys = GaloisKeys::generate_for_packing(&sk, 1, &mut rng).unwrap();
        let lwes: Vec<LweCiphertext> = (0..4u64)
            .map(|v| {
                let ct = enc.encrypt(&coder.encode_vector(&[v]).unwrap(), &mut rng);
                extract_lwe(&ct, 0).unwrap()
            })
            .collect();
        assert!(matches!(
            pack_lwes(&lwes, &gkeys, &params),
            Err(HeError::MissingGaloisKey(5))
        ));
    }

    #[test]
    fn pack_two_out_of_range_level() {
        let (params, sk, enc, _, coder, mut rng) = setup();
        let gkeys = GaloisKeys::generate_for_packing(&sk, 1, &mut rng).unwrap();
        let ct = enc.encrypt(&coder.encode_vector(&[1]).unwrap(), &mut rng);
        assert!(pack_two(0, &ct, &ct, &gkeys, &params).is_err());
        assert!(pack_two(params.max_pack_log() + 1, &ct, &ct, &gkeys, &params).is_err());
    }
}
