//! Plaintext encodings.
//!
//! * [`CoeffEncoder`] — the paper's coefficient encoding (Eq. 1): a matrix
//!   row is laid out reversed-and-negated so the polynomial product with the
//!   vector's plaintext leaves the inner product in the constant coefficient
//!   (Eq. 2). `O(m)` per matrix-vector product.
//! * [`BatchEncoder`] — SIMD slot encoding over `Z_t` (related work,
//!   §II-E): an NTT over the plaintext modulus maps `N` slot values to one
//!   polynomial; slot-wise add/mul come for free, row sums need `log2 N`
//!   rotations. This is the `O(m log N)` comparator.

use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::modulus::Modulus;
use cham_math::ntt::NttTable;

/// A plaintext: `N` values modulo `t`.
///
/// The interpretation (coefficients vs slots) is fixed by the encoder that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    values: Vec<u64>,
}

impl Plaintext {
    /// Wraps raw values (already reduced mod `t`).
    pub fn from_values(values: Vec<u64>) -> Self {
        Self { values }
    }

    /// The values.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Consumes into the value vector.
    #[inline]
    pub fn into_values(self) -> Vec<u64> {
        self.values
    }

    /// Number of values (the ring degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Coefficient encoder (paper Eq. 1).
#[derive(Debug, Clone)]
pub struct CoeffEncoder {
    params: std::sync::Arc<ChamParams>,
}

impl CoeffEncoder {
    /// Creates an encoder for the parameter set.
    pub fn new(params: &ChamParams) -> Self {
        Self::from_arc(std::sync::Arc::new(params.clone()))
    }

    /// Creates an encoder sharing an existing parameter handle (no clone).
    pub fn from_arc(params: std::sync::Arc<ChamParams>) -> Self {
        Self { params }
    }

    fn t(&self) -> &Modulus {
        self.params.plain_modulus()
    }

    /// Encodes a vector `v` as `pt(X) = Σ_j v_j X^j`.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] if `v` is longer than the degree (shorter
    /// vectors are zero-padded).
    pub fn encode_vector(&self, v: &[u64]) -> Result<Plaintext> {
        let n = self.params.degree();
        if v.len() > n {
            return Err(HeError::ShapeMismatch {
                expected: n,
                got: v.len(),
            });
        }
        let mut values: Vec<u64> = v.iter().map(|&x| self.t().reduce(x)).collect();
        values.resize(n, 0);
        Ok(Plaintext { values })
    }

    /// Encodes a matrix row `A_i` as
    /// `pt(X) = A_{i,0} − Σ_{j=1}^{N−1} A_{i,j} X^{N−j}` (Eq. 1), so that
    /// `pt^{(A_i)} · pt^{(v)}` has `⟨A_i, v⟩` in its constant coefficient
    /// (Eq. 2).
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] if `row` is longer than the degree.
    pub fn encode_row(&self, row: &[u64]) -> Result<Plaintext> {
        let n = self.params.degree();
        if row.len() > n {
            return Err(HeError::ShapeMismatch {
                expected: n,
                got: row.len(),
            });
        }
        let t = self.t();
        let mut values = vec![0u64; n];
        values[0] = t.reduce(row[0]);
        for (j, &x) in row.iter().enumerate().skip(1) {
            values[n - j] = t.neg(t.reduce(x));
        }
        Ok(Plaintext { values })
    }

    /// Encodes signed values (e.g. fixed-point shares), mapping into
    /// `[0, t)`.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] if `v` is longer than the degree.
    pub fn encode_vector_signed(&self, v: &[i64]) -> Result<Plaintext> {
        let n = self.params.degree();
        if v.len() > n {
            return Err(HeError::ShapeMismatch {
                expected: n,
                got: v.len(),
            });
        }
        let t = self.t();
        let mut values: Vec<u64> = v.iter().map(|&x| t.from_signed(x)).collect();
        values.resize(n, 0);
        Ok(Plaintext { values })
    }

    /// Decodes a plaintext back to centred signed values.
    pub fn decode_signed(&self, pt: &Plaintext) -> Vec<i64> {
        let t = self.t();
        pt.values().iter().map(|&v| t.center(v)).collect()
    }
}

/// Batch (SIMD) encoder over the plaintext modulus — requires
/// `t ≡ 1 (mod 2N)` (true for the default `t = 65537` at `N ≤ 4096`).
///
/// `encode` places values in *slots*: slot-wise products of encoded
/// plaintexts correspond to element-wise products of the value vectors.
/// Slot `i` is the evaluation of the polynomial at a fixed primitive root
/// power; the exact order matches the NTT's bit-reversed order, which is
/// all the baselines need (they only ever combine like-indexed slots).
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    table: NttTable,
}

impl BatchEncoder {
    /// Creates a batch encoder.
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] when `t` cannot host a `2N`-th root of
    /// unity (i.e. batching is unsupported for this parameter set).
    pub fn new(params: &ChamParams) -> Result<Self> {
        let t = *params.plain_modulus();
        let table = NttTable::new(params.degree(), t).map_err(|_| {
            HeError::InvalidParams("plaintext modulus does not support batching (t mod 2N != 1)")
        })?;
        Ok(Self { table })
    }

    /// Number of slots (= degree).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.table.n()
    }

    /// Encodes slot values into a coefficient-domain plaintext.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] if more slots than available.
    pub fn encode(&self, slots: &[u64]) -> Result<Plaintext> {
        let n = self.slot_count();
        if slots.len() > n {
            return Err(HeError::ShapeMismatch {
                expected: n,
                got: slots.len(),
            });
        }
        let t = self.table.modulus();
        let mut vals: Vec<u64> = slots.iter().map(|&v| t.reduce(v)).collect();
        vals.resize(n, 0);
        // Slots live in the NTT domain; coefficients are its inverse image.
        self.table.inverse(&mut vals);
        Ok(Plaintext::from_values(vals))
    }

    /// Decodes a plaintext back to slot values.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] on length mismatch.
    pub fn decode(&self, pt: &Plaintext) -> Result<Vec<u64>> {
        if pt.len() != self.slot_count() {
            return Err(HeError::ShapeMismatch {
                expected: self.slot_count(),
                got: pt.len(),
            });
        }
        let mut vals = pt.values().to_vec();
        self.table.forward(&mut vals);
        Ok(vals)
    }

    /// The slot permutation induced by the Galois map `X → X^k`: returns
    /// `perm` such that `decode(σ_k(p))[i] = decode(p)[perm[i]]`.
    ///
    /// Used by the rotate-and-sum baseline to realise slot rotations.
    ///
    /// # Errors
    /// [`HeError::Math`] for even `k`.
    pub fn slot_permutation(&self, k: usize) -> Result<Vec<usize>> {
        let n = self.slot_count();
        let t = *self.table.modulus();
        // Probe with a basis plaintext per slot block: use one probe vector
        // with distinct slot values, apply σ_k, and match values.
        let probe: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let pt = self.encode(&probe)?;
        let poly = cham_math::poly::Poly::from_coeffs(pt.values().to_vec());
        let rotated = poly.automorph(k, &t)?;
        let out = self.decode(&Plaintext::from_values(rotated.into_coeffs()))?;
        let mut index_of = vec![0usize; n + 1];
        for (i, &v) in probe.iter().enumerate() {
            index_of[v as usize] = i;
        }
        let mut perm = Vec::with_capacity(n);
        for &v in &out {
            if v == 0 || v as usize > n {
                return Err(HeError::Incompatible(
                    "automorphism did not permute slots (unexpected slot algebra)",
                ));
            }
            perm.push(index_of[v as usize]);
        }
        Ok(perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cham_math::poly::Poly;
    use rand::{Rng, SeedableRng};

    fn params() -> ChamParams {
        ChamParams::insecure_test_default().unwrap()
    }

    #[test]
    fn coeff_encode_dot_product_in_constant_term() {
        // Eq. 2: (pt_row * pt_vec) constant coefficient == <row, vec> mod t.
        let p = params();
        let enc = CoeffEncoder::new(&p);
        let t = p.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = p.degree();
        let row: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let vec: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let pr = enc.encode_row(&row).unwrap();
        let pv = enc.encode_vector(&vec).unwrap();
        let a = Poly::from_coeffs(pr.values().to_vec());
        let b = Poly::from_coeffs(pv.values().to_vec());
        let prod = a.mul_negacyclic_schoolbook(&b, t);
        let expect = row
            .iter()
            .zip(&vec)
            .fold(0u64, |acc, (&x, &y)| t.add(acc, t.mul(x, y)));
        assert_eq!(prod.coeffs()[0], expect);
    }

    #[test]
    fn encode_vector_pads_and_validates() {
        let p = params();
        let enc = CoeffEncoder::new(&p);
        let pt = enc.encode_vector(&[1, 2, 3]).unwrap();
        assert_eq!(pt.len(), p.degree());
        assert_eq!(&pt.values()[..4], &[1, 2, 3, 0]);
        assert!(enc.encode_vector(&vec![0; p.degree() + 1]).is_err());
        assert!(enc.encode_row(&vec![0; p.degree() + 1]).is_err());
    }

    #[test]
    fn signed_roundtrip() {
        let p = params();
        let enc = CoeffEncoder::new(&p);
        let vals = vec![-5i64, 0, 7, -32768, 32767];
        let pt = enc.encode_vector_signed(&vals).unwrap();
        let back = enc.decode_signed(&pt);
        assert_eq!(&back[..5], &vals[..]);
    }

    #[test]
    fn batch_roundtrip() {
        let p = params();
        let enc = BatchEncoder::new(&p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let slots: Vec<u64> = (0..enc.slot_count())
            .map(|_| rng.gen_range(0..p.plain_modulus().value()))
            .collect();
        let pt = enc.encode(&slots).unwrap();
        assert_eq!(enc.decode(&pt).unwrap(), slots);
    }

    #[test]
    fn batch_slotwise_product() {
        let p = params();
        let enc = BatchEncoder::new(&p).unwrap();
        let t = p.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..enc.slot_count())
            .map(|_| rng.gen_range(0..t.value()))
            .collect();
        let ys: Vec<u64> = (0..enc.slot_count())
            .map(|_| rng.gen_range(0..t.value()))
            .collect();
        let px = enc.encode(&xs).unwrap();
        let py = enc.encode(&ys).unwrap();
        let prod = Poly::from_coeffs(px.values().to_vec())
            .mul_negacyclic_schoolbook(&Poly::from_coeffs(py.values().to_vec()), t);
        let decoded = enc
            .decode(&Plaintext::from_values(prod.into_coeffs()))
            .unwrap();
        let expect: Vec<u64> = xs.iter().zip(&ys).map(|(&a, &b)| t.mul(a, b)).collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn slot_permutation_is_a_permutation() {
        let p = params();
        let enc = BatchEncoder::new(&p).unwrap();
        for k in [3usize, 5, 2 * p.degree() - 1] {
            let perm = enc.slot_permutation(k).unwrap();
            let mut seen = vec![false; perm.len()];
            for &i in &perm {
                assert!(!seen[i], "k={k}: duplicate target {i}");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn slot_permutation_composes() {
        // perm(k1*k2) == perm(k1) ∘ perm(k2) (up to the group convention).
        let p = params();
        let n = p.degree();
        let enc = BatchEncoder::new(&p).unwrap();
        let p3 = enc.slot_permutation(3).unwrap();
        let p9 = enc.slot_permutation(9 % (2 * n)).unwrap();
        let composed: Vec<usize> = (0..n).map(|i| p3[p3[i]]).collect();
        assert_eq!(composed, p9);
    }

    #[test]
    fn batching_requires_friendly_t() {
        // t = 17: 2N = 512 does not divide 16.
        let p = crate::params::ChamParamsBuilder::new()
            .degree(256)
            .plain_modulus(17)
            .build()
            .unwrap();
        assert!(BatchEncoder::new(&p).is_err());
    }
}
