//! RLWE and LWE ciphertext types.
//!
//! Both are built on the same vector-like storage ([`cham_math::RnsPoly`]),
//! mirroring §IV-B: *"both LWE ciphertext (composed of a vector and a
//! scalar) and RLWE ciphertext (composed of polynomials) can be well
//! supported by a unified data structure"*.
//!
//! Decryption convention: `phase(b, a) = b + a·s`; a ciphertext encrypts
//! plaintext `μ` when `phase ≈ Δ·μ` with `Δ = ⌊Q_basis/t⌋`.

use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::rns::{Form, RnsPoly};

/// Which modulus basis a ciphertext lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Basis {
    /// Normal form over `Q = q0·q1`.
    Normal,
    /// Augmented form over `Q·p` (fresh HMVP inputs; key-switch internals).
    Augmented,
}

/// An RLWE ciphertext `(b(X), a(X))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlweCiphertext {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

impl RlweCiphertext {
    /// Wraps two RNS polynomials.
    ///
    /// # Errors
    /// [`HeError::Incompatible`] when the components disagree in context or
    /// form.
    pub fn new(b: RnsPoly, a: RnsPoly) -> Result<Self> {
        if b.context() != a.context() || b.form() != a.form() {
            return Err(HeError::Incompatible(
                "ciphertext components must share context and form",
            ));
        }
        Ok(Self { b, a })
    }

    /// A transparent encryption of zero (used for padding in `PACKLWES`).
    pub fn zero_like(&self) -> Self {
        Self {
            b: RnsPoly::zero(self.b.context()),
            a: RnsPoly::zero(self.a.context()),
        }
    }

    /// The `b` component.
    #[inline]
    pub fn b(&self) -> &RnsPoly {
        &self.b
    }

    /// The `a` component.
    #[inline]
    pub fn a(&self) -> &RnsPoly {
        &self.a
    }

    /// Current representation domain (shared by both components).
    #[inline]
    pub fn form(&self) -> Form {
        self.b.form()
    }

    /// Which basis the ciphertext lives in under `params`.
    ///
    /// # Errors
    /// [`HeError::Incompatible`] when the context matches neither basis of
    /// `params`.
    pub fn basis(&self, params: &ChamParams) -> Result<Basis> {
        if self.b.context() == params.ciphertext_context() {
            Ok(Basis::Normal)
        } else if self.b.context() == params.augmented_context() {
            Ok(Basis::Augmented)
        } else {
            Err(HeError::Incompatible(
                "ciphertext context matches neither basis of the parameter set",
            ))
        }
    }

    /// Converts both components to NTT form in place.
    pub fn to_ntt(&mut self) {
        self.b.to_ntt();
        self.a.to_ntt();
    }

    /// Converts both components to coefficient form in place.
    pub fn to_coeff(&mut self) {
        self.b.to_coeff();
        self.a.to_coeff();
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    /// [`HeError::Incompatible`] on context/form mismatch.
    pub fn add(&self, rhs: &Self) -> Result<Self> {
        Ok(Self {
            b: self.b.add(&rhs.b)?,
            a: self.a.add(&rhs.a)?,
        })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    /// [`HeError::Incompatible`] on context/form mismatch.
    pub fn sub(&self, rhs: &Self) -> Result<Self> {
        Ok(Self {
            b: self.b.sub(&rhs.b)?,
            a: self.a.sub(&rhs.a)?,
        })
    }

    /// Homomorphic negation.
    pub fn neg(&self) -> Self {
        Self {
            b: self.b.neg(),
            a: self.a.neg(),
        }
    }

    /// Multiplication by the monomial `X^s` (`MULTMONO`, built on
    /// `SHIFTNEG`). Coefficient form required.
    ///
    /// # Errors
    /// [`HeError::Math`] when in NTT form.
    pub fn mul_monomial(&self, s: usize) -> Result<Self> {
        Ok(Self {
            b: self.b.shift_neg(s)?,
            a: self.a.shift_neg(s)?,
        })
    }

    /// Raw Galois map `X → X^k` on both components (`AUTOMORPH`). The
    /// result decrypts under the automorphed key `σ_k(s)` — follow with a
    /// key-switch ([`crate::ops::apply_galois`] does both).
    ///
    /// # Errors
    /// [`HeError::Math`] for even `k` or NTT form.
    pub fn automorph(&self, k: usize) -> Result<Self> {
        Ok(Self {
            b: self.b.automorph(k)?,
            a: self.a.automorph(k)?,
        })
    }
}

/// An LWE ciphertext `(b, â)`: a scalar `b` (stored as RNS residues) and a
/// mask vector `â` such that `phase = b + ⟨â, s⟩`.
///
/// Produced by `EXTRACTLWES` (Eq. 3) from an RLWE ciphertext; convertible
/// back via `LWE-TO-RLWE` for packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweCiphertext {
    /// `b` residues, one per limb of the basis.
    pub(crate) b: Vec<u64>,
    /// The mask vector in the Eq. 3 arrangement, coefficient form.
    pub(crate) a: RnsPoly,
}

impl LweCiphertext {
    /// Wraps raw components.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when `b` has a residue count different
    /// from the mask's limb count, or [`HeError::Incompatible`] when the
    /// mask is in NTT form.
    pub fn new(b: Vec<u64>, a: RnsPoly) -> Result<Self> {
        if b.len() != a.context().len() {
            return Err(HeError::ShapeMismatch {
                expected: a.context().len(),
                got: b.len(),
            });
        }
        if a.form() != Form::Coeff {
            return Err(HeError::Incompatible(
                "lwe mask must be in coefficient form",
            ));
        }
        Ok(Self { b, a })
    }

    /// The scalar `b`, as one residue per basis limb.
    #[inline]
    pub fn b(&self) -> &[u64] {
        &self.b
    }

    /// The mask vector (Eq. 3 arrangement).
    #[inline]
    pub fn a(&self) -> &RnsPoly {
        &self.a
    }

    /// Homomorphic addition of two LWE ciphertexts (phases add).
    ///
    /// # Errors
    /// [`HeError::Incompatible`] on context mismatch.
    pub fn add(&self, rhs: &Self) -> Result<Self> {
        if self.a.context() != rhs.a.context() {
            return Err(HeError::Incompatible(
                "lwe ciphertexts from different bases",
            ));
        }
        let b = self
            .b
            .iter()
            .zip(&rhs.b)
            .zip(self.a.context().moduli())
            .map(|((&x, &y), m)| m.add(x, y))
            .collect();
        Ok(Self {
            b,
            a: self.a.add(&rhs.a)?,
        })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    /// [`HeError::Incompatible`] on context mismatch.
    pub fn sub(&self, rhs: &Self) -> Result<Self> {
        if self.a.context() != rhs.a.context() {
            return Err(HeError::Incompatible(
                "lwe ciphertexts from different bases",
            ));
        }
        let b = self
            .b
            .iter()
            .zip(&rhs.b)
            .zip(self.a.context().moduli())
            .map(|((&x, &y), m)| m.sub(x, y))
            .collect();
        Ok(Self {
            b,
            a: self.a.sub(&rhs.a)?,
        })
    }

    /// Small-scalar multiplication (noise scales with the centred `c`).
    pub fn mul_scalar(&self, c: u64, params: &ChamParams) -> Self {
        let t = params.plain_modulus();
        let centred = t.center(t.reduce(c));
        let ctx = self.a.context();
        let b = self
            .b
            .iter()
            .zip(ctx.moduli())
            .map(|(&x, m)| m.mul(x, m.from_signed(centred)))
            .collect();
        let limbs = self
            .a
            .limbs()
            .iter()
            .zip(ctx.moduli())
            .map(|(l, m)| l.mul_scalar(m.from_signed(centred), m))
            .collect();
        let a = RnsPoly::from_limbs(ctx, limbs, Form::Coeff).expect("limbs match context");
        Self { b, a }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cham_math::rns::RnsPoly;

    fn params() -> ChamParams {
        ChamParams::insecure_test_default().unwrap()
    }

    #[test]
    fn new_rejects_mismatched_components() {
        let p = params();
        let b = RnsPoly::zero(p.ciphertext_context());
        let a = RnsPoly::zero(p.augmented_context());
        assert!(RlweCiphertext::new(b.clone(), a).is_err());
        let mut a2 = RnsPoly::zero(p.ciphertext_context());
        a2.to_ntt();
        assert!(RlweCiphertext::new(b.clone(), a2).is_err());
        assert!(RlweCiphertext::new(b.clone(), b).is_ok());
    }

    #[test]
    fn basis_detection() {
        let p = params();
        let z = RnsPoly::zero(p.ciphertext_context());
        let ct = RlweCiphertext::new(z.clone(), z).unwrap();
        assert_eq!(ct.basis(&p).unwrap(), Basis::Normal);
        let za = RnsPoly::zero(p.augmented_context());
        let ct2 = RlweCiphertext::new(za.clone(), za).unwrap();
        assert_eq!(ct2.basis(&p).unwrap(), Basis::Augmented);
    }

    #[test]
    fn add_sub_neg_algebra() {
        let p = params();
        let ctx = p.ciphertext_context();
        let one = RnsPoly::from_signed(ctx, &vec![1i64; p.degree()]).unwrap();
        let two = RnsPoly::from_signed(ctx, &vec![2i64; p.degree()]).unwrap();
        let ct1 = RlweCiphertext::new(one.clone(), one.clone()).unwrap();
        let ct2 = RlweCiphertext::new(two.clone(), two).unwrap();
        let sum = ct1.add(&ct1).unwrap();
        assert_eq!(sum, ct2);
        assert_eq!(sum.sub(&ct1).unwrap(), ct1);
        assert_eq!(ct1.add(&ct1.neg()).unwrap(), ct1.zero_like());
    }

    #[test]
    fn monomial_full_rotation_is_identity() {
        let p = params();
        let ctx = p.ciphertext_context();
        let x = RnsPoly::from_signed(ctx, &(0..p.degree() as i64).collect::<Vec<_>>()).unwrap();
        let ct = RlweCiphertext::new(x.clone(), x).unwrap();
        assert_eq!(ct.mul_monomial(2 * p.degree()).unwrap(), ct);
        assert_eq!(ct.mul_monomial(p.degree()).unwrap(), ct.neg());
    }

    #[test]
    fn lwe_arithmetic_is_homomorphic() {
        use crate::encoding::CoeffEncoder;
        use crate::encrypt::{Decryptor, Encryptor};
        use crate::extract::extract_lwe;
        use crate::keys::SecretKey;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(64);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let coder = CoeffEncoder::new(&params);
        let t = params.plain_modulus();
        let make = |v: u64, rng: &mut rand::rngs::StdRng| {
            let ct = enc.encrypt(&coder.encode_vector(&[v]).unwrap(), rng);
            extract_lwe(&ct, 0).unwrap()
        };
        let la = make(1000, &mut rng);
        let lb = make(65000, &mut rng);
        assert_eq!(dec.decrypt_lwe(&la.add(&lb).unwrap()), t.add(1000, 65000));
        assert_eq!(dec.decrypt_lwe(&la.sub(&lb).unwrap()), t.sub(1000, 65000));
        assert_eq!(dec.decrypt_lwe(&la.mul_scalar(7, &params)), 7000);
        // Augmented/normal mixing is rejected.
        let aug = {
            let ct = enc.encrypt_augmented(&coder.encode_vector(&[1]).unwrap(), &mut rng);
            extract_lwe(&ct, 0).unwrap()
        };
        assert!(la.add(&aug).is_err());
        assert!(la.sub(&aug).is_err());
    }

    #[test]
    fn lwe_validation() {
        let p = params();
        let a = RnsPoly::zero(p.ciphertext_context());
        assert!(LweCiphertext::new(vec![0; 2], a.clone()).is_ok());
        assert!(LweCiphertext::new(vec![0; 3], a.clone()).is_err());
        let mut antt = a;
        antt.to_ntt();
        assert!(LweCiphertext::new(vec![0; 2], antt).is_err());
    }
}
