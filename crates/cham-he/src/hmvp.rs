//! Homomorphic matrix-vector product (paper Alg. 1), with tiling.
//!
//! For an `m × n` matrix `A` and encrypted vector `v`:
//!
//! 1. `v` is coefficient-encoded and encrypted (augmented basis), one
//!    ciphertext per `N`-column tile,
//! 2. every row tile is encoded per Eq. 1 and lifted to NTT form
//!    (precomputable — the matrix is plaintext),
//! 3. **dot product**: NTT-domain multiply-accumulate across column tiles
//!    (pipeline stages 1–3),
//! 4. **rescale** by the special modulus (stage 4),
//! 5. **extract** the constant coefficient as an LWE ciphertext (stage 4),
//! 6. **pack** the `m` LWEs into `⌈m/N⌉` RLWE ciphertexts (stages 5–9).
//!
//! Complexity is `O(m)` ciphertext operations — the paper's headline
//! advantage over batch-encoded HMVP's `O(m log N)` (§II-E). Together with
//! mini-batching this supports "data of any scale" (§V-B.3).

use crate::ciphertext::{LweCiphertext, RlweCiphertext};
use crate::encoding::CoeffEncoder;
use crate::encrypt::{Decryptor, Encryptor};
use crate::extract::extract_lwe;
use crate::keys::GaloisKeys;
use crate::ops::{lift_plaintext_ntt, rescale};
use crate::pack::{pack_lwes, PackedRlwe};
use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::rns::{FusedAccumulator, RnsPoly};
use cham_telemetry::span::{phase, Span};
use rand::Rng;
use std::sync::Arc;

/// A dense row-major matrix over `Z_t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl Matrix {
    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<u64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(HeError::ShapeMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// A random matrix with entries below `t`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, t: u64, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(0..t)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Plain (reference) matrix-vector product mod `t`.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when `v.len() != cols`.
    pub fn mul_vector_mod(&self, v: &[u64], t: &cham_math::Modulus) -> Result<Vec<u64>> {
        if v.len() != self.cols {
            return Err(HeError::ShapeMismatch {
                expected: self.cols,
                got: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(0u64, |acc, (&a, &x)| t.add(acc, t.mul(a, t.reduce(x))))
            })
            .collect())
    }
}

/// A matrix pre-encoded for HMVP: per row, per column tile, the Eq. 1
/// plaintext lifted to NTT form over the augmented basis.
///
/// The prepared tiles live behind an `Arc`, so `clone()` is a cheap handle
/// copy — a cache can hand the same NTT-form encoding to many workers
/// without duplicating `rows × col_tiles` polynomials.
#[derive(Debug, Clone)]
pub struct EncodedMatrix {
    rows: usize,
    cols: usize,
    /// `rows × col_tiles` prepared plaintexts (shared, immutable).
    tiles: Arc<Vec<Vec<RnsPoly>>>,
}

impl EncodedMatrix {
    /// Number of column tiles (`⌈cols/N⌉`).
    pub fn col_tiles(&self) -> usize {
        self.tiles.first().map_or(0, Vec::len)
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Rebuilds an encoded matrix from already-prepared tiles (the
    /// wire/restore path — tiles must be NTT-form over the augmented
    /// basis, exactly as [`Hmvp::encode_matrix`] produces them).
    pub(crate) fn from_tiles(rows: usize, cols: usize, tiles: Vec<Vec<RnsPoly>>) -> Self {
        Self {
            rows,
            cols,
            tiles: Arc::new(tiles),
        }
    }

    /// The prepared tiles, row-major.
    pub(crate) fn tiles(&self) -> &[Vec<RnsPoly>] {
        &self.tiles
    }
}

/// The packed result of an HMVP: `⌈m/N⌉` packed ciphertexts covering the
/// `m` output entries in order.
#[derive(Debug, Clone)]
pub struct HmvpResult {
    /// Packed outputs, each covering up to `N` entries.
    pub packed: Vec<PackedRlwe>,
    /// Total number of output entries (`m`).
    pub len: usize,
}

/// The HMVP engine: encodes, multiplies, and decodes.
///
/// The parameter set is held behind an `Arc`: [`Hmvp::new`] clones the
/// parameters once, while [`Hmvp::from_arc`] shares an existing handle —
/// so a session cache can mint one engine per worker at pointer cost.
#[derive(Debug, Clone)]
pub struct Hmvp {
    params: Arc<ChamParams>,
    coder: CoeffEncoder,
}

impl Hmvp {
    /// Creates an HMVP engine for the parameter set.
    pub fn new(params: &ChamParams) -> Self {
        Self::from_arc(Arc::new(params.clone()))
    }

    /// Creates an HMVP engine sharing an existing parameter handle
    /// without cloning the parameter set.
    pub fn from_arc(params: Arc<ChamParams>) -> Self {
        let coder = CoeffEncoder::from_arc(Arc::clone(&params));
        Self { params, coder }
    }

    /// The parameter set the engine operates over.
    #[inline]
    pub fn params(&self) -> &ChamParams {
        &self.params
    }

    /// The coefficient encoder in use.
    #[inline]
    pub fn encoder(&self) -> &CoeffEncoder {
        &self.coder
    }

    /// Encrypts a vector as `⌈len/N⌉` augmented-basis ciphertexts.
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] for an empty vector.
    pub fn encrypt_vector<R: Rng + ?Sized>(
        &self,
        v: &[u64],
        enc: &Encryptor,
        rng: &mut R,
    ) -> Result<Vec<RlweCiphertext>> {
        if v.is_empty() {
            return Err(HeError::InvalidParams("vector must be non-empty"));
        }
        let n = self.params.degree();
        v.chunks(n)
            .map(|chunk| {
                let pt = self.coder.encode_vector(chunk)?;
                Ok(enc.encrypt_augmented(&pt, rng))
            })
            .collect()
    }

    /// Pre-encodes a matrix: every row tile becomes an NTT-form plaintext
    /// (done once; reusable across many vectors).
    ///
    /// # Errors
    /// [`HeError::InvalidParams`] for an empty matrix.
    pub fn encode_matrix(&self, a: &Matrix) -> Result<EncodedMatrix> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(HeError::InvalidParams("matrix must be non-empty"));
        }
        let n = self.params.degree();
        let aug = self.params.augmented_context();
        let tiles = (0..a.rows())
            .map(|i| {
                a.row(i)
                    .chunks(n)
                    .map(|chunk| {
                        let pt = self.coder.encode_row(chunk)?;
                        lift_plaintext_ntt(&pt, &self.params, aug)
                    })
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(EncodedMatrix {
            rows: a.rows(),
            cols: a.cols(),
            tiles: Arc::new(tiles),
        })
    }

    /// Computes the dot-product/extract phase: one LWE ciphertext per row
    /// (Alg. 1 lines 1–4).
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when the ciphertext count differs from
    /// the matrix's column tiling.
    pub fn dot_products(
        &self,
        matrix: &EncodedMatrix,
        cts: &[RlweCiphertext],
    ) -> Result<Vec<LweCiphertext>> {
        if cts.len() != matrix.col_tiles() {
            return Err(HeError::ShapeMismatch {
                expected: matrix.col_tiles(),
                got: cts.len(),
            });
        }
        let cts_ntt = Self::lift_inputs_ntt(cts);
        matrix
            .tiles
            .iter()
            .map(|row_tiles| self.dot_row(row_tiles, &cts_ntt))
            .collect()
    }

    /// Transforms the input ciphertexts to NTT form once; every matrix row
    /// reuses them (the pipeline keeps the vector resident in the NTT
    /// domain across the whole DOTPRODUCT stage, §V-B.1). The per-tile
    /// transforms are independent, so they fan out across the shared
    /// `cham-pool` thread pool.
    fn lift_inputs_ntt(cts: &[RlweCiphertext]) -> Vec<RlweCiphertext> {
        // Request-scoped phase span: free when no recorder is installed
        // (see cham_telemetry::span), so the kernel stays uninstrumented
        // outside the serving stack's traced requests.
        let _span = Span::enter(phase::ENCODE);
        cham_pool::map(cts, |_, ct| {
            let mut c = ct.clone();
            c.to_ntt();
            c
        })
    }

    /// One row's dot product against NTT-form inputs: fused pointwise
    /// multiply-accumulate per column tile ("a row residing in multiple
    /// ciphertexts needs to be aggregated", §V-B.2), then a single INTT /
    /// rescale / extract for the row.
    ///
    /// Products are accumulated with reduction deferred
    /// ([`FusedAccumulator`]) into per-worker scratch, so the tile loop
    /// performs no modular correction and no heap allocation — bit-identical
    /// to the strict [`Hmvp::dot_products_unfused`] twin.
    fn dot_row(
        &self,
        row_tiles: &[cham_math::rns::RnsPoly],
        cts_ntt: &[RlweCiphertext],
    ) -> Result<LweCiphertext> {
        let aug = self.params.augmented_context();
        let lanes = aug.len() * aug.degree();
        let dot_span = Span::enter(phase::DOT);
        let (b, a) = crate::scratch::with_dot_scratch(lanes, |s| -> Result<_> {
            let mut b_acc = FusedAccumulator::new(aug, &mut s.b_acc)?;
            let mut a_acc = FusedAccumulator::new(aug, &mut s.a_acc)?;
            for (pt_ntt, ct) in row_tiles.iter().zip(cts_ntt) {
                b_acc.accumulate(ct.b(), pt_ntt)?;
                a_acc.accumulate(ct.a(), pt_ntt)?;
            }
            Ok((b_acc.finish(), a_acc.finish()))
        })?;
        drop(dot_span);
        let _span = Span::enter(phase::RESCALE);
        let rescaled = rescale(&RlweCiphertext::new(b, a)?, &self.params)?;
        extract_lwe(&rescaled, 0)
    }

    /// Strict-reduction, allocating twin of [`Hmvp::dot_row`] — kept for
    /// equivalence tests and the `fig8_hmvp` ablation column.
    fn dot_row_unfused(
        &self,
        row_tiles: &[cham_math::rns::RnsPoly],
        cts_ntt: &[RlweCiphertext],
    ) -> Result<LweCiphertext> {
        let mut acc: Option<(cham_math::rns::RnsPoly, cham_math::rns::RnsPoly)> = None;
        for (pt_ntt, ct) in row_tiles.iter().zip(cts_ntt) {
            let b = ct.b().mul_pointwise(pt_ntt)?;
            let a = ct.a().mul_pointwise(pt_ntt)?;
            acc = Some(match acc {
                Some((xb, xa)) => (xb.add(&b)?, xa.add(&a)?),
                None => (b, a),
            });
        }
        let (b, a) = acc.expect("at least one column tile");
        let rescaled = rescale(&RlweCiphertext::new(b, a)?, &self.params)?;
        extract_lwe(&rescaled, 0)
    }

    /// Dot-product phase through the strict per-tile multiply/add path (no
    /// deferred reduction, two allocations per row×tile) — the ablation
    /// baseline for the fused kernel; results are bit-identical to
    /// [`Hmvp::dot_products`].
    ///
    /// # Errors
    /// Same conditions as [`Hmvp::dot_products`].
    pub fn dot_products_unfused(
        &self,
        matrix: &EncodedMatrix,
        cts: &[RlweCiphertext],
    ) -> Result<Vec<LweCiphertext>> {
        if cts.len() != matrix.col_tiles() {
            return Err(HeError::ShapeMismatch {
                expected: matrix.col_tiles(),
                got: cts.len(),
            });
        }
        let cts_ntt = Self::lift_inputs_ntt(cts);
        matrix
            .tiles
            .iter()
            .map(|row_tiles| self.dot_row_unfused(row_tiles, &cts_ntt))
            .collect()
    }

    /// Multi-threaded dot-product phase: rows fan out across the shared
    /// `cham-pool` work-stealing pool (the multi-thread host side of
    /// Fig. 1b; also the honest way to measure a parallel CPU baseline).
    /// `threads` caps the row-level parallelism; actual concurrency is
    /// additionally bounded by the pool's worker count. Results are
    /// bit-identical to [`Hmvp::dot_products`] at any thread count — every
    /// row's reduction runs whole on one task.
    ///
    /// # Errors
    /// Same conditions as [`Hmvp::dot_products`].
    pub fn dot_products_parallel(
        &self,
        matrix: &EncodedMatrix,
        cts: &[RlweCiphertext],
        threads: usize,
    ) -> Result<Vec<LweCiphertext>> {
        if cts.len() != matrix.col_tiles() {
            return Err(HeError::ShapeMismatch {
                expected: matrix.col_tiles(),
                got: cts.len(),
            });
        }
        let cts_ntt = Self::lift_inputs_ntt(cts);
        cham_pool::map_capped(&matrix.tiles, threads.max(1), |_, row_tiles| {
            self.dot_row(row_tiles, &cts_ntt)
        })
        .into_iter()
        .collect()
    }

    /// Full HMVP (Alg. 1): dot products, extraction, and packing.
    ///
    /// # Errors
    /// Propagates shape mismatches and missing Galois keys.
    pub fn multiply(
        &self,
        matrix: &EncodedMatrix,
        cts: &[RlweCiphertext],
        gkeys: &GaloisKeys,
    ) -> Result<HmvpResult> {
        cham_telemetry::counter_add!("cham_he.hmvp.multiply", 1);
        cham_telemetry::time_scope!("cham_he.hmvp.multiply");
        let lwes = self.dot_products(matrix, cts)?;
        let n = self.params.degree();
        let pack_span = Span::enter(phase::KEYSWITCH);
        let packed = lwes
            .chunks(n)
            .map(|chunk| pack_lwes(chunk, gkeys, &self.params))
            .collect::<Result<Vec<_>>>()?;
        drop(pack_span);
        Ok(HmvpResult {
            packed,
            len: matrix.rows,
        })
    }

    /// Full HMVP with the dot-product phase fanned out across the shared
    /// pool, capped at `threads` concurrent rows (packing parallelises
    /// per level inside [`pack_lwes`] — the reduction tree's pairs at one
    /// level are independent).
    ///
    /// # Errors
    /// Propagates shape mismatches and missing Galois keys.
    pub fn multiply_parallel(
        &self,
        matrix: &EncodedMatrix,
        cts: &[RlweCiphertext],
        gkeys: &GaloisKeys,
        threads: usize,
    ) -> Result<HmvpResult> {
        cham_telemetry::counter_add!("cham_he.hmvp.multiply", 1);
        cham_telemetry::time_scope!("cham_he.hmvp.multiply");
        let lwes = self.dot_products_parallel(matrix, cts, threads)?;
        let n = self.params.degree();
        let pack_span = Span::enter(phase::KEYSWITCH);
        let packed = lwes
            .chunks(n)
            .map(|chunk| pack_lwes(chunk, gkeys, &self.params))
            .collect::<Result<Vec<_>>>()?;
        drop(pack_span);
        Ok(HmvpResult {
            packed,
            len: matrix.rows,
        })
    }

    /// One coalesced dispatch of the same matrix against many encrypted
    /// vectors: the batch fans out across the shared `cham-pool` pool
    /// (capped at `threads` concurrent inputs), each task running the full
    /// per-vector pipeline (dot products + packing).
    ///
    /// This is the service-layer entry point: a batching scheduler that
    /// has coalesced `k` queued requests against one [`EncodedMatrix`]
    /// pays zero thread spawns — the work rides the persistent kernel
    /// pool, so many serve workers compose without oversubscribing the
    /// machine. Results come back in input order. A single-element batch
    /// falls through to [`Hmvp::multiply_parallel`] so the row-partitioned
    /// path still applies.
    ///
    /// # Errors
    /// Propagates shape mismatches and missing Galois keys; the first
    /// failing input aborts the batch.
    pub fn multiply_many(
        &self,
        matrix: &EncodedMatrix,
        inputs: &[Vec<RlweCiphertext>],
        gkeys: &GaloisKeys,
        threads: usize,
    ) -> Result<Vec<HmvpResult>> {
        cham_telemetry::counter_add!("cham_he.hmvp.multiply_many", 1);
        cham_telemetry::time_scope!("cham_he.hmvp.multiply_many");
        for cts in inputs {
            if cts.len() != matrix.col_tiles() {
                return Err(HeError::ShapeMismatch {
                    expected: matrix.col_tiles(),
                    got: cts.len(),
                });
            }
        }
        match inputs.len() {
            0 => Ok(Vec::new()),
            1 => Ok(vec![
                self.multiply_parallel(matrix, &inputs[0], gkeys, threads)?
            ]),
            _ => cham_pool::map_capped(inputs, threads.max(1), |_, cts| {
                self.multiply(matrix, cts, gkeys)
            })
            .into_iter()
            .collect(),
        }
    }

    /// Decrypts and decodes an HMVP result into the `m` output values.
    ///
    /// # Errors
    /// Decode-shape errors from the packing layer.
    pub fn decrypt_result(&self, result: &HmvpResult, dec: &Decryptor) -> Result<Vec<u64>> {
        let mut out = Vec::with_capacity(result.len);
        for packed in &result.packed {
            let pt = dec.decrypt(&packed.ciphertext);
            out.extend(packed.decode(&pt, &self.params)?);
        }
        out.truncate(result.len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SecretKey;
    use rand::SeedableRng;

    fn setup() -> (
        ChamParams,
        SecretKey,
        Encryptor,
        Decryptor,
        GaloisKeys,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2002);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        (params, sk, enc, dec, gkeys, rng)
    }

    fn run_hmvp(m: usize, n_cols: usize) {
        let (params, _, enc, dec, gkeys, mut rng) = setup();
        let t = params.plain_modulus();
        let a = Matrix::random(m, n_cols, t.value(), &mut rng);
        let v: Vec<u64> = (0..n_cols).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let result = hmvp.multiply(&em, &cts, &gkeys).unwrap();
        let got = hmvp.decrypt_result(&result, &dec).unwrap();
        let expect = a.mul_vector_mod(&v, t).unwrap();
        assert_eq!(got, expect, "m={m} n={n_cols}");
    }

    #[test]
    fn square_small() {
        run_hmvp(8, 8);
    }

    #[test]
    fn tall_matrix() {
        run_hmvp(64, 16);
    }

    #[test]
    fn wide_matrix_multiple_column_tiles() {
        // cols > N (=256 in test params): vector spans 3 ciphertexts.
        run_hmvp(8, 700);
    }

    #[test]
    fn rows_exceed_degree_multiple_packs() {
        // m > N: two packed outputs.
        run_hmvp(300, 16);
    }

    #[test]
    fn single_row_and_column() {
        run_hmvp(1, 1);
    }

    #[test]
    fn full_degree_square() {
        run_hmvp(256, 256);
    }

    #[test]
    fn matrix_validation() {
        let t = cham_math::Modulus::new(65537).unwrap();
        assert!(Matrix::from_data(2, 3, vec![0; 5]).is_err());
        let m = Matrix::from_data(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m.row(1), &[3, 4]);
        assert!(m.mul_vector_mod(&[1], &t).is_err());
        assert_eq!(m.mul_vector_mod(&[1, 1], &t).unwrap(), vec![3, 7]);
    }

    #[test]
    fn shape_mismatch_between_matrix_and_ciphertexts() {
        let (params, _, enc, _, gkeys, mut rng) = setup();
        let a = Matrix::random(4, 300, 65537, &mut rng); // 2 column tiles
        let hmvp = Hmvp::new(&params);
        let em = hmvp.encode_matrix(&a).unwrap();
        let v = vec![1u64; 256]; // only 1 ciphertext
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        assert!(hmvp.multiply(&em, &cts, &gkeys).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        let (params, _, enc, _, _, mut rng) = setup();
        let hmvp = Hmvp::new(&params);
        assert!(hmvp.encrypt_vector(&[], &enc, &mut rng).is_err());
        let empty = Matrix::from_data(0, 0, vec![]).unwrap();
        assert!(hmvp.encode_matrix(&empty).is_err());
    }

    #[test]
    fn multiply_parallel_matches_serial() {
        let (params, _, enc, dec, gkeys, mut rng) = setup();
        let t = params.plain_modulus();
        let a = Matrix::random(24, 32, t.value(), &mut rng);
        let v: Vec<u64> = (0..32).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let par = hmvp.multiply_parallel(&em, &cts, &gkeys, 3).unwrap();
        let got = hmvp.decrypt_result(&par, &dec).unwrap();
        assert_eq!(got, a.mul_vector_mod(&v, t).unwrap());
    }

    #[test]
    fn parallel_dot_products_match_serial() {
        let (params, _, enc, _, _, mut rng) = setup();
        let t = params.plain_modulus();
        let a = Matrix::random(37, 300, t.value(), &mut rng); // odd row count, 2 tiles
        let v: Vec<u64> = (0..300).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let serial = hmvp.dot_products(&em, &cts).unwrap();
        for threads in [1usize, 2, 4, 64] {
            let par = hmvp.dot_products_parallel(&em, &cts, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
        // Shape mismatch propagates from workers too.
        assert!(hmvp.dot_products_parallel(&em, &cts[..1], 2).is_err());
    }

    #[test]
    fn fused_dot_products_match_unfused() {
        let (params, _, enc, _, _, mut rng) = setup();
        let t = params.plain_modulus();
        // 2 column tiles exercises cross-tile accumulation; 37 rows the
        // odd-count path.
        let a = Matrix::random(37, 300, t.value(), &mut rng);
        let v: Vec<u64> = (0..300).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let fused = hmvp.dot_products(&em, &cts).unwrap();
        let unfused = hmvp.dot_products_unfused(&em, &cts).unwrap();
        assert_eq!(fused, unfused, "lazy datapath must be bit-identical");
    }

    #[test]
    fn steady_state_dot_phase_does_not_allocate_scratch() {
        let (params, _, enc, _, _, mut rng) = setup();
        let t = params.plain_modulus();
        let a = Matrix::random(16, 300, t.value(), &mut rng);
        let v: Vec<u64> = (0..300).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        // Warm-up populates every worker's scratch slot.
        hmvp.dot_products_parallel(&em, &cts, 4).unwrap();
        // Concurrently running tests share slot 0 and can steal a buffer
        // mid-measurement; retry so only a systematic per-row miss fails.
        let mut flat = false;
        for _ in 0..5 {
            let (_, misses_before) = crate::scratch::scratch_stats();
            for _ in 0..3 {
                hmvp.dot_products_parallel(&em, &cts, 4).unwrap();
            }
            let (_, misses_after) = crate::scratch::scratch_stats();
            if misses_after == misses_before {
                flat = true;
                break;
            }
        }
        assert!(flat, "steady-state dot phase must not allocate scratch");
    }

    #[test]
    fn multiply_many_matches_per_request_results() {
        let (params, _, enc, dec, gkeys, mut rng) = setup();
        let t = params.plain_modulus();
        let a = Matrix::random(16, 300, t.value(), &mut rng); // 2 column tiles
        let hmvp = Hmvp::from_arc(std::sync::Arc::new(params.clone()));
        let em = hmvp.encode_matrix(&a).unwrap();
        // A cheap handle clone must see the same tiles.
        let em2 = em.clone();
        assert_eq!(em2.shape(), em.shape());
        let inputs: Vec<Vec<RlweCiphertext>> = (0..5)
            .map(|_| {
                let v: Vec<u64> = (0..300).map(|_| rng.gen_range(0..t.value())).collect();
                hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap()
            })
            .collect();
        for threads in [1usize, 2, 8] {
            let batch = hmvp.multiply_many(&em2, &inputs, &gkeys, threads).unwrap();
            assert_eq!(batch.len(), inputs.len());
            for (cts, result) in inputs.iter().zip(&batch) {
                let single = hmvp.multiply(&em, cts, &gkeys).unwrap();
                assert_eq!(
                    hmvp.decrypt_result(result, &dec).unwrap(),
                    hmvp.decrypt_result(&single, &dec).unwrap(),
                    "threads={threads}"
                );
            }
        }
        // Empty batch is a no-op; a bad input aborts the batch.
        assert!(hmvp.multiply_many(&em, &[], &gkeys, 2).unwrap().is_empty());
        let bad = vec![inputs[0][..1].to_vec()];
        assert!(hmvp.multiply_many(&em, &bad, &gkeys, 2).is_err());
    }

    #[test]
    fn noise_budget_survives_full_pipeline() {
        let (params, _, enc, dec, gkeys, mut rng) = setup();
        let t = params.plain_modulus();
        let n = params.degree();
        let a = Matrix::random(n, n, t.value(), &mut rng);
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let result = hmvp.multiply(&em, &cts, &gkeys).unwrap();
        let report = dec.decrypt_with_noise(&result.packed[0].ciphertext);
        assert!(report.budget_bits > 0.0, "budget {}", report.budget_bits);
    }
}
