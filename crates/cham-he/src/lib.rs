//! # cham-he — the CHAM homomorphic-encryption algorithm stack
//!
//! This crate implements the algorithmic half of the CHAM accelerator
//! (DAC'23): a B/FV-style RLWE scheme specialised for *coefficient-encoded
//! homomorphic matrix-vector product* (HMVP, paper Alg. 1), together with
//! the LWE↔RLWE ciphertext conversions of Chen et al. that CHAM is the
//! first accelerator to support:
//!
//! * [`params`] — the paper's `N = 4096` parameter set with hardware-
//!   friendly moduli (§II-F),
//! * [`keys`] — secret keys, RNS key-switch keys with a special modulus,
//!   and Galois (automorphism) keys,
//! * [`encoding`] — coefficient encoding (Eq. 1) and the batch (SIMD)
//!   encoding used by the related-work baselines (§II-E),
//! * [`ciphertext`] — RLWE and LWE ciphertext types over the unified
//!   vector-like storage of §IV-B,
//! * [`encrypt`] — encryption, decryption, and an exact noise meter,
//! * [`ops`] — homomorphic addition, plaintext multiplication, rescale
//!   (pipeline stage-4), automorphism + key-switch,
//! * [`extract`] — `EXTRACTLWES` (Eq. 3) and `LWE-TO-RLWE`,
//! * [`pack`] — `PACKTWOLWES` / `PACKLWES` (Algs. 2 & 3),
//! * [`hmvp`] — the end-to-end HMVP with tiling for arbitrary shapes,
//! * [`baseline`] — batch-encoded rotate-and-sum and diagonal HMVP, the
//!   `O(m log N)` / `O(m)` comparators of §II-E,
//! * [`conv`] — 2-D and 3-D convolution via coefficient encoding (the
//!   paper's "easily extended" claim),
//! * [`ckks`] — a CKKS scheme over the same substrate (the hybrid-scheme
//!   motivation of §I),
//! * [`noise`] — analytic noise bounds validated against the exact meter,
//! * [`wire`] — versioned byte serialization for ciphertexts.
//!
//! ## Quickstart
//!
//! ```
//! use cham_he::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let params = ChamParams::insecure_test_default()?;
//! let sk = SecretKey::generate(&params, &mut rng);
//! let enc = Encryptor::new(&params, &sk);
//! let dec = Decryptor::new(&params, &sk);
//!
//! let v = vec![5u64; params.degree()];
//! let pt = CoeffEncoder::new(&params).encode_vector(&v)?;
//! let ct = enc.encrypt_augmented(&pt, &mut rng);
//! let out = dec.decrypt_augmented(&ct);
//! assert_eq!(out.values()[0], 5);
//! # Ok::<(), cham_he::HeError>(())
//! ```

#![warn(missing_docs)]
pub mod baseline;
pub mod bfv_mul;
pub mod ciphertext;
pub mod ckks;
pub mod conv;
pub mod encoding;
pub mod encrypt;
pub mod extract;
pub mod hmvp;
pub mod keys;
pub mod noise;
pub mod ops;
pub mod pack;
pub mod params;
pub mod scratch;
pub(crate) mod telemetry;
pub mod wire;

use std::error::Error;
use std::fmt;

/// Convenient glob-import of the main API surface.
pub mod prelude {
    pub use crate::ciphertext::{LweCiphertext, RlweCiphertext};
    pub use crate::encoding::{BatchEncoder, CoeffEncoder, Plaintext};
    pub use crate::encrypt::{Decryptor, Encryptor};
    pub use crate::hmvp::{Hmvp, HmvpResult};
    pub use crate::keys::{GaloisKeys, KeySwitchKey, SecretKey};
    pub use crate::params::{ChamParams, ChamParamsBuilder};
}

/// Errors from the HE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeError {
    /// Parameter validation failed (message names the offending rule).
    InvalidParams(&'static str),
    /// An operand has the wrong length/shape for the operation.
    ShapeMismatch {
        /// The size the operation required.
        expected: usize,
        /// The size it was given.
        got: usize,
    },
    /// Operands belong to different parameter sets, bases, or domains.
    Incompatible(&'static str),
    /// The requested Galois key is missing.
    MissingGaloisKey(usize),
    /// Underlying arithmetic error.
    Math(cham_math::MathError),
    /// An operation that needs noise headroom would exceed the budget.
    NoiseBudgetExhausted,
}

impl fmt::Display for HeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            HeError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            HeError::Incompatible(m) => write!(f, "incompatible operands: {m}"),
            HeError::MissingGaloisKey(k) => {
                write!(f, "missing galois key for automorphism index {k}")
            }
            HeError::Math(e) => write!(f, "math error: {e}"),
            HeError::NoiseBudgetExhausted => write!(f, "noise budget exhausted"),
        }
    }
}

impl Error for HeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cham_math::MathError> for HeError {
    fn from(e: cham_math::MathError) -> Self {
        HeError::Math(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HeError>;
