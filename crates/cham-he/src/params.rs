//! CHAM encryption parameters (paper §II-F).
//!
//! The paper fixes `N = 4096` with a 109-bit modulus chain: two 35-bit(*)
//! ciphertext primes `q0, q1` and one 39-bit special prime `p` reserved for
//! key-switching and the dot-product rescale. All three have Hamming
//! weight 3, so the FPGA reduces products with three shift-adds.
//!
//! (*) the published primes are actually 34.01 and 38.00 bits; the paper
//! rounds. We use the exact published values.
//!
//! A ciphertext is 2 polynomials × 2 limbs (4 polys), or 6 when augmented
//! with `p`; a plaintext is 2, or 3 augmented — the parallelism the compute
//! engine exploits (§III-A).

use crate::{HeError, Result};
use cham_math::modulus::{Modulus, Q0, Q1, SPECIAL_P};
use cham_math::primality::is_prime;
use cham_math::rns::RnsContext;

/// Default plaintext modulus: the Fermat prime `2^16 + 1`.
///
/// Odd (so the packing payload factor `2^h` is invertible mod `t`) and
/// `≡ 1 (mod 2N)` (so the batch-encoding baseline of §II-E has `N` slots).
pub const DEFAULT_PLAIN_MODULUS: u64 = 65537;

/// Paper ring degree.
pub const DEFAULT_DEGREE: usize = 4096;

/// Complete parameter set for the CHAM scheme.
///
/// Use [`ChamParams::cham_default`] for the paper's published parameters or
/// [`ChamParamsBuilder`] for reduced test/bench sets.
///
/// # Example
/// ```
/// use cham_he::params::ChamParams;
/// let params = ChamParams::cham_default()?;
/// assert_eq!(params.degree(), 4096);
/// assert_eq!(params.ciphertext_context().len(), 2);
/// assert_eq!(params.augmented_context().len(), 3);
/// # Ok::<(), cham_he::HeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChamParams {
    degree: usize,
    plain_modulus: Modulus,
    ct_ctx: RnsContext,
    aug_ctx: RnsContext,
    special_prime: u64,
}

impl ChamParams {
    /// The paper's parameter set: `N = 4096`,
    /// `(q0, q1, p) = (2^34+2^27+1, 2^34+2^19+1, 2^38+2^23+1)`, `t = 65537`.
    ///
    /// # Errors
    /// Never fails for the built-in constants; the `Result` mirrors the
    /// builder API.
    pub fn cham_default() -> Result<Self> {
        ChamParamsBuilder::new().build()
    }

    /// A reduced parameter set (`N = 256`) with the same modulus chain, for
    /// fast unit tests. **Not secure** — test/bench use only.
    ///
    /// # Errors
    /// Never fails for the built-in constants.
    pub fn insecure_test_default() -> Result<Self> {
        ChamParamsBuilder::new().degree(256).build()
    }

    /// A larger set (`N = 8192`, same hardware-friendly chain — all three
    /// primes are `≡ 1 mod 2^14`) for workloads that want more noise
    /// headroom or longer vectors per ciphertext. Security rises to
    /// >192 bits at the same modulus.
    ///
    /// # Errors
    /// Never fails for the built-in constants.
    pub fn cham_large() -> Result<Self> {
        ChamParamsBuilder::new().degree(8192).build()
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Plaintext modulus `t`.
    #[inline]
    pub fn plain_modulus(&self) -> &Modulus {
        &self.plain_modulus
    }

    /// RNS context of normal-form ciphertexts (`{q0, q1}`).
    #[inline]
    pub fn ciphertext_context(&self) -> &RnsContext {
        &self.ct_ctx
    }

    /// RNS context of augmented ciphertexts (`{q0, q1, p}`).
    #[inline]
    pub fn augmented_context(&self) -> &RnsContext {
        &self.aug_ctx
    }

    /// The special prime `p`.
    #[inline]
    pub fn special_prime(&self) -> u64 {
        self.special_prime
    }

    /// `Q = q0·q1` as an integer.
    #[inline]
    pub fn q_product(&self) -> u128 {
        self.ct_ctx.modulus_product()
    }

    /// `⌊Q/t⌋`, the plaintext scale of normal-form ciphertexts.
    #[inline]
    pub fn delta(&self) -> u128 {
        self.q_product() / self.plain_modulus.value() as u128
    }

    /// `⌊Qp/t⌋`, the plaintext scale of augmented ciphertexts.
    #[inline]
    pub fn delta_augmented(&self) -> u128 {
        self.aug_ctx.modulus_product() / self.plain_modulus.value() as u128
    }

    /// Total ciphertext modulus bits (the paper's "109 bit" figure:
    /// 34 + 34.3 + 38 ≈ 106–109 depending on rounding convention).
    pub fn total_modulus_bits(&self) -> u32 {
        128 - self.aug_ctx.modulus_product().leading_zeros()
    }

    /// Maximum packing depth: `log2 N` levels pack up to `N` LWE
    /// ciphertexts into one RLWE ciphertext.
    #[inline]
    pub fn max_pack_log(&self) -> u32 {
        self.degree.trailing_zeros()
    }

    /// Conservative classical-security estimate in bits, from the
    /// homomorphicencryption.org standard's ternary-secret table
    /// (λ = 128/192/256 rows), linearly interpolated in `log2 Q` and
    /// floored at zero for out-of-table chains. The *total* modulus
    /// (including the key-switching prime) is what the attacker sees.
    ///
    /// The paper's set — `N = 4096`, `log2(Q·p) ≈ 106` — lands at ≈131
    /// bits, consistent with §II-F's "required security level".
    pub fn estimated_security_bits(&self) -> u32 {
        // (N, max log2 Q) rows for λ = 128, 192, 256 (HE standard, ternary).
        const TABLE: [(usize, [u32; 3]); 5] = [
            (1024, [27, 19, 14]),
            (2048, [54, 37, 29]),
            (4096, [109, 75, 58]),
            (8192, [218, 152, 118]),
            (16384, [438, 305, 237]),
        ];
        let logq = self.total_modulus_bits();
        let row = match TABLE.iter().find(|(n, _)| *n >= self.degree) {
            Some((_, caps)) => caps,
            // Degrees above the table: extrapolate from the largest row
            // (security only grows with N at fixed log Q).
            None => &TABLE[TABLE.len() - 1].1,
        };
        // Below the tightest cap → at least 256; above the loosest → scale
        // 128 down linearly with the overshoot.
        if logq <= row[2] {
            return 256;
        }
        if logq <= row[1] {
            return 192;
        }
        if logq <= row[0] {
            // Interpolate between 192 (at row[1]) and 128 (at row[0]).
            let span = (row[0] - row[1]) as f64;
            let frac = (row[0] - logq) as f64 / span;
            return (128.0 + frac * 64.0) as u32;
        }
        // Over the 128-bit cap: degrade proportionally.
        let deficit = logq as f64 / row[0] as f64;
        (128.0 / deficit) as u32
    }
}

/// Builder for [`ChamParams`] (C-BUILDER).
///
/// # Example
/// ```
/// use cham_he::params::ChamParamsBuilder;
/// let params = ChamParamsBuilder::new()
///     .degree(512)
///     .plain_modulus(65537)
///     .build()?;
/// assert_eq!(params.degree(), 512);
/// # Ok::<(), cham_he::HeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChamParamsBuilder {
    degree: usize,
    plain_modulus: u64,
    ct_primes: Vec<u64>,
    special_prime: u64,
}

impl Default for ChamParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChamParamsBuilder {
    /// Starts from the paper defaults.
    pub fn new() -> Self {
        Self {
            degree: DEFAULT_DEGREE,
            plain_modulus: DEFAULT_PLAIN_MODULUS,
            ct_primes: vec![Q0, Q1],
            special_prime: SPECIAL_P,
        }
    }

    /// Sets the ring degree (power of two).
    pub fn degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Sets the plaintext modulus.
    pub fn plain_modulus(mut self, t: u64) -> Self {
        self.plain_modulus = t;
        self
    }

    /// Sets the ciphertext prime chain (without the special prime).
    pub fn ciphertext_primes(mut self, primes: &[u64]) -> Self {
        self.ct_primes = primes.to_vec();
        self
    }

    /// Sets the special (key-switching) prime.
    pub fn special_prime(mut self, p: u64) -> Self {
        self.special_prime = p;
        self
    }

    /// Validates and builds the parameter set.
    ///
    /// # Errors
    /// * [`HeError::InvalidParams`] for a non-power-of-two degree, a
    ///   plaintext modulus that is even / ≥ any ciphertext prime / too
    ///   small, non-prime chain entries, a special prime that repeats a
    ///   ciphertext prime, or a special prime smaller than the largest
    ///   ciphertext prime (the hybrid key-switch bound).
    /// * Math-layer errors when a prime cannot host the required NTT.
    pub fn build(self) -> Result<ChamParams> {
        if !self.degree.is_power_of_two() || self.degree < 8 {
            return Err(HeError::InvalidParams("degree must be a power of two >= 8"));
        }
        if self.plain_modulus < 2 || self.plain_modulus.is_multiple_of(2) {
            return Err(HeError::InvalidParams(
                "plaintext modulus must be an odd integer >= 3 (odd so packing scale factors are invertible)",
            ));
        }
        if self.ct_primes.is_empty() {
            return Err(HeError::InvalidParams("ciphertext prime chain is empty"));
        }
        for &q in &self.ct_primes {
            if !is_prime(q) {
                return Err(HeError::InvalidParams("ciphertext modulus is not prime"));
            }
            if self.plain_modulus >= q {
                return Err(HeError::InvalidParams(
                    "plaintext modulus must be smaller than every ciphertext prime",
                ));
            }
        }
        if !is_prime(self.special_prime) {
            return Err(HeError::InvalidParams("special modulus is not prime"));
        }
        if self.ct_primes.contains(&self.special_prime) {
            return Err(HeError::InvalidParams(
                "special modulus must differ from the ciphertext primes",
            ));
        }
        let max_ct = *self.ct_primes.iter().max().expect("non-empty");
        if self.special_prime < max_ct {
            return Err(HeError::InvalidParams(
                "special modulus must be at least as large as the largest ciphertext prime (hybrid key-switch noise bound)",
            ));
        }
        let ct_ctx = RnsContext::new(self.degree, &self.ct_primes)?;
        let mut aug = self.ct_primes.clone();
        aug.push(self.special_prime);
        let aug_ctx = RnsContext::new(self.degree, &aug)?;
        Ok(ChamParams {
            degree: self.degree,
            plain_modulus: Modulus::new(self.plain_modulus)?,
            ct_ctx,
            aug_ctx,
            special_prime: self.special_prime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = ChamParams::cham_default().unwrap();
        assert_eq!(p.degree(), 4096);
        assert_eq!(p.plain_modulus().value(), 65537);
        assert_eq!(p.special_prime(), SPECIAL_P);
        assert_eq!(p.ciphertext_context().len(), 2);
        assert_eq!(p.augmented_context().len(), 3);
        // "This corresponds to a space of 109 bit" — q0(34.01) + q1(34.00)
        // + p(38.00) ≈ 106.0; the paper quotes nominal widths 35+35+39.
        let bits = p.total_modulus_bits();
        assert!((105..=110).contains(&bits), "bits={bits}");
        assert_eq!(p.max_pack_log(), 12);
    }

    #[test]
    fn delta_scales() {
        let p = ChamParams::insecure_test_default().unwrap();
        let d = p.delta();
        let da = p.delta_augmented();
        // delta_aug / delta ≈ p
        let ratio = da / d;
        let sp = p.special_prime() as u128;
        assert!(ratio >= sp - 1 && ratio <= sp + 1, "ratio={ratio}");
    }

    #[test]
    fn builder_validation() {
        assert!(ChamParamsBuilder::new().degree(100).build().is_err());
        assert!(ChamParamsBuilder::new().degree(4).build().is_err());
        assert!(ChamParamsBuilder::new()
            .plain_modulus(65536)
            .build()
            .is_err()); // even
        assert!(ChamParamsBuilder::new().plain_modulus(1).build().is_err());
        assert!(ChamParamsBuilder::new()
            .ciphertext_primes(&[Q0, Q1 + 2])
            .build()
            .is_err()); // not prime
        assert!(ChamParamsBuilder::new().special_prime(Q0).build().is_err()); // repeats a ciphertext prime
        assert!(ChamParamsBuilder::new()
            .ciphertext_primes(&[SPECIAL_P])
            .special_prime(Q0)
            .build()
            .is_err()); // special smaller than ct prime
        assert!(ChamParamsBuilder::new().plain_modulus(Q0).build().is_err()); // t >= q
        assert!(ChamParamsBuilder::new()
            .ciphertext_primes(&[])
            .build()
            .is_err());
    }

    #[test]
    fn large_preset_works() {
        let p = ChamParams::cham_large().unwrap();
        assert_eq!(p.degree(), 8192);
        assert_eq!(p.max_pack_log(), 13);
        assert!(
            p.estimated_security_bits() >= 192,
            "{}",
            p.estimated_security_bits()
        );
    }

    #[test]
    fn security_estimate_brackets() {
        let p = ChamParams::cham_default().unwrap();
        // N = 4096 at ~106 bits total: ≥128-bit classical per the standard.
        let bits = p.estimated_security_bits();
        assert!((128..=200).contains(&bits), "bits={bits}");
        // The reduced test set is insecure by construction.
        let tiny = ChamParams::insecure_test_default().unwrap();
        assert!(
            tiny.estimated_security_bits() < 40,
            "{}",
            tiny.estimated_security_bits()
        );
    }

    #[test]
    fn reduced_degree_builds() {
        for n in [8usize, 64, 1024] {
            let p = ChamParamsBuilder::new().degree(n).build().unwrap();
            assert_eq!(p.degree(), n);
        }
    }
}
