//! Analytic noise estimator.
//!
//! Predicts worst-case-style invariant-noise bounds for each pipeline
//! operation, so callers can validate a parameter/workload combination
//! *before* running it (the production deployment concern behind §II-F's
//! parameter-selection discussion). The estimates are deliberately
//! conservative upper bounds; tests check that the exact measured noise
//! (from [`crate::encrypt::Decryptor::decrypt_with_noise`]) never exceeds
//! them on random instances.

use crate::params::ChamParams;
use cham_math::sampling::DEFAULT_CBD_K;

/// Conservative per-operation noise bounds, in absolute invariant-noise
/// units (`|e|` such that decryption is correct while `|e| < Q/(2t)`).
#[derive(Debug, Clone, Copy)]
pub struct NoiseEstimator {
    n: f64,
    t: f64,
    q: f64,
    p: f64,
    /// Bound on fresh noise coefficients (CBD tail).
    fresh_bound: f64,
    /// Bound on secret-key 1-norm (ternary: ≤ N).
    sk_norm: f64,
}

impl NoiseEstimator {
    /// Builds an estimator for a parameter set.
    pub fn new(params: &ChamParams) -> Self {
        Self {
            n: params.degree() as f64,
            t: params.plain_modulus().value() as f64,
            q: params.q_product() as f64,
            p: params.special_prime() as f64,
            fresh_bound: DEFAULT_CBD_K as f64,
            sk_norm: params.degree() as f64,
        }
    }

    /// Correctness ceiling: decryption works while noise stays below this.
    pub fn ceiling(&self) -> f64 {
        self.q / (2.0 * self.t)
    }

    /// The scale-rounding term: with `Δ = ⌊Q/t⌋`, the invariant noise of
    /// any ciphertext carries up to `(Q mod t)·μ/t < t` on top of the RLWE
    /// noise. Every bound below includes it.
    fn rounding(&self) -> f64 {
        self.t
    }

    /// Fresh symmetric encryption.
    pub fn fresh(&self) -> f64 {
        self.fresh_bound + self.rounding()
    }

    /// Fresh public-key encryption (`b·u + e0 + a·u·s + e1` with ternary
    /// `u`): `≈ N·B + 2B`.
    pub fn fresh_pk(&self) -> f64 {
        self.n * self.fresh_bound + 2.0 * self.fresh_bound + self.rounding()
    }

    /// After multiplying by a plaintext with centred coefficients
    /// (`‖pt‖∞ ≤ t/2`): noise scales by `N·t/2`.
    pub fn after_mul_plain(&self, input: f64) -> f64 {
        let out = input * self.n * self.t / 2.0 + self.rounding();
        crate::telemetry::record_estimate_mul_plain(input, out);
        out
    }

    /// After rescaling by the special prime: divided by `p` plus the
    /// rounding terms `≈ (1 + ‖s‖₁)/2` and the scale remainder.
    pub fn after_rescale(&self, input: f64) -> f64 {
        let out = input / self.p + (1.0 + self.sk_norm) / 2.0 + self.rounding();
        crate::telemetry::record_estimate_rescale(input, out);
        out
    }

    /// Additive noise of one key-switch: digit magnitudes `< q_i`, noise
    /// `B`, `N` cross terms, divided by `p`, plus rounding.
    pub fn keyswitch_additive(&self) -> f64 {
        let q_max = 2f64.powi(35); // largest ciphertext prime < 2^35
        let digits = 2.0;
        let out = digits * q_max * self.n * self.fresh_bound / self.p
            + (1.0 + self.sk_norm) / 2.0
            + self.rounding();
        crate::telemetry::record_estimate_keyswitch(out);
        out
    }

    /// After packing `2^levels` ciphertexts of bound `input`: each level
    /// doubles the payload noise and adds one key-switch.
    pub fn after_pack(&self, input: f64, levels: u32) -> f64 {
        let mut e = input;
        for _ in 0..levels {
            e = 2.0 * e + self.keyswitch_additive();
        }
        crate::telemetry::record_estimate_pack(input, e);
        e
    }

    /// Full-pipeline bound for an HMVP with `col_tiles` column tiles and
    /// `2^pack_levels` packed rows.
    pub fn hmvp_bound(&self, col_tiles: usize, pack_levels: u32) -> f64 {
        let dot = self.after_mul_plain(self.fresh_pk()) * col_tiles as f64;
        let rescaled = self.after_rescale(dot);
        self.after_pack(rescaled, pack_levels)
    }

    /// True when the HMVP bound stays under the ceiling — the parameter
    /// validation a deployment runs before admitting a workload shape.
    pub fn hmvp_is_safe(&self, col_tiles: usize, pack_levels: u32) -> bool {
        self.hmvp_bound(col_tiles, pack_levels) < self.ceiling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::CoeffEncoder;
    use crate::encrypt::{Decryptor, Encryptor, PublicKey};
    use crate::hmvp::{Hmvp, Matrix};
    use crate::keys::{GaloisKeys, SecretKey};
    use rand::{Rng, SeedableRng};

    fn setup() -> (
        ChamParams,
        SecretKey,
        Encryptor,
        Decryptor,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        (params, sk, enc, dec, rng)
    }

    /// Measured |e| from the noise meter, in absolute units.
    fn measured(dec: &Decryptor, ct: &crate::ciphertext::RlweCiphertext) -> f64 {
        let r = dec.decrypt_with_noise(ct);
        2f64.powf(r.noise_bits)
    }

    #[test]
    fn fresh_bounds_hold() {
        let (params, sk, enc, dec, mut rng) = setup();
        let est = NoiseEstimator::new(&params);
        let coder = CoeffEncoder::new(&params);
        let pk = PublicKey::generate(&sk, &mut rng);
        for _ in 0..10 {
            let pt = coder.encode_vector(&[rng.gen_range(0..65537u64)]).unwrap();
            let sym = enc.encrypt(&pt, &mut rng);
            assert!(measured(&dec, &sym) <= est.fresh(), "symmetric");
            let asym = enc.encrypt_with_pk(&pk, &pt, &mut rng).unwrap();
            assert!(measured(&dec, &asym) <= est.fresh_pk(), "public-key");
        }
    }

    #[test]
    fn mul_and_rescale_bounds_hold() {
        let (params, _, enc, dec, mut rng) = setup();
        let est = NoiseEstimator::new(&params);
        let coder = CoeffEncoder::new(&params);
        let t = params.plain_modulus().value();
        let n = params.degree();
        for _ in 0..5 {
            let row: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
            let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
            let ct = enc.encrypt_augmented(&coder.encode_vector(&v).unwrap(), &mut rng);
            let prod =
                crate::ops::mul_plain(&ct, &coder.encode_row(&row).unwrap(), &params).unwrap();
            // The augmented basis has its own (larger) ceiling; compare in
            // the normal basis after rescale, where the estimator lives.
            let rescaled = crate::ops::rescale(&prod, &params).unwrap();
            let bound = est.after_rescale(est.after_mul_plain(est.fresh()));
            assert!(
                measured(&dec, &rescaled) <= bound,
                "measured {} > bound {}",
                measured(&dec, &rescaled),
                bound
            );
        }
    }

    #[test]
    fn hmvp_pipeline_bound_holds() {
        let (params, sk, enc, dec, mut rng) = setup();
        let est = NoiseEstimator::new(&params);
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        let t = params.plain_modulus().value();
        let n = params.degree();
        // m == N so every output coefficient is a payload (the noise meter
        // measures all coefficients; partially-filled packs carry garbage
        // in the gaps, which is data, not noise).
        let m = n;
        let a = Matrix::random(m, n, t, &mut rng);
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let hmvp = Hmvp::new(&params);
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let result = hmvp.multiply(&em, &cts, &gkeys).unwrap();
        let levels = (m as f64).log2().ceil() as u32;
        let bound = est.hmvp_bound(1, levels);
        let got = measured(&dec, &result.packed[0].ciphertext);
        assert!(got <= bound, "measured {got} > bound {bound}");
        assert!(est.hmvp_is_safe(1, levels));
    }

    #[test]
    fn safety_check_rejects_absurd_depth() {
        let (params, ..) = setup();
        let est = NoiseEstimator::new(&params);
        // Enough doubling levels eventually exceed the ceiling.
        assert!(!est.hmvp_is_safe(1, 60));
    }

    #[test]
    fn ceiling_matches_params() {
        let (params, ..) = setup();
        let est = NoiseEstimator::new(&params);
        let expected = params.q_product() as f64 / (2.0 * params.plain_modulus().value() as f64);
        assert!((est.ceiling() - expected).abs() / expected < 1e-12);
    }
}
