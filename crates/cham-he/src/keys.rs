//! Key material: secret keys, RNS key-switch keys, and Galois keys.
//!
//! Key-switching follows the hybrid/GHS construction the paper's special
//! modulus implies (§II-F: "the other 39 bit is used as a special modulus
//! for key-switching"):
//!
//! * the ciphertext basis `Q = q0·q1` is *augmented* to `Q·p`,
//! * the digit decomposition is the RNS decomposition (one digit per
//!   ciphertext prime),
//! * digit `i`'s gadget constant is `g_i = p·(Q/q_i)·[(Q/q_i)^{-1}]_{q_i}`,
//!   which satisfies `g_i ≡ p (mod q_i)`, `g_i ≡ 0 (mod q_j, j≠i)` and
//!   `g_i ≡ 0 (mod p)` — so key-switch output rescales by `p` back to `Q`
//!   with only additive noise `≈ (Σ_i ‖d_i·e_i‖)/p`.

use crate::params::ChamParams;
use crate::{HeError, Result};
use cham_math::rns::RnsPoly;
use cham_math::sampling::{noise_rns_poly, ternary_rns_poly, uniform_rns_poly};
use rand::Rng;
use std::collections::HashMap;

/// An RLWE secret key: ternary coefficients embedded into both the normal
/// and augmented bases (coefficient and NTT forms are derived on demand).
#[derive(Debug, Clone)]
pub struct SecretKey {
    params: ChamParams,
    /// Signed ternary coefficients — the canonical representation.
    coeffs: Vec<i64>,
    /// NTT-form embeddings, cached for fast phase computation.
    s_ct_ntt: RnsPoly,
    s_aug_ntt: RnsPoly,
}

impl SecretKey {
    /// Samples a fresh ternary secret key.
    pub fn generate<R: Rng + ?Sized>(params: &ChamParams, rng: &mut R) -> Self {
        let (_, coeffs) = ternary_rns_poly(params.ciphertext_context(), rng);
        Self::from_coeffs(params, coeffs).expect("sampled coefficients have the right length")
    }

    /// Rebuilds a secret key from stored ternary coefficients.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when the length differs from the degree;
    /// [`HeError::InvalidParams`] when any coefficient is outside
    /// `{−1, 0, 1}`.
    pub fn from_coeffs(params: &ChamParams, coeffs: Vec<i64>) -> Result<Self> {
        if coeffs.len() != params.degree() {
            return Err(HeError::ShapeMismatch {
                expected: params.degree(),
                got: coeffs.len(),
            });
        }
        if coeffs.iter().any(|&c| !(-1..=1).contains(&c)) {
            return Err(HeError::InvalidParams("secret key must be ternary"));
        }
        let mut s_ct = RnsPoly::from_signed(params.ciphertext_context(), &coeffs)?;
        let mut s_aug = RnsPoly::from_signed(params.augmented_context(), &coeffs)?;
        s_ct.to_ntt();
        s_aug.to_ntt();
        Ok(Self {
            params: params.clone(),
            coeffs,
            s_ct_ntt: s_ct,
            s_aug_ntt: s_aug,
        })
    }

    /// The parameter set the key belongs to.
    #[inline]
    pub fn params(&self) -> &ChamParams {
        &self.params
    }

    /// The ternary coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// NTT-form embedding over the normal ciphertext basis.
    #[inline]
    pub(crate) fn s_ct_ntt(&self) -> &RnsPoly {
        &self.s_ct_ntt
    }

    /// NTT-form embedding over the augmented basis.
    #[inline]
    pub(crate) fn s_aug_ntt(&self) -> &RnsPoly {
        &self.s_aug_ntt
    }

    /// The coefficients of `s²` in the negacyclic ring (bounded by `N` for
    /// a ternary secret) — the "old key" a relinearisation key switches
    /// away from.
    pub fn squared_coeffs(&self) -> Vec<i64> {
        let n = self.params.degree();
        let s = &self.coeffs;
        let mut s2 = vec![0i64; n];
        for i in 0..n {
            if s[i] == 0 {
                continue;
            }
            for j in 0..n {
                let k = i + j;
                let prod = s[i] * s[j];
                if k < n {
                    s2[k] += prod;
                } else {
                    s2[k - n] -= prod;
                }
            }
        }
        s2
    }

    /// The secret key after the Galois map `X → X^k` — the "old key" a
    /// Galois key switches away from.
    ///
    /// # Errors
    /// [`HeError::Math`] for even `k`.
    pub fn automorphed_coeffs(&self, k: usize) -> Result<Vec<i64>> {
        if k.is_multiple_of(2) {
            return Err(HeError::Math(cham_math::MathError::InvalidParameter(
                "automorphism index must be odd",
            )));
        }
        let n = self.params.degree();
        let mut out = vec![0i64; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            let ik = i * k;
            let pos = ik % n;
            out[pos] = if (ik / n).is_multiple_of(2) { c } else { -c };
        }
        Ok(out)
    }
}

/// A key-switch key from some "old" key to the owner's key: one RLWE pair
/// per RNS digit, stored over the augmented basis in NTT form.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// `b_i = −(a_i·s + e_i) + g_i·s_old`, NTT form, augmented basis.
    pub(crate) b: Vec<RnsPoly>,
    /// Uniform `a_i`, NTT form, augmented basis.
    pub(crate) a: Vec<RnsPoly>,
}

impl KeySwitchKey {
    /// Generates a key-switch key from `s_old` (given as signed
    /// coefficients) to `sk`.
    ///
    /// # Errors
    /// [`HeError::ShapeMismatch`] when `s_old` has the wrong length.
    pub fn generate<R: Rng + ?Sized>(sk: &SecretKey, s_old: &[i64], rng: &mut R) -> Result<Self> {
        let params = sk.params();
        if s_old.len() != params.degree() {
            return Err(HeError::ShapeMismatch {
                expected: params.degree(),
                got: s_old.len(),
            });
        }
        let aug = params.augmented_context();
        let ct = params.ciphertext_context();
        let digits = ct.len();
        let mut s_old_aug = RnsPoly::from_signed(aug, s_old)?;
        s_old_aug.to_ntt();

        let mut bs = Vec::with_capacity(digits);
        let mut as_ = Vec::with_capacity(digits);
        for i in 0..digits {
            // Gadget g_i: residue vector (0,…, p mod q_i, …, 0 | 0).
            let p = params.special_prime();
            let mut g_residues = vec![0u64; aug.len()];
            g_residues[i] = aug.moduli()[i].reduce(p);
            // g_i·s_old in NTT form: scale limb i of s_old by p, zero others.
            let mut g_s = RnsPoly::zero(aug);
            g_s.to_ntt(); // zero is zero in either form; set the form flag
            {
                let limbs = g_s.limbs_mut();
                let m = aug.moduli()[i];
                let src = &s_old_aug.limbs()[i];
                limbs[i] = src.mul_scalar(g_residues[i], &m);
            }
            let mut a_i = uniform_rns_poly(aug, rng);
            a_i.to_ntt();
            let mut e_i = noise_rns_poly(aug, rng);
            e_i.to_ntt();
            // b_i = -(a_i*s) + e_i + g_i*s_old
            let a_s = a_i.mul_pointwise(sk.s_aug_ntt())?;
            let b_i = g_s.add(&e_i)?.sub(&a_s)?;
            bs.push(b_i);
            as_.push(a_i);
        }
        Ok(Self { b: bs, a: as_ })
    }

    /// Number of RNS digits.
    #[inline]
    pub fn digit_count(&self) -> usize {
        self.b.len()
    }
}

/// A set of key-switch keys for Galois automorphisms, keyed by the
/// automorphism index `k` (odd, in `[3, 2N)`).
///
/// `PACKLWES` over `2^h` ciphertexts needs the indices
/// `{2^j + 1 : 1 ≤ j ≤ h}`; [`GaloisKeys::generate_for_packing`] creates
/// exactly those.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    keys: HashMap<usize, KeySwitchKey>,
}

impl GaloisKeys {
    /// An empty key set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates keys for the given automorphism indices.
    ///
    /// # Errors
    /// Propagates invalid (even) indices from the automorphism map.
    pub fn generate<R: Rng + ?Sized>(
        sk: &SecretKey,
        indices: &[usize],
        rng: &mut R,
    ) -> Result<Self> {
        let mut keys = HashMap::new();
        for &k in indices {
            let s_k = sk.automorphed_coeffs(k)?;
            keys.insert(k, KeySwitchKey::generate(sk, &s_k, rng)?);
        }
        Ok(Self { keys })
    }

    /// Generates the keys `σ_{2^j+1}` needed to pack up to `2^max_log` LWE
    /// ciphertexts (paper Alg. 3 recursion depth).
    ///
    /// # Errors
    /// Propagates generation failures.
    pub fn generate_for_packing<R: Rng + ?Sized>(
        sk: &SecretKey,
        max_log: u32,
        rng: &mut R,
    ) -> Result<Self> {
        let indices: Vec<usize> = (1..=max_log).map(|j| (1usize << j) + 1).collect();
        Self::generate(sk, &indices, rng)
    }

    /// Fetches the key for automorphism index `k`.
    ///
    /// # Errors
    /// [`HeError::MissingGaloisKey`] when absent.
    pub fn get(&self, k: usize) -> Result<&KeySwitchKey> {
        self.keys.get(&k).ok_or(HeError::MissingGaloisKey(k))
    }

    /// True when a key for index `k` is present.
    pub fn contains(&self, k: usize) -> bool {
        self.keys.contains_key(&k)
    }

    /// Inserts a key for index `k` (replacing any previous one).
    pub fn insert(&mut self, k: usize, key: KeySwitchKey) {
        self.keys.insert(k, key);
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (ChamParams, SecretKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        (params, sk, rng)
    }

    #[test]
    fn secret_key_is_ternary() {
        let (_, sk, _) = setup();
        assert!(sk.coeffs().iter().all(|&c| (-1..=1).contains(&c)));
        assert_eq!(sk.coeffs().len(), 256);
    }

    #[test]
    fn from_coeffs_validation() {
        let (params, _, _) = setup();
        assert!(SecretKey::from_coeffs(&params, vec![0; 8]).is_err());
        assert!(SecretKey::from_coeffs(&params, vec![2; 256]).is_err());
        assert!(SecretKey::from_coeffs(&params, vec![1; 256]).is_ok());
    }

    #[test]
    fn automorphed_key_matches_poly_automorph() {
        let (params, sk, _) = setup();
        let n = params.degree();
        for k in [3usize, 5, 2 * n - 1] {
            let sk_k = sk.automorphed_coeffs(k).unwrap();
            // Compare against the Poly automorphism on the first limb.
            let m = params.ciphertext_context().moduli()[0];
            let s_poly = cham_math::poly::Poly::from_signed(sk.coeffs(), &m);
            let expect = s_poly.automorph(k, &m).unwrap();
            let got = cham_math::poly::Poly::from_signed(&sk_k, &m);
            assert_eq!(got, expect, "k={k}");
        }
        assert!(sk.automorphed_coeffs(2).is_err());
    }

    #[test]
    fn galois_keys_lookup() {
        let (_, sk, mut rng) = setup();
        let keys = GaloisKeys::generate_for_packing(&sk, 3, &mut rng).unwrap();
        assert_eq!(keys.len(), 3);
        for k in [3usize, 5, 9] {
            assert!(keys.contains(k), "k={k}");
            assert!(keys.get(k).is_ok());
        }
        assert!(matches!(keys.get(17), Err(HeError::MissingGaloisKey(17))));
        assert_eq!(keys.get(3).unwrap().digit_count(), 2);
    }

    #[test]
    fn ksk_phase_encodes_gadget_times_old_key() {
        // b_i + a_i*s should equal g_i*s_old + e_i, with e_i small.
        let (params, sk, mut rng) = setup();
        let s_old: Vec<i64> = sk.automorphed_coeffs(3).unwrap();
        let ksk = KeySwitchKey::generate(&sk, &s_old, &mut rng).unwrap();
        let aug = params.augmented_context();
        for i in 0..ksk.digit_count() {
            let phase_ntt = ksk.b[i]
                .add(&ksk.a[i].mul_pointwise(sk.s_aug_ntt()).unwrap())
                .unwrap();
            let mut phase = phase_ntt;
            phase.to_coeff();
            // Subtract g_i*s_old: limb i gets p*s_old, other limbs 0.
            let p = params.special_prime();
            let mut g_s = RnsPoly::zero(aug);
            {
                let m = aug.moduli()[i];
                let s_old_p = cham_math::poly::Poly::from_signed(&s_old, &m);
                g_s.limbs_mut()[i] = s_old_p.mul_scalar(m.reduce(p), &m);
            }
            let e = phase.sub(&g_s).unwrap();
            // Residual must be a *small* CRT-consistent value (the noise).
            let norm = e.small_inf_norm();
            assert!(norm < 64, "digit {i}: noise norm {norm}");
            // And CRT-consistent smallness: every limb must agree.
            for j in 0..params.degree() {
                let c0 = aug.moduli()[0].center(e.limbs()[0].coeffs()[j]);
                for l in 1..aug.len() {
                    let cl = aug.moduli()[l].center(e.limbs()[l].coeffs()[j]);
                    assert_eq!(c0, cl, "digit {i} coeff {j} limb {l}");
                }
            }
        }
    }
}
