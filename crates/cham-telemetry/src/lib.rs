//! # cham-telemetry — the observability substrate
//!
//! Every other crate in the workspace reports *what it actually did*
//! through this one: how many NTTs ran and over which modulus, how many
//! modular multiplies an HMVP cost, how long each pipeline phase took,
//! and what a whole benchmark run looked like. Three primitives:
//!
//! * **Counters** ([`counter_add!`]) — process-wide relaxed atomics named
//!   `<crate>.<module>.<op>`, e.g. `cham_math.ntt.forward`.
//! * **Histograms + scoped timers** ([`time_scope!`]) — RAII spans that
//!   record wall-time into log₂ latency histograms and maintain a
//!   thread-local span stack; with runtime tracing enabled they also emit
//!   Chrome Trace Event Format (Perfetto) complete events.
//! * **Exporters** — a human text report ([`report::text_report`]), a JSON
//!   metrics dump, Chrome trace JSON ([`trace`]), and the structured
//!   benchmark [`record::RunRecord`] schema that `cham-bench --json`
//!   binaries emit.
//! * **Request tracing** ([`span`], [`flight`]) — per-request trace IDs
//!   and phase recorders plus a bounded flight recorder of recent
//!   request traces. Unlike the process-wide machinery these are *not*
//!   feature-gated: ID propagation and the serving stack's phase
//!   breakdown are product surfaces, and their cost is opt-in per
//!   request at runtime rather than per build.
//!
//! Everything hot is gated behind the `telemetry` cargo feature. With the
//! feature **disabled** (the default) the recording hooks are inlined
//! empty functions — zero branches, zero atomics — so production/bench
//! builds pay nothing. With it **enabled** the cost is one relaxed
//! `fetch_add` per hook, and instrumented code batches increments (e.g.
//! one add per transform, not per butterfly) to keep the tax small.
//!
//! Naming convention: `<crate>.<module>.<op>[.<qualifier>]`, all
//! lower-snake segments joined by dots. Qualifiers name a modulus
//! (`.q0`/`.q1`/`.p`) or a strategy (`.barrett`/`.shift_add`).

#![warn(missing_docs)]

pub mod counters;
pub mod flight;
pub mod fmt;
pub mod histogram;
pub mod json;
pub mod record;
pub mod report;
pub mod span;
pub mod timer;
pub mod trace;

pub use counters::Counter;
pub use flight::FlightRecorder;
pub use histogram::{Histogram, LiveHistogram};
pub use json::JsonValue;
pub use record::RunRecord;
pub use span::{Span, SpanRecorder, TraceId};
pub use timer::ScopedTimer;

/// `true` when the crate was compiled with the `telemetry` feature.
#[inline]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Resets all registered counters and histograms to zero and clears any
/// buffered runtime trace events. Intended for tests and for isolating
/// phases of a benchmark run.
pub fn reset() {
    counters::reset();
    histogram::reset();
    trace::clear();
}

/// Adds `$n` to the process-wide counter named `$name`.
///
/// The name must be a string literal (`<crate>.<module>.<op>`). Compiles
/// to an inlined no-op without the `telemetry` feature; the count
/// expression is still type-checked but its value is discarded.
///
/// ```
/// cham_telemetry::counter_add!("cham_math.ntt.forward", 1);
/// ```
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {{
        static __CHAM_COUNTER: $crate::counters::Counter = $crate::counters::Counter::new($name);
        __CHAM_COUNTER.add($n);
    }};
}

/// Opens an RAII timing span covering the rest of the enclosing scope.
///
/// Records the span's wall time into a log₂ histogram named `$name`, and
/// (when runtime tracing is enabled via [`trace::enable`]) emits a Chrome
/// trace complete event. No-op without the `telemetry` feature.
///
/// ```
/// # fn transform() {}
/// {
///     cham_telemetry::time_scope!("cham_math.ntt.forward");
///     transform();
/// } // span closes here
/// ```
#[macro_export]
macro_rules! time_scope {
    ($name:literal) => {
        let __cham_scope_timer = {
            static __CHAM_HIST: $crate::histogram::Histogram =
                $crate::histogram::Histogram::new($name);
            $crate::timer::ScopedTimer::new(&__CHAM_HIST)
        };
    };
}

/// Serialises unit tests that mutate the process-wide registries.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_matches_feature() {
        assert_eq!(super::enabled(), cfg!(feature = "telemetry"));
    }

    #[test]
    fn macros_compile_under_both_features() {
        let _guard = crate::test_guard();
        crate::counter_add!("cham_telemetry.test.macro_compiles", 2);
        {
            crate::time_scope!("cham_telemetry.test.scope");
            std::hint::black_box(1 + 1);
        }
        crate::reset();
    }
}
