//! Exporters over the counter/histogram registries: a human-readable
//! text report and a JSON metrics dump.

use crate::fmt::eng_nanos;
use crate::json::JsonValue;

/// Formats a histogram value in its native unit.
fn fmt_value(v: u64, unit: &str) -> String {
    if unit == "ns" {
        eng_nanos(v)
    } else {
        format!("{v} {unit}")
    }
}
use crate::{counters, histogram};
use std::fmt::Write as _;

/// Renders every registered counter and histogram as an aligned text
/// table (the `telemetry report` a binary prints on exit).
#[must_use]
pub fn text_report() -> String {
    let counters = counters::snapshot();
    let hists = histogram::snapshot();
    let mut out = String::new();
    if counters.is_empty() && hists.is_empty() {
        out.push_str("telemetry: no data recorded");
        out.push('\n');
        if !crate::enabled() {
            out.push_str("(build with `--features telemetry` to record counters and timers)\n");
        }
        return out;
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "== counters ==");
        let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &counters {
            let _ = writeln!(
                out,
                "{name:<width$}  {value:>16}  ({})",
                crate::fmt::si(*value as f64)
            );
        }
    }
    if !hists.is_empty() {
        let _ = writeln!(out, "== timers ==");
        let width = hists.iter().map(|h| h.name.len()).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<width$}  {:>10} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "mean", "p50<=", "p95<=", "max"
        );
        for h in &hists {
            let _ = writeln!(
                out,
                "{:<width$}  {:>10} {:>12} {:>12} {:>12} {:>12}",
                h.name,
                h.count,
                fmt_value(h.mean_nanos() as u64, h.unit),
                fmt_value(h.quantile_upper_nanos(0.5), h.unit),
                fmt_value(h.quantile_upper_nanos(0.95), h.unit),
                fmt_value(if h.count == 0 { 0 } else { h.max_nanos }, h.unit),
            );
        }
    }
    out
}

/// Counter snapshot as a JSON object (`{"name": value, ...}`).
#[must_use]
pub fn counters_json() -> JsonValue {
    JsonValue::Object(
        counters::snapshot()
            .into_iter()
            .map(|(name, value)| (name.to_string(), JsonValue::UInt(value)))
            .collect(),
    )
}

/// Histogram snapshots as a JSON object keyed by span name, each entry
/// carrying count/sum/min/max/mean and quantile upper bounds in ns.
#[must_use]
pub fn histograms_json() -> JsonValue {
    JsonValue::Object(
        histogram::snapshot()
            .into_iter()
            .map(|h| {
                let entry = JsonValue::Object(vec![
                    ("unit".into(), JsonValue::from(h.unit)),
                    ("count".into(), JsonValue::UInt(h.count)),
                    ("sum".into(), JsonValue::UInt(h.sum_nanos)),
                    (
                        "min".into(),
                        JsonValue::UInt(if h.count == 0 { 0 } else { h.min_nanos }),
                    ),
                    ("max".into(), JsonValue::UInt(h.max_nanos)),
                    ("mean".into(), JsonValue::Float(h.mean_nanos())),
                    (
                        "p50_upper".into(),
                        JsonValue::UInt(h.quantile_upper_nanos(0.5)),
                    ),
                    (
                        "p95_upper".into(),
                        JsonValue::UInt(h.quantile_upper_nanos(0.95)),
                    ),
                ]);
                (h.name.to_string(), entry)
            })
            .collect(),
    )
}

/// Full metrics dump: `{"counters": {...}, "timers": {...}}`.
#[must_use]
pub fn metrics_json() -> JsonValue {
    JsonValue::Object(vec![
        ("counters".into(), counters_json()),
        ("timers".into(), histograms_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_with_and_without_data() {
        let _guard = crate::test_guard();
        crate::reset();
        crate::counter_add!("cham_telemetry.report.test_counter", 5);
        {
            crate::time_scope!("cham_telemetry.report.test_span");
            std::hint::black_box(0);
        }
        let text = text_report();
        let json = metrics_json().to_string();
        if crate::enabled() {
            assert!(text.contains("cham_telemetry.report.test_counter"));
            assert!(text.contains("== timers =="));
            assert!(json.contains("\"cham_telemetry.report.test_counter\":5"));
            assert!(json.contains("p50_upper"));
            assert!(json.contains("\"unit\":\"ns\""));
        } else {
            assert!(text.contains("no data recorded"));
            assert!(json.contains("\"counters\":{}"));
        }
    }
}
