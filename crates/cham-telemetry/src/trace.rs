//! Chrome Trace Event Format (Perfetto) export.
//!
//! Two producers share one output format:
//!
//! * the **runtime collector** — scoped timers append complete events
//!   while tracing is [`enable`]d, one track per OS thread;
//! * **synthetic traces** — `cham-sim` converts its cycle-accurate Gantt
//!   schedule into a [`ChromeTrace`] directly, one track per pipeline
//!   stage.
//!
//! The emitted JSON is the `{"traceEvents": [...]}` object form of the
//! [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! and loads in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::json::JsonValue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One event destined for the `traceEvents` array.
#[derive(Debug, Clone)]
enum Event {
    Complete {
        name: String,
        cat: String,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, JsonValue)>,
    },
    ThreadName {
        tid: u64,
        name: String,
    },
}

/// An in-memory Chrome trace being assembled.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a track (`tid`) — shown as the row label in Perfetto.
    pub fn thread_name(&mut self, tid: u64, name: impl Into<String>) -> &mut Self {
        self.events.push(Event::ThreadName {
            tid,
            name: name.into(),
        });
        self
    }

    /// Adds a complete ("X") event on track `tid`.
    pub fn complete(
        &mut self,
        tid: u64,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, JsonValue)>,
    ) -> &mut Self {
        self.events.push(Event::Complete {
            name: name.into(),
            cat: cat.into(),
            tid,
            ts_us,
            dur_us,
            args,
        });
        self
    }

    /// Number of events recorded so far (metadata included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace as Chrome Trace Event JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let events: Vec<JsonValue> = self
            .events
            .iter()
            .map(|e| match e {
                Event::Complete {
                    name,
                    cat,
                    tid,
                    ts_us,
                    dur_us,
                    args,
                } => {
                    let mut obj = vec![
                        ("name".into(), JsonValue::from(name.as_str())),
                        ("cat".into(), JsonValue::from(cat.as_str())),
                        ("ph".into(), JsonValue::from("X")),
                        ("pid".into(), JsonValue::UInt(1)),
                        ("tid".into(), JsonValue::UInt(*tid)),
                        ("ts".into(), JsonValue::Float(*ts_us)),
                        ("dur".into(), JsonValue::Float(*dur_us)),
                    ];
                    if !args.is_empty() {
                        obj.push(("args".into(), JsonValue::Object(args.clone())));
                    }
                    JsonValue::Object(obj)
                }
                Event::ThreadName { tid, name } => JsonValue::Object(vec![
                    ("name".into(), JsonValue::from("thread_name")),
                    ("ph".into(), JsonValue::from("M")),
                    ("pid".into(), JsonValue::UInt(1)),
                    ("tid".into(), JsonValue::UInt(*tid)),
                    (
                        "args".into(),
                        JsonValue::Object(vec![("name".into(), JsonValue::from(name.as_str()))]),
                    ),
                ]),
            })
            .collect();
        JsonValue::Object(vec![
            ("traceEvents".into(), JsonValue::Array(events)),
            ("displayTimeUnit".into(), JsonValue::from("ns")),
        ])
        .to_string()
    }

    /// Writes the trace JSON to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One event read back from a Chrome-trace JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadEvent {
    /// Event name.
    pub name: String,
    /// Category (`cat`), empty for metadata events.
    pub cat: String,
    /// Phase character (`"X"` complete, `"M"` metadata, ...).
    pub ph: String,
    /// Track id.
    pub tid: u64,
    /// Start microseconds (0 for metadata events).
    pub ts_us: f64,
    /// Duration microseconds (0 for metadata events).
    pub dur_us: f64,
}

/// Parses Chrome Trace Event JSON (the object form this module writes)
/// back into its events — the read half of the round-trip that CI uses
/// to prove dumped flight-recorder traces are loadable.
///
/// # Errors
/// A human-readable description of the first structural problem: bad
/// JSON, a missing `traceEvents` array, or an event missing a required
/// field.
pub fn read_chrome_trace(json: &str) -> Result<Vec<ReadEvent>, String> {
    let doc = JsonValue::parse(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let (ts_us, dur_us) = if ph == "X" {
            (
                ev.get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: complete event missing ts"))?,
                ev.get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: complete event missing dur"))?,
            )
        } else {
            (0.0, 0.0)
        };
        out.push(ReadEvent {
            name: name.to_string(),
            cat: ev
                .get("cat")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            ph: ph.to_string(),
            tid,
            ts_us,
            dur_us,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Runtime collector (fed by ScopedTimer drops).
// ---------------------------------------------------------------------------

/// A span captured at runtime by a scoped timer.
#[derive(Debug, Clone, Copy)]
struct RuntimeSpan {
    name: &'static str,
    parent: Option<&'static str>,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    depth: usize,
}

/// Hard cap on buffered runtime spans (~64 B each) so a forgotten
/// `enable()` cannot grow memory without bound.
const MAX_RUNTIME_SPANS: usize = 1 << 20;

static TRACING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn spans() -> &'static Mutex<Vec<RuntimeSpan>> {
    static SPANS: OnceLock<Mutex<Vec<RuntimeSpan>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Starts buffering runtime span events (idempotent). Call before the
/// region of interest; export with [`export_chrome_trace`].
pub fn enable() {
    let _ = epoch();
    TRACING.store(true, Ordering::Release);
}

/// Stops buffering runtime span events (buffered events are kept).
pub fn disable() {
    TRACING.store(false, Ordering::Release);
}

/// `true` while the runtime collector accepts events.
#[must_use]
pub fn is_enabled() -> bool {
    TRACING.load(Ordering::Acquire)
}

/// Discards buffered runtime events.
pub fn clear() {
    spans().lock().expect("trace buffer poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Number of spans dropped because the runtime buffer was full.
#[must_use]
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Called by [`crate::timer::ScopedTimer`] on drop.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
pub(crate) fn record_span(
    name: &'static str,
    start: Instant,
    dur: Duration,
    depth: usize,
    parent: Option<&'static str>,
) {
    if !is_enabled() {
        return;
    }
    let ts_us = start
        .checked_duration_since(epoch())
        .unwrap_or(Duration::ZERO)
        .as_secs_f64()
        * 1e6;
    let span = RuntimeSpan {
        name,
        parent,
        tid: current_tid(),
        ts_us,
        dur_us: dur.as_secs_f64() * 1e6,
        depth,
    };
    let mut buf = spans().lock().expect("trace buffer poisoned");
    if buf.len() >= MAX_RUNTIME_SPANS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.push(span);
}

/// Builds a [`ChromeTrace`] from the buffered runtime spans (one track
/// per thread) and returns its JSON. Empty-but-valid JSON when nothing
/// was collected.
#[must_use]
pub fn export_chrome_trace() -> String {
    let buf = spans().lock().expect("trace buffer poisoned");
    let mut trace = ChromeTrace::new();
    let mut tids: Vec<u64> = buf.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        trace.thread_name(tid, format!("thread-{tid}"));
    }
    for s in buf.iter() {
        let mut args = vec![("depth".into(), JsonValue::UInt(s.depth as u64))];
        if let Some(parent) = s.parent {
            args.push(("parent".into(), JsonValue::from(parent)));
        }
        trace.complete(s.tid, s.name, "span", s.ts_us, s.dur_us, args);
    }
    trace.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_renders_valid_shape() {
        let mut t = ChromeTrace::new();
        t.thread_name(1, "NTT");
        t.complete(
            1,
            "row 0",
            "stage",
            0.0,
            20.48,
            vec![("row".into(), JsonValue::UInt(0))],
        );
        t.complete(1, "row \"1\"", "stage", 20.48, 20.48, vec![]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        // Escaped quote from the event name survives round-tripping.
        assert!(json.contains("row \\\"1\\\""));
    }

    #[test]
    fn reader_round_trips_writer_output() {
        let mut t = ChromeTrace::new();
        t.thread_name(3, "worker");
        t.complete(
            3,
            "dot",
            "phase",
            12.5,
            100.0,
            vec![("count".into(), JsonValue::UInt(4))],
        );
        let events = read_chrome_trace(&t.to_json()).expect("round-trip");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ph, "M");
        assert_eq!(events[0].name, "thread_name");
        let x = &events[1];
        assert_eq!(
            (x.ph.as_str(), x.name.as_str(), x.cat.as_str()),
            ("X", "dot", "phase")
        );
        assert_eq!(x.tid, 3);
        assert!((x.ts_us - 12.5).abs() < 1e-9 && (x.dur_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reader_rejects_malformed_traces() {
        assert!(read_chrome_trace("not json").is_err());
        assert!(read_chrome_trace("{}").is_err());
        assert!(read_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(
            read_chrome_trace(r#"{"traceEvents":[{"name":"a","ph":"X","tid":1,"ts":0}]}"#).is_err()
        );
    }

    #[test]
    fn runtime_collector_gates_on_enable() {
        let _guard = crate::test_guard();
        clear();
        disable();
        record_span("t.off", Instant::now(), Duration::from_micros(5), 0, None);
        assert!(export_chrome_trace().contains("\"traceEvents\":[]"));
        enable();
        record_span(
            "t.on",
            Instant::now(),
            Duration::from_micros(5),
            1,
            Some("t.parent"),
        );
        disable();
        let json = export_chrome_trace();
        assert!(json.contains("t.on"));
        assert!(json.contains("t.parent"));
        assert_eq!(dropped_spans(), 0);
        clear();
    }
}
