//! Process-wide named counters.
//!
//! Each [`counter_add!`](crate::counter_add) call site owns one static
//! [`Counter`]; the first increment registers it in a global registry so
//! exporters can enumerate every counter the process has ever touched.
//! Increments are relaxed atomics — counts are exact, ordering between
//! counters is not guaranteed (nor needed for op accounting).

#[cfg(feature = "telemetry")]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A named monotonically increasing counter.
///
/// Construct via [`Counter::new`] in a `static` (the
/// [`counter_add!`](crate::counter_add) macro does this for you).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    #[cfg(feature = "telemetry")]
    registered: AtomicBool,
}

impl Counter {
    /// Creates a counter named `name` (`<crate>.<module>.<op>`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`. Inlined no-op without the `telemetry` feature.
    #[inline]
    pub fn add(&'static self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && !self.registered.swap(true, Ordering::AcqRel)
            {
                registry()
                    .lock()
                    .expect("counter registry poisoned")
                    .push(self);
            }
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

fn registry() -> &'static Mutex<Vec<&'static Counter>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot of every registered counter, sorted by name.
///
/// Counters that were never incremented in this process do not appear
/// (registration happens on first increment). Empty when the `telemetry`
/// feature is off.
#[must_use]
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = registry()
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect();
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

/// Zeroes every registered counter (keeps registrations).
pub fn reset() {
    for c in registry().lock().expect("counter registry poisoned").iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _guard = crate::test_guard();
        static C: Counter = Counter::new("cham_telemetry.counters.test_unit");
        C.add(3);
        C.add(4);
        if crate::enabled() {
            assert_eq!(C.get(), 7);
            let snap = snapshot();
            assert!(snap
                .iter()
                .any(|&(n, v)| n == "cham_telemetry.counters.test_unit" && v >= 7));
        } else {
            assert_eq!(C.get(), 0);
            assert!(snapshot().is_empty());
        }
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _guard = crate::test_guard();
        static C: Counter = Counter::new("cham_telemetry.counters.test_reset");
        C.add(10);
        reset();
        assert_eq!(C.get(), 0);
        if crate::enabled() {
            assert!(snapshot()
                .iter()
                .any(|&(n, v)| n == "cham_telemetry.counters.test_reset" && v == 0));
        }
    }
}
