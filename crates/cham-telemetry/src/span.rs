//! Request-scoped tracing: trace IDs, phase spans, and per-request
//! recorders.
//!
//! Process-wide counters and histograms answer *"how slow is phase X on
//! average"*; this module answers *"where did **this** request's time
//! go"*. The design splits the always-on from the optional:
//!
//! * **ID propagation is feature-gate-free.** A [`TraceId`] is a plain
//!   `u64` that travels over the wire and through thread hops; carrying
//!   it costs a copy. Likewise the [`SpanRecorder`] machinery is always
//!   compiled — the serving stack's `Introspect` phase breakdown is a
//!   product surface, not a debugging aid.
//! * **Cost is opt-in per request.** A [`Span`] only reads the clock
//!   when the current thread has a recorder installed
//!   ([`with_recorder`]); with none installed (every non-serving code
//!   path, and every request nobody is tracing) constructing and
//!   dropping a `Span` is one thread-local `Option` check.
//! * **Global histogram timing stays behind the `telemetry` feature**
//!   (the existing [`crate::time_scope!`] machinery) — this module does
//!   not replace it, it rides alongside.
//!
//! ## Aggregation model
//!
//! Kernel phases execute many times per request (one `dot` span per
//! matrix row) and — when intra-request parallelism is on — on several
//! pool workers at once, so raw start/end pairs would interleave and
//! overlap. The recorder therefore **aggregates durations by phase
//! name** (insertion-ordered, bounded), and [`SpanRecorder::finish`]
//! lays the aggregated phases out *sequentially* on a cumulative
//! timeline. The resulting [`RequestTrace`](crate::flight::RequestTrace)
//! phases are monotonic and non-overlapping by construction; under
//! serial per-request execution (the server default) their sum matches
//! the real elapsed time.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical phase names, in request order. Shared by the server, the
/// kernel annotations, and the introspection consumers so the breakdown
/// keys agree everywhere.
pub mod phase {
    /// Waiting in the scheduler's bounded queue.
    pub const QUEUE: &str = "queue";
    /// Batch coalescing and pre-execution setup in the worker.
    pub const BATCH: &str = "batch";
    /// NTT-encoding (lifting) the request's input ciphertexts.
    pub const ENCODE: &str = "encode";
    /// Fused NTT-domain multiply-accumulate over matrix rows.
    pub const DOT: &str = "dot";
    /// Galois key-switching during LWE packing.
    pub const KEYSWITCH: &str = "keyswitch";
    /// Rescale + coefficient extraction per output row.
    pub const RESCALE: &str = "rescale";
    /// Serializing and writing the reply frame.
    pub const SERIALIZE: &str = "serialize";

    /// Every phase a server-side request trace may contain, in
    /// canonical (pipeline) order.
    pub const ALL: [&str; 7] = [QUEUE, BATCH, ENCODE, DOT, KEYSWITCH, RESCALE, SERIALIZE];
}

/// A request's wire-visible identity: non-zero, random.
///
/// Zero is the wire encoding for "unset" (a v3 client that does not
/// care), so [`TraceId::generate`] never returns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Draws a fresh process-unique id (SplitMix64 over a seeded
    /// counter; never zero).
    #[must_use]
    pub fn generate() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
        let mut z = NEXT.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self(if z == 0 { 1 } else { z })
    }

    /// Wire value (`0` never appears; see [`TraceId::from_wire`]).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Decodes a wire value: `0` means the sender left the id unset.
    #[must_use]
    pub fn from_wire(raw: u64) -> Option<Self> {
        (raw != 0).then_some(Self(raw))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// One aggregated phase inside a finished request trace: durations of
/// all same-named spans summed, laid out sequentially by `finish`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (one of [`phase::ALL`] for server traces).
    pub name: &'static str,
    /// Offset from the request trace's start, nanoseconds.
    pub start_ns: u64,
    /// Aggregated duration, nanoseconds.
    pub dur_ns: u64,
    /// Number of raw spans folded into this phase.
    pub count: u64,
}

/// Cap on distinct phase names one recorder will hold; protects against
/// a caller generating names dynamically.
const MAX_PHASES: usize = 16;

#[derive(Debug, Default)]
struct RecorderInner {
    /// (name, total duration ns, span count), insertion-ordered.
    phases: Vec<(&'static str, u64, u64)>,
    overflow: u64,
}

/// Accumulates phase durations for one request.
///
/// Cloned (via `Arc`) across every thread that touches the request —
/// the connection thread, the scheduler, the batch worker, and any pool
/// workers it fans out to — and folded into a [`Vec<PhaseSpan>`] once
/// by [`SpanRecorder::finish`].
#[derive(Debug)]
pub struct SpanRecorder {
    trace_id: TraceId,
    inner: Mutex<RecorderInner>,
}

impl SpanRecorder {
    /// A fresh recorder for `trace_id`.
    #[must_use]
    pub fn new(trace_id: TraceId) -> Self {
        Self {
            trace_id,
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// The request's trace id.
    #[must_use]
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Folds `dur_ns` into the phase named `name`.
    pub fn record(&self, name: &'static str, dur_ns: u64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = inner.phases.iter_mut().find(|(n, _, _)| *n == name) {
            entry.1 = entry.1.saturating_add(dur_ns);
            entry.2 += 1;
        } else if inner.phases.len() < MAX_PHASES {
            inner.phases.push((name, dur_ns, 1));
        } else {
            inner.overflow += 1;
        }
    }

    /// Spans dropped because more than [`MAX_PHASES`] distinct names
    /// were recorded.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .overflow
    }

    /// Lays the aggregated phases out on a sequential cumulative
    /// timeline (first-recorded first), guaranteeing monotonic,
    /// non-overlapping `start_ns` regardless of how the raw spans
    /// interleaved across threads.
    #[must_use]
    pub fn finish(&self) -> Vec<PhaseSpan> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut cursor = 0u64;
        inner
            .phases
            .iter()
            .map(|&(name, dur_ns, count)| {
                let span = PhaseSpan {
                    name,
                    start_ns: cursor,
                    dur_ns,
                    count,
                };
                cursor = cursor.saturating_add(dur_ns);
                span
            })
            .collect()
    }

    /// Sum of all recorded phase durations, nanoseconds.
    #[must_use]
    pub fn total_recorded_ns(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .phases
            .iter()
            .fold(0u64, |acc, &(_, d, _)| acc.saturating_add(d))
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<SpanRecorder>>> = const { RefCell::new(None) };
}

/// Runs `f` with `recorder` installed as the current thread's recorder
/// (restoring the previous one after), so [`Span`]s opened inside
/// attribute to it.
pub fn with_recorder<R>(recorder: Arc<SpanRecorder>, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(recorder));
    struct Restore(Option<Arc<SpanRecorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Runs `f` with `recorder` installed when it is `Some`, plain
/// otherwise. The form worker pools use to forward a spawner's context.
pub fn with_maybe<R>(recorder: Option<Arc<SpanRecorder>>, f: impl FnOnce() -> R) -> R {
    match recorder {
        Some(rec) => with_recorder(rec, f),
        None => f(),
    }
}

/// The current thread's installed recorder, if any.
#[must_use]
pub fn current_recorder() -> Option<Arc<SpanRecorder>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Captures the current recorder for handoff to another thread — named
/// for its one call site pattern: capture at spawn, re-install in the
/// spawned task via [`with_maybe`].
#[must_use]
pub fn propagate() -> Option<Arc<SpanRecorder>> {
    current_recorder()
}

/// An RAII phase span: times from construction to drop and folds the
/// duration into the current thread's recorder.
///
/// When no recorder is installed the constructor does not even read the
/// clock — the cost on untraced paths is one thread-local check.
#[derive(Debug)]
pub struct Span {
    state: Option<(Arc<SpanRecorder>, &'static str, Instant)>,
}

impl Span {
    /// Opens a span for phase `name` against the current recorder.
    #[inline]
    #[must_use]
    pub fn enter(name: &'static str) -> Self {
        let state = CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .map(|rec| (Arc::clone(rec), name, Instant::now()))
        });
        Self { state }
    }

    /// `true` when this span is actually recording.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((rec, name, start)) = self.state.take() {
            let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.record(name, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a.as_u64(), 0);
        assert_ne!(a, b);
        assert_eq!(TraceId::from_wire(0), None);
        assert_eq!(TraceId::from_wire(7), Some(TraceId(7)));
        assert_eq!(format!("{}", TraceId(0xab)), "0x00000000000000ab");
    }

    #[test]
    fn spans_require_an_installed_recorder() {
        assert!(current_recorder().is_none());
        let s = Span::enter(phase::DOT);
        assert!(!s.is_recording());
        drop(s);

        let rec = Arc::new(SpanRecorder::new(TraceId::generate()));
        with_recorder(Arc::clone(&rec), || {
            assert!(current_recorder().is_some());
            let s = Span::enter(phase::DOT);
            assert!(s.is_recording());
        });
        assert!(current_recorder().is_none());
        assert_eq!(rec.finish().len(), 1);
        assert_eq!(rec.finish()[0].name, phase::DOT);
    }

    #[test]
    fn recorder_aggregates_by_name_and_finishes_sequentially() {
        let rec = SpanRecorder::new(TraceId(1));
        rec.record(phase::ENCODE, 10);
        rec.record(phase::DOT, 5);
        rec.record(phase::DOT, 7);
        rec.record(phase::RESCALE, 3);
        let spans = rec.finish();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans[0],
            PhaseSpan {
                name: phase::ENCODE,
                start_ns: 0,
                dur_ns: 10,
                count: 1
            }
        );
        assert_eq!(
            spans[1],
            PhaseSpan {
                name: phase::DOT,
                start_ns: 10,
                dur_ns: 12,
                count: 2
            }
        );
        assert_eq!(
            spans[2],
            PhaseSpan {
                name: phase::RESCALE,
                start_ns: 22,
                dur_ns: 3,
                count: 1
            }
        );
        // Monotonic, non-overlapping by construction.
        for w in spans.windows(2) {
            assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
        }
        assert_eq!(rec.total_recorded_ns(), 25);
        assert_eq!(rec.overflow(), 0);
    }

    #[test]
    fn nested_installs_restore_the_outer_recorder() {
        let outer = Arc::new(SpanRecorder::new(TraceId(2)));
        let inner = Arc::new(SpanRecorder::new(TraceId(3)));
        with_recorder(Arc::clone(&outer), || {
            with_recorder(Arc::clone(&inner), || {
                assert_eq!(current_recorder().unwrap().trace_id(), TraceId(3));
            });
            assert_eq!(current_recorder().unwrap().trace_id(), TraceId(2));
        });
        assert!(current_recorder().is_none());
    }

    #[test]
    fn propagate_hands_off_across_threads() {
        let rec = Arc::new(SpanRecorder::new(TraceId(4)));
        let captured = with_recorder(Arc::clone(&rec), propagate);
        std::thread::spawn(move || {
            with_maybe(captured, || {
                rec_span_once();
            });
        })
        .join()
        .unwrap();
        assert_eq!(rec.finish().len(), 1);

        fn rec_span_once() {
            let _s = Span::enter(phase::KEYSWITCH);
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn phase_name_overflow_is_bounded() {
        let rec = SpanRecorder::new(TraceId(5));
        const NAMES: [&str; 20] = [
            "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9", "p10", "p11", "p12", "p13",
            "p14", "p15", "p16", "p17", "p18", "p19",
        ];
        for name in NAMES {
            rec.record(name, 1);
        }
        assert_eq!(rec.finish().len(), MAX_PHASES);
        assert_eq!(rec.overflow(), (NAMES.len() - MAX_PHASES) as u64);
    }
}
