//! Human-number formatting helpers.
//!
//! The single home of the `eng`/`si` formatters (previously duplicated
//! into `cham-bench`): every text report and benchmark table in the
//! workspace renders durations and rates through these two functions.

/// Formats a duration in seconds with engineering-style units
/// (`1.500 s`, `2.500 ms`, `3.500 us`, `4.500 ns`).
#[must_use]
pub fn eng(v: f64) -> String {
    let (scale, unit) = if v >= 1.0 {
        (1.0, "s")
    } else if v >= 1e-3 {
        (1e3, "ms")
    } else if v >= 1e-6 {
        (1e6, "us")
    } else {
        (1e9, "ns")
    };
    format!("{:.3} {}", v * scale, unit)
}

/// Formats a rate/count with SI prefixes (`2.50 T`, `195.31 k`,
/// `42.00 `).
#[must_use]
pub fn si(v: f64) -> String {
    if v >= 1e12 {
        format!("{:.2} T", v / 1e12)
    } else if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

/// [`eng`] over a nanosecond count (telemetry histograms store ns).
#[must_use]
pub fn eng_nanos(nanos: u64) -> String {
    eng(nanos as f64 * 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(eng(1.5), "1.500 s");
        assert_eq!(eng(2.5e-3), "2.500 ms");
        assert_eq!(eng(3.5e-6), "3.500 us");
        assert_eq!(eng(4.5e-9), "4.500 ns");
        assert_eq!(si(2.5e12), "2.50 T");
        assert_eq!(si(195_312.5), "195.31 k");
        assert_eq!(si(42.0), "42.00 ");
        assert_eq!(eng_nanos(2_500_000), "2.500 ms");
    }
}
