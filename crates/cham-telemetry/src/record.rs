//! Structured benchmark run records.
//!
//! Every `cham-bench` binary can emit one [`RunRecord`] per run via
//! `--json <path>`: who ran (git SHA, rustc, CPU, threads), with what
//! (parameter set), and what happened (wall time, named metrics, the
//! full telemetry counter and timer snapshot). The schema is documented
//! in `DESIGN.md` § Observability; records are pretty-printed JSON so
//! consecutive runs diff cleanly.

use crate::json::JsonValue;
use crate::report;
use std::process::Command;
use std::time::Instant;

/// Runs `cmd args...` and returns trimmed stdout on success.
fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// `git rev-parse HEAD` of the working directory, or `"unknown"`.
#[must_use]
pub fn git_sha() -> String {
    capture("git", &["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".to_string())
}

/// `rustc --version`, or `"unknown"`.
#[must_use]
pub fn rustc_version() -> String {
    capture("rustc", &["--version"]).unwrap_or_else(|| "unknown".to_string())
}

/// CPU model from `/proc/cpuinfo` (first `model name` line), or
/// `"unknown"` on platforms without procfs.
#[must_use]
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Logical CPU count visible to this process.
#[must_use]
pub fn thread_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One structured benchmark run: environment, parameters, results, and
/// the telemetry snapshot at the moment [`RunRecord::finish`] (or
/// serialisation) was called.
#[derive(Debug)]
pub struct RunRecord {
    name: String,
    git_sha: String,
    rustc_version: String,
    cpu_model: String,
    threads: usize,
    telemetry_enabled: bool,
    params: Vec<(String, JsonValue)>,
    metrics: Vec<(String, JsonValue)>,
    started: Instant,
    wall_seconds: Option<f64>,
}

impl RunRecord {
    /// Starts a record for the benchmark `name`, capturing the
    /// environment now and starting the wall clock.
    #[must_use]
    pub fn start(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            git_sha: git_sha(),
            rustc_version: rustc_version(),
            cpu_model: cpu_model(),
            threads: thread_count(),
            telemetry_enabled: crate::enabled(),
            params: Vec::new(),
            metrics: Vec::new(),
            started: Instant::now(),
            wall_seconds: None,
        }
    }

    /// Records an input parameter (e.g. `n`, `rows`, `modulus_bits`).
    pub fn param(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Records a result metric (e.g. `hmvp_ms`, `speedup`).
    pub fn metric(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        self.metrics.push((key.into(), value.into()));
        self
    }

    /// Stops the wall clock. Serialising without calling this uses the
    /// elapsed time at serialisation instead.
    pub fn finish(&mut self) -> &mut Self {
        self.wall_seconds = Some(self.started.elapsed().as_secs_f64());
        self
    }

    /// Renders the record, embedding the current telemetry counter and
    /// timer snapshots.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let wall = self
            .wall_seconds
            .unwrap_or_else(|| self.started.elapsed().as_secs_f64());
        JsonValue::Object(vec![
            ("schema".into(), JsonValue::from("cham-run-record/v1")),
            ("name".into(), JsonValue::from(self.name.as_str())),
            ("git_sha".into(), JsonValue::from(self.git_sha.as_str())),
            (
                "rustc_version".into(),
                JsonValue::from(self.rustc_version.as_str()),
            ),
            ("cpu_model".into(), JsonValue::from(self.cpu_model.as_str())),
            ("threads".into(), JsonValue::from(self.threads)),
            (
                "telemetry_enabled".into(),
                JsonValue::Bool(self.telemetry_enabled),
            ),
            ("params".into(), JsonValue::Object(self.params.clone())),
            ("wall_seconds".into(), JsonValue::Float(wall)),
            ("metrics".into(), JsonValue::Object(self.metrics.clone())),
            ("counters".into(), report::counters_json()),
            ("timers".into(), report::histograms_json()),
        ])
    }

    /// Writes the record as pretty JSON to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_captures_environment_and_fields() {
        let _guard = crate::test_guard();
        crate::reset();
        crate::counter_add!("cham_telemetry.record.test_counter", 3);
        let mut rec = RunRecord::start("unit_test");
        rec.param("n", 4096u64).param("label", "cham");
        rec.metric("answer", 42u64).metric("ratio", 1.25f64);
        rec.finish();
        let json = rec.to_json().to_string();
        assert!(json.contains("\"schema\":\"cham-run-record/v1\""));
        assert!(json.contains("\"name\":\"unit_test\""));
        assert!(json.contains("\"git_sha\":\""));
        assert!(json.contains("\"rustc_version\":\""));
        assert!(json.contains("\"cpu_model\":\""));
        assert!(json.contains("\"threads\":"));
        assert!(json.contains("\"n\":4096"));
        assert!(json.contains("\"answer\":42"));
        assert!(json.contains("\"wall_seconds\":"));
        if crate::enabled() {
            assert!(json.contains("\"cham_telemetry.record.test_counter\":3"));
        }
        assert!(rec.threads >= 1);
        crate::reset();
    }
}
