//! RAII scoped timers with a thread-local span stack.
//!
//! A [`ScopedTimer`] measures the wall time between its construction and
//! drop, records it into its [`Histogram`], and — while runtime tracing
//! is enabled ([`crate::trace::enable`]) — emits a Chrome trace complete
//! event on the current thread's track. Spans nest: each thread keeps a
//! stack of open span names, so an exported trace shows `encrypt` and
//! the `ntt.forward` calls inside it as nested slices, and the recorded
//! trace event carries its depth and parent span.

use crate::histogram::Histogram;
#[cfg(feature = "telemetry")]
use std::cell::RefCell;
#[cfg(feature = "telemetry")]
use std::time::Instant;

#[cfg(feature = "telemetry")]
thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Number of spans currently open on this thread (0 when the `telemetry`
/// feature is off).
#[must_use]
pub fn span_depth() -> usize {
    #[cfg(feature = "telemetry")]
    {
        SPAN_STACK.with(|s| s.borrow().len())
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Name of the innermost open span on this thread, if any.
#[must_use]
pub fn current_span() -> Option<&'static str> {
    #[cfg(feature = "telemetry")]
    {
        SPAN_STACK.with(|s| s.borrow().last().copied())
    }
    #[cfg(not(feature = "telemetry"))]
    None
}

/// An RAII span: times from construction to drop.
///
/// Usually created via [`time_scope!`](crate::time_scope), which supplies
/// the per-call-site static histogram.
#[derive(Debug)]
pub struct ScopedTimer {
    #[cfg(feature = "telemetry")]
    hist: &'static Histogram,
    #[cfg(feature = "telemetry")]
    start: Instant,
    #[cfg(feature = "telemetry")]
    parent: Option<&'static str>,
    #[cfg(not(feature = "telemetry"))]
    _empty: (),
}

impl ScopedTimer {
    /// Opens a span recording into `hist` (named after the span).
    #[inline]
    #[must_use]
    pub fn new(hist: &'static Histogram) -> Self {
        #[cfg(feature = "telemetry")]
        {
            let parent = current_span();
            SPAN_STACK.with(|s| s.borrow_mut().push(hist.name()));
            Self {
                hist,
                start: Instant::now(),
                parent,
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = hist;
            Self { _empty: () }
        }
    }
}

#[cfg(feature = "telemetry")]
impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(nanos);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.hist.name()));
            stack.pop();
        });
        let depth = span_depth();
        crate::trace::record_span(self.hist.name(), self.start, elapsed, depth, self.parent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let _guard = crate::test_guard();
        static OUTER: Histogram = Histogram::new("cham_telemetry.timer.test_outer");
        static INNER: Histogram = Histogram::new("cham_telemetry.timer.test_inner");
        assert_eq!(span_depth(), 0);
        {
            let _outer = ScopedTimer::new(&OUTER);
            if crate::enabled() {
                assert_eq!(span_depth(), 1);
                assert_eq!(current_span(), Some("cham_telemetry.timer.test_outer"));
            }
            {
                let _inner = ScopedTimer::new(&INNER);
                if crate::enabled() {
                    assert_eq!(span_depth(), 2);
                }
                std::hint::black_box(42);
            }
            if crate::enabled() {
                assert_eq!(span_depth(), 1);
            }
        }
        assert_eq!(span_depth(), 0);
        if crate::enabled() {
            assert_eq!(OUTER.snapshot().count, 1);
            assert_eq!(INNER.snapshot().count, 1);
        }
    }
}
