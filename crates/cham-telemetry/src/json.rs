//! A dependency-free JSON value, writer, and parser.
//!
//! The build environment cannot fetch `serde_json`, and the telemetry
//! crate's needs are write-mostly (metric dumps, trace files, run
//! records), so this module provides a small owned [`JsonValue`] tree
//! with compact and pretty rendering. Object key order is preserved as
//! inserted (deliberate: run records diff cleanly). [`JsonValue::parse`]
//! reads documents back — used to validate that emitted traces and
//! introspection snapshots round-trip.

use std::fmt::Write as _;

/// An owned JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An ordered key→value map.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation rustc provides.
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a dot; that is still valid
        // JSON (a number), so leave it.
    } else {
        out.push_str("null");
    }
}

impl JsonValue {
    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => write_float(out, *v),
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + STEP {
                        out.push(' ');
                    }
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push(']');
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + STEP {
                        out.push(' ');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Renders with two-space indentation (trailing newline included).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document.
    ///
    /// Integers that fit `u64`/`i64` parse as [`JsonValue::UInt`] /
    /// [`JsonValue::Int`]; everything else numeric parses as
    /// [`JsonValue::Float`]. Object key order is preserved as read.
    ///
    /// # Errors
    /// A static description of the first syntax error, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up `key` when `self` is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents when `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric view (`UInt`/`Int`/`Float`) as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// A non-negative integer view as `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

/// Where and why [`JsonValue::parse`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Static description of the problem.
    pub message: &'static str,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting depth bound so adversarial inputs cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: one following \uXXXX low half.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

impl std::fmt::Display for JsonValue {
    /// Compact rendering (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::UInt(1)),
            (
                "b".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("c".into(), JsonValue::from("x\"y\n")),
            ("d".into(), JsonValue::Float(1.5)),
            ("e".into(), JsonValue::Int(-3)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":[null,true],"c":"x\"y\n","d":1.5,"e":-3}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented_and_reparses_shape() {
        let v = JsonValue::Object(vec![
            ("empty_arr".into(), JsonValue::Array(vec![])),
            ("empty_obj".into(), JsonValue::Object(vec![])),
            ("nested".into(), JsonValue::Array(vec![JsonValue::UInt(7)])),
        ]);
        let p = v.pretty();
        assert!(p.contains("\"empty_arr\": []"));
        assert!(p.contains("\"empty_obj\": {}"));
        assert!(p.contains("  \"nested\": [\n    7\n  ]"));
        assert!(p.ends_with('\n'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(JsonValue::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::UInt(1)),
            (
                "b".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("c".into(), JsonValue::from("x\"y\n\u{1}")),
            ("d".into(), JsonValue::Float(1.5)),
            ("e".into(), JsonValue::Int(-3)),
            ("f".into(), JsonValue::UInt(u64::MAX)),
        ]);
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let v = JsonValue::parse(r#"{"s":"a\u0041\ud83d\ude00\/","n":-7,"x":2.5e3}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("aA😀/"));
        assert_eq!(v.get("n"), Some(&JsonValue::Int(-7)));
        assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(2500.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_view_the_tree() {
        let v = JsonValue::parse(r#"{"arr":[1,2],"u":9}"#).unwrap();
        assert_eq!(
            v.get("arr").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(9));
        assert_eq!(v.as_str(), None);
    }
}
