//! A dependency-free JSON value and writer.
//!
//! The build environment cannot fetch `serde_json`, and the telemetry
//! crate's needs are write-mostly (metric dumps, trace files, run
//! records), so this module provides a small owned [`JsonValue`] tree
//! with compact and pretty rendering. Object key order is preserved as
//! inserted (deliberate: run records diff cleanly).

use std::fmt::Write as _;

/// An owned JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An ordered key→value map.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation rustc provides.
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a dot; that is still valid
        // JSON (a number), so leave it.
    } else {
        out.push_str("null");
    }
}

impl JsonValue {
    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => write_float(out, *v),
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + STEP {
                        out.push(' ');
                    }
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push(']');
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + STEP {
                        out.push(' ');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Renders with two-space indentation (trailing newline included).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }
}

impl std::fmt::Display for JsonValue {
    /// Compact rendering (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::UInt(1)),
            (
                "b".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("c".into(), JsonValue::from("x\"y\n")),
            ("d".into(), JsonValue::Float(1.5)),
            ("e".into(), JsonValue::Int(-3)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":[null,true],"c":"x\"y\n","d":1.5,"e":-3}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented_and_reparses_shape() {
        let v = JsonValue::Object(vec![
            ("empty_arr".into(), JsonValue::Array(vec![])),
            ("empty_obj".into(), JsonValue::Object(vec![])),
            ("nested".into(), JsonValue::Array(vec![JsonValue::UInt(7)])),
        ]);
        let p = v.pretty();
        assert!(p.contains("\"empty_arr\": []"));
        assert!(p.contains("\"empty_obj\": {}"));
        assert!(p.contains("  \"nested\": [\n    7\n  ]"));
        assert!(p.ends_with('\n'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(JsonValue::from("\u{1}").to_string(), "\"\\u0001\"");
    }
}
