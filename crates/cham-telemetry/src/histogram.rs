//! Log₂-bucketed latency histograms.
//!
//! Durations are recorded in nanoseconds into 65 power-of-two buckets:
//! bucket 0 holds zero, and bucket *i* (for *i* ≥ 1) holds the half-open
//! power-of-two range `(2^(i−1), 2^i]` — so a value exactly equal to a
//! bucket's upper edge lands *in* that bucket, not the next one. That
//! gives ~2× resolution from 1 ns to ~580 years with a fixed,
//! allocation-free footprint — the same trick as HdrHistogram's coarsest
//! setting, and plenty for per-op latency accounting. Quantiles are
//! reported either as the upper bound of the containing bucket
//! ([`HistogramSnapshot::quantile_upper_nanos`]) or linearly interpolated
//! within it ([`HistogramSnapshot::percentile`]).
//!
//! Two flavors share the bucket math:
//!
//! * [`Histogram`] — `static`, named, registered globally on first
//!   record, and compiled out entirely without the `telemetry` feature.
//! * [`LiveHistogram`] — caller-owned and **always on** regardless of
//!   features; used where the data is a product surface (the serving
//!   stack's `Introspect` phase breakdown) rather than a debugging aid.

#[cfg(feature = "telemetry")]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

const BUCKETS: usize = 65;

/// A named concurrent log₂ histogram. The default domain is
/// nanoseconds (scoped timers); [`Histogram::with_unit`] repurposes the
/// same machinery for other non-negative integer quantities (e.g. noise
/// bits).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    unit: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    #[cfg(feature = "telemetry")]
    registered: AtomicBool,
}

impl Histogram {
    /// Creates a histogram named `name` (`<crate>.<module>.<op>`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self::with_unit(name, "ns")
    }

    /// Creates a histogram over a non-time domain (`unit` is a short
    /// label such as `"bits"`).
    #[must_use]
    pub const fn with_unit(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The histogram's value unit (`"ns"` for timers).
    #[must_use]
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Records one value (nanoseconds). Inlined no-op without the
    /// `telemetry` feature.
    #[inline]
    pub fn record(&'static self, nanos: u64) {
        #[cfg(feature = "telemetry")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && !self.registered.swap(true, Ordering::AcqRel)
            {
                registry()
                    .lock()
                    .expect("histogram registry poisoned")
                    .push(self);
            }
            let idx = bucket_index(nanos);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(nanos, Ordering::Relaxed);
            self.min.fetch_min(nanos, Ordering::Relaxed);
            self.max.fetch_max(nanos, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = nanos;
    }

    /// Copies out an immutable view of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            name: self.name,
            unit: self.unit,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum.load(Ordering::Relaxed),
            min_nanos: self.min.load(Ordering::Relaxed),
            max_nanos: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset_inner(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A caller-owned log₂ histogram that records regardless of the
/// `telemetry` feature.
///
/// Where [`Histogram`] instruments *debugging* paths (and compiles out
/// by default), `LiveHistogram` backs *product* surfaces — the serving
/// stack's per-phase latency breakdown served over the `Introspect` wire
/// op must work in a default build. It is `const`-constructible for use
/// in `static`s, never registers itself globally, and costs five relaxed
/// atomics per record.
#[derive(Debug)]
pub struct LiveHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LiveHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveHistogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Always live — not feature-gated.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies out an immutable view, labelled `name`/`unit` (the
    /// histogram itself is anonymous so it can live in struct fields).
    #[must_use]
    pub fn snapshot(&self, name: &'static str, unit: &'static str) -> HistogramSnapshot {
        HistogramSnapshot {
            name,
            unit,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum.load(Ordering::Relaxed),
            min_nanos: self.min.load(Ordering::Relaxed),
            max_nanos: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Bucket index for a nanosecond value: 0 for 0, else the smallest `i`
/// with `v ≤ 2^i` — i.e. `64 − clz(v − 1)`. A value exactly equal to a
/// power of two lands in the bucket whose upper edge it is.
#[inline]
#[must_use]
pub fn bucket_index(nanos: u64) -> usize {
    if nanos <= 1 {
        nanos as usize
    } else {
        (u64::BITS - (nanos - 1).leading_zeros()) as usize
    }
}

/// Upper bound (inclusive domain edge) of bucket `idx` in nanoseconds:
/// `2^idx`, saturating to `u64::MAX` for the overflow bucket 64.
#[must_use]
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        1u64 << idx
    }
}

/// Lower bound (exclusive domain edge) of bucket `idx`: the previous
/// bucket's upper bound (0 for buckets 0 and 1).
#[must_use]
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        bucket_upper_bound(idx - 1)
    }
}

/// Point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Value unit (`"ns"` for timers).
    pub unit: &'static str,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (ns).
    pub sum_nanos: u64,
    /// Smallest recorded value (ns); `u64::MAX` when empty.
    pub min_nanos: u64,
    /// Largest recorded value (ns).
    pub max_nanos: u64,
    /// Per-bucket counts (65 log₂ buckets).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded value in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`) in ns.
    ///
    /// Returns 0 for an empty histogram. The estimate is the containing
    /// bucket's upper edge, so it over-reports by at most 2×.
    #[must_use]
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(idx).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Estimate of the `p`-th percentile (`0.0 ..= 1.0`) in ns, linearly
    /// interpolated within the containing bucket.
    ///
    /// The rank-`r` value (`r = ⌈p·count⌉`, clamped to `1..=count`) falls
    /// in some bucket `(lo, hi]`; the estimate places the bucket's `c`
    /// occupants evenly across that range and reads off the `r`-th, then
    /// clamps to the observed `[min, max]` so the tails are exact.
    /// Returns 0.0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lower_bound(idx) as f64;
                let hi = bucket_upper_bound(idx) as f64;
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min_nanos as f64, self.max_nanos as f64);
            }
            seen += c;
        }
        self.max_nanos as f64
    }
}

fn registry() -> &'static Mutex<Vec<&'static Histogram>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Histogram>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshots of every registered histogram, sorted by name. Histograms
/// are registered on first record; empty when the feature is off.
#[must_use]
pub fn snapshot() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> = registry()
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|h| h.snapshot())
        .collect();
    out.sort_unstable_by_key(|s| s.name);
    out
}

/// Zeroes every registered histogram (keeps registrations).
pub fn reset() {
    for h in registry()
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        h.reset_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 2);
        assert_eq!(bucket_upper_bound(3), 8);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 0);
        assert_eq!(bucket_lower_bound(3), 4);
    }

    #[test]
    fn exact_powers_of_two_land_on_their_own_edge() {
        // The historical off-by-one put 2^i in bucket i+1; a value must
        // land in the bucket whose upper edge it equals.
        for i in 1..64usize {
            let v = 1u64 << i;
            assert_eq!(bucket_index(v), i, "2^{i} must land in bucket {i}");
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn record_and_quantiles() {
        let _guard = crate::test_guard();
        static H: Histogram = Histogram::new("cham_telemetry.histogram.test_unit");
        for v in [1u64, 2, 3, 100, 1000, 1_000_000] {
            H.record(v);
        }
        let s = H.snapshot();
        if crate::enabled() {
            assert_eq!(s.count, 6);
            assert_eq!(s.sum_nanos, 1_001_106);
            assert_eq!(s.min_nanos, 1);
            assert_eq!(s.max_nanos, 1_000_000);
            assert!(s.mean_nanos() > 0.0);
            // Median rank 3 of {1,2,3,100,1000,1e6} is 3 → bucket (2,4].
            assert_eq!(s.quantile_upper_nanos(0.5), 4);
            assert_eq!(s.quantile_upper_nanos(1.0), 1_000_000);
            assert!(snapshot().iter().any(|x| x.name == s.name));
        } else {
            assert_eq!(s.count, 0);
            assert_eq!(s.quantile_upper_nanos(0.5), 0);
        }
    }

    #[test]
    fn live_histogram_records_without_the_feature() {
        let h = LiveHistogram::new();
        for v in [8u64, 8, 8, 8] {
            h.record(v);
        }
        let s = h.snapshot("cham_telemetry.histogram.test_live", "ns");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_nanos, 32);
        assert_eq!(s.min_nanos, 8);
        assert_eq!(s.max_nanos, 8);
        // All mass on a single value: every percentile is that value.
        assert_eq!(s.percentile(0.5), 8.0);
        assert_eq!(s.percentile(0.99), 8.0);
        h.reset();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn percentile_interpolates_and_clamps() {
        let h = LiveHistogram::new();
        // 10 values spread across bucket (64,128].
        for v in [65u64, 70, 80, 90, 100, 110, 115, 120, 125, 128] {
            h.record(v);
        }
        let s = h.snapshot("cham_telemetry.histogram.test_pct", "ns");
        let p50 = s.percentile(0.5);
        // Interpolated midpoint of (64,128] with half the mass seen.
        assert!((64.0..=128.0).contains(&p50), "p50 {p50} outside bucket");
        // Tails clamp to the observed extremes, not the bucket edges.
        assert!(s.percentile(0.0) >= 65.0);
        assert!(s.percentile(0.0) <= p50);
        assert_eq!(s.percentile(1.0), 128.0);
        assert_eq!(
            LiveHistogram::new().snapshot("e", "ns").percentile(0.5),
            0.0
        );
    }
}
