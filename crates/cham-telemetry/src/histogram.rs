//! Log₂-bucketed latency histograms.
//!
//! Durations are recorded in nanoseconds into 65 power-of-two buckets
//! (bucket *i* holds values whose highest set bit is *i − 1*; bucket 0
//! holds zero). That gives ~2× resolution from 1 ns to ~580 years with a
//! fixed, allocation-free footprint — the same trick as HdrHistogram's
//! coarsest setting, and plenty for per-op latency accounting. Quantiles
//! are reported as the upper bound of the containing bucket.

#[cfg(feature = "telemetry")]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

const BUCKETS: usize = 65;

/// A named concurrent log₂ histogram. The default domain is
/// nanoseconds (scoped timers); [`Histogram::with_unit`] repurposes the
/// same machinery for other non-negative integer quantities (e.g. noise
/// bits).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    unit: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    #[cfg(feature = "telemetry")]
    registered: AtomicBool,
}

impl Histogram {
    /// Creates a histogram named `name` (`<crate>.<module>.<op>`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self::with_unit(name, "ns")
    }

    /// Creates a histogram over a non-time domain (`unit` is a short
    /// label such as `"bits"`).
    #[must_use]
    pub const fn with_unit(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The histogram's value unit (`"ns"` for timers).
    #[must_use]
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Records one value (nanoseconds). Inlined no-op without the
    /// `telemetry` feature.
    #[inline]
    pub fn record(&'static self, nanos: u64) {
        #[cfg(feature = "telemetry")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && !self.registered.swap(true, Ordering::AcqRel)
            {
                registry()
                    .lock()
                    .expect("histogram registry poisoned")
                    .push(self);
            }
            let idx = bucket_index(nanos);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(nanos, Ordering::Relaxed);
            self.min.fetch_min(nanos, Ordering::Relaxed);
            self.max.fetch_max(nanos, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = nanos;
    }

    /// Copies out an immutable view of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            name: self.name,
            unit: self.unit,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum.load(Ordering::Relaxed),
            min_nanos: self.min.load(Ordering::Relaxed),
            max_nanos: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset_inner(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Bucket index for a nanosecond value: 0 for 0, else `64 − clz(v)`.
#[inline]
#[must_use]
pub fn bucket_index(nanos: u64) -> usize {
    (u64::BITS - nanos.leading_zeros()) as usize
}

/// Upper bound (inclusive domain edge) of bucket `idx` in nanoseconds.
#[must_use]
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Value unit (`"ns"` for timers).
    pub unit: &'static str,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (ns).
    pub sum_nanos: u64,
    /// Smallest recorded value (ns); `u64::MAX` when empty.
    pub min_nanos: u64,
    /// Largest recorded value (ns).
    pub max_nanos: u64,
    /// Per-bucket counts (65 log₂ buckets).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded value in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`) in ns.
    ///
    /// Returns 0 for an empty histogram. The estimate is the containing
    /// bucket's upper edge, so it over-reports by at most 2×.
    #[must_use]
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(idx).min(self.max_nanos);
            }
        }
        self.max_nanos
    }
}

fn registry() -> &'static Mutex<Vec<&'static Histogram>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Histogram>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshots of every registered histogram, sorted by name. Histograms
/// are registered on first record; empty when the feature is off.
#[must_use]
pub fn snapshot() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> = registry()
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|h| h.snapshot())
        .collect();
    out.sort_unstable_by_key(|s| s.name);
    out
}

/// Zeroes every registered histogram (keeps registrations).
pub fn reset() {
    for h in registry()
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        h.reset_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let _guard = crate::test_guard();
        static H: Histogram = Histogram::new("cham_telemetry.histogram.test_unit");
        for v in [1u64, 2, 3, 100, 1000, 1_000_000] {
            H.record(v);
        }
        let s = H.snapshot();
        if crate::enabled() {
            assert_eq!(s.count, 6);
            assert_eq!(s.sum_nanos, 1_001_106);
            assert_eq!(s.min_nanos, 1);
            assert_eq!(s.max_nanos, 1_000_000);
            assert!(s.mean_nanos() > 0.0);
            // The median of {1,2,3,100,1000,1e6} is ≤ 100's bucket edge.
            assert!(s.quantile_upper_nanos(0.5) <= 127);
            assert_eq!(s.quantile_upper_nanos(1.0), 1_000_000);
            assert!(snapshot().iter().any(|x| x.name == s.name));
        } else {
            assert_eq!(s.count, 0);
            assert_eq!(s.quantile_upper_nanos(0.5), 0);
        }
    }
}
