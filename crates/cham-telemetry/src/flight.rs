//! A flight recorder: the last N completed request traces plus recent
//! notable events, exportable as a Chrome/Perfetto trace.
//!
//! Aggregate histograms tell you the p99 got worse; the flight recorder
//! tells you what the *last requests before the crash* were doing. It is
//! deliberately small and always on: a bounded ring of
//! [`RequestTrace`]s (one per completed request, with the per-phase
//! breakdown from [`crate::span::SpanRecorder::finish`]) and a second
//! ring of [`FlightEvent`]s (injected faults, worker panics, cache
//! evictions). [`FlightRecorder::to_chrome_trace`] renders both as one
//! Perfetto-loadable timeline — request tracks laid out on the
//! recorder's epoch clock, phases nested within each request.
//!
//! Dump triggers are the *owner's* policy (the serving stack dumps on
//! worker panic, at shutdown, and on demand over the wire); this module
//! only provides the ring and the exporter.

use crate::json::JsonValue;
use crate::span::{PhaseSpan, TraceId};
use crate::trace::ChromeTrace;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One completed request's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's wire-visible trace id.
    pub trace_id: TraceId,
    /// Start offset from the recorder's epoch, nanoseconds.
    pub start_ns: u64,
    /// End-to-end server-side duration, nanoseconds.
    pub total_ns: u64,
    /// Aggregated per-phase breakdown (monotonic, non-overlapping).
    pub phases: Vec<PhaseSpan>,
}

/// What kind of notable event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A fault was injected by the fault harness.
    Fault,
    /// A worker caught a panic.
    Panic,
    /// Cache material was evicted.
    Evict,
    /// The owner began shutting down.
    Shutdown,
}

impl FlightEventKind {
    /// Stable lowercase label (used in trace categories and JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlightEventKind::Fault => "fault",
            FlightEventKind::Panic => "panic",
            FlightEventKind::Evict => "evict",
            FlightEventKind::Shutdown => "shutdown",
        }
    }
}

/// One notable event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event class.
    pub kind: FlightEventKind,
    /// Free-form description (e.g. the fault name).
    pub detail: String,
    /// The request it hit, when attributable.
    pub trace_id: Option<TraceId>,
    /// Offset from the recorder's epoch, nanoseconds.
    pub ts_ns: u64,
}

/// Point-in-time copy of the recorder's contents.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// Completed request traces, oldest first.
    pub traces: Vec<RequestTrace>,
    /// Notable events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Requests evicted from the ring since startup.
    pub dropped_traces: u64,
}

#[derive(Debug, Default)]
struct Rings {
    traces: VecDeque<RequestTrace>,
    events: VecDeque<FlightEvent>,
    dropped_traces: u64,
}

/// Bounded ring buffers of recent request traces and events.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    event_capacity: usize,
    epoch: Instant,
    rings: Mutex<Rings>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` request traces (and
    /// `4 × capacity` events, min 64).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            event_capacity: (capacity * 4).max(64),
            epoch: Instant::now(),
            rings: Mutex::new(Rings::default()),
        }
    }

    /// Nanoseconds since this recorder's epoch — the clock all recorded
    /// offsets share.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Appends a completed request trace (evicting the oldest beyond
    /// capacity).
    pub fn record_trace(&self, trace: RequestTrace) {
        let mut rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if rings.traces.len() == self.capacity {
            rings.traces.pop_front();
            rings.dropped_traces += 1;
        }
        rings.traces.push_back(trace);
    }

    /// Appends a notable event, stamped with the recorder clock.
    pub fn record_event(
        &self,
        kind: FlightEventKind,
        detail: impl Into<String>,
        trace_id: Option<TraceId>,
    ) {
        let event = FlightEvent {
            kind,
            detail: detail.into(),
            trace_id,
            ts_ns: self.now_ns(),
        };
        let mut rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if rings.events.len() == self.event_capacity {
            rings.events.pop_front();
        }
        rings.events.push_back(event);
    }

    /// Cheap `(retained traces, dropped traces)` counts, without copying
    /// the ring contents (for introspection snapshots).
    #[must_use]
    pub fn lens(&self) -> (usize, u64) {
        let rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (rings.traces.len(), rings.dropped_traces)
    }

    /// Copies out the current contents, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> FlightSnapshot {
        let rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        FlightSnapshot {
            traces: rings.traces.iter().cloned().collect(),
            events: rings.events.iter().cloned().collect(),
            dropped_traces: rings.dropped_traces,
        }
    }

    /// Renders the recorder contents as a Chrome/Perfetto trace: one
    /// track per request (phases as nested slices) plus one `events`
    /// track for faults/panics/evictions.
    #[must_use]
    pub fn to_chrome_trace(&self) -> ChromeTrace {
        let snap = self.snapshot();
        let mut trace = ChromeTrace::new();
        const EVENT_TRACK: u64 = 1;
        trace.thread_name(EVENT_TRACK, "events");
        for (i, req) in snap.traces.iter().enumerate() {
            let tid = EVENT_TRACK + 1 + i as u64;
            trace.thread_name(tid, format!("request {}", req.trace_id));
            let base_us = req.start_ns as f64 / 1e3;
            trace.complete(
                tid,
                format!("request {}", req.trace_id),
                "request",
                base_us,
                req.total_ns as f64 / 1e3,
                vec![
                    ("trace_id".into(), JsonValue::UInt(req.trace_id.as_u64())),
                    ("total_ns".into(), JsonValue::UInt(req.total_ns)),
                ],
            );
            for p in &req.phases {
                trace.complete(
                    tid,
                    p.name,
                    "phase",
                    base_us + p.start_ns as f64 / 1e3,
                    p.dur_ns as f64 / 1e3,
                    vec![
                        ("dur_ns".into(), JsonValue::UInt(p.dur_ns)),
                        ("count".into(), JsonValue::UInt(p.count)),
                    ],
                );
            }
        }
        for e in &snap.events {
            let mut args = vec![("detail".into(), JsonValue::from(e.detail.as_str()))];
            if let Some(id) = e.trace_id {
                args.push(("trace_id".into(), JsonValue::UInt(id.as_u64())));
            }
            trace.complete(
                EVENT_TRACK,
                format!("{}: {}", e.kind.label(), e.detail),
                e.kind.label(),
                e.ts_ns as f64 / 1e3,
                // Zero-duration instants render poorly; give events a
                // 1 µs sliver so Perfetto shows them.
                1.0,
                args,
            );
        }
        trace
    }

    /// Writes the Chrome-trace JSON rendering to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn dump_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.to_chrome_trace().write(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::phase;

    fn req(id: u64, start_ns: u64) -> RequestTrace {
        RequestTrace {
            trace_id: TraceId(id),
            start_ns,
            total_ns: 30,
            phases: vec![
                PhaseSpan {
                    name: phase::QUEUE,
                    start_ns: 0,
                    dur_ns: 10,
                    count: 1,
                },
                PhaseSpan {
                    name: phase::DOT,
                    start_ns: 10,
                    dur_ns: 20,
                    count: 4,
                },
            ],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let fr = FlightRecorder::new(2);
        fr.record_trace(req(1, 0));
        fr.record_trace(req(2, 100));
        fr.record_trace(req(3, 200));
        let snap = fr.snapshot();
        assert_eq!(snap.traces.len(), 2);
        assert_eq!(snap.traces[0].trace_id, TraceId(2));
        assert_eq!(snap.traces[1].trace_id, TraceId(3));
        assert_eq!(snap.dropped_traces, 1);
    }

    #[test]
    fn events_record_and_export() {
        let fr = FlightRecorder::new(4);
        fr.record_trace(req(9, 50));
        fr.record_event(FlightEventKind::Fault, "worker_panic", Some(TraceId(9)));
        fr.record_event(FlightEventKind::Evict, "keys 0xabc", None);
        let json = fr.to_chrome_trace().to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("fault: worker_panic"));
        assert!(json.contains("evict: keys 0xabc"));
        assert!(json.contains("request 0x0000000000000009"));
        assert!(json.contains("\"dot\""));
    }

    #[test]
    fn dump_writes_loadable_json() {
        let fr = FlightRecorder::new(4);
        fr.record_trace(req(1, 0));
        fr.record_event(FlightEventKind::Shutdown, "drain", None);
        let dir = std::env::temp_dir().join("cham_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dump_{}.json", std::process::id()));
        fr.dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"traceEvents\""));
        std::fs::remove_file(&path).ok();
    }
}
