//! Property tests for histogram quantile estimation against a
//! sorted-vector oracle.
//!
//! A log₂ histogram cannot reproduce exact order statistics, but it
//! *must* stay honest about which bucket they live in: for any data set,
//! the estimated percentile has to land inside the bucket containing the
//! true rank value (then clamp to the observed extremes). These
//! properties pin both the interpolation and the bucket-boundary
//! semantics — a value equal to a bucket's upper edge belongs to that
//! bucket — against randomized inputs.

use cham_telemetry::histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, LiveHistogram,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// The oracle: exact rank statistic over the sorted raw values, using
/// the same rank rule as the histogram (`⌈p·n⌉` clamped to `1..=n`).
fn oracle_rank_value(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    // Mix tiny, mid, and huge magnitudes so every bucket regime is hit.
    vec(
        (0u64..4, any::<u64>()).prop_map(|(mode, raw)| match mode {
            0 => raw % 16,
            1 => 1 + raw % 10_000,
            2 => 1 + raw % (u64::MAX / 2),
            _ => u64::MAX,
        }),
        1..200,
    )
}

fn probability() -> impl Strategy<Value = f64> {
    // Inclusive [0, 1] in millesimal steps (the shim's f64 range is
    // half-open, and the endpoints are exactly the interesting cases).
    (0u64..=1000).prop_map(|x| x as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_lands_in_the_oracle_bucket(vals in values(), p in probability()) {
        let mut vals = vals;
        let h = LiveHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let s = h.snapshot("prop.pct", "ns");
        let truth = oracle_rank_value(&vals, p);
        let b = bucket_index(truth);
        let est = s.percentile(p);
        let lo = bucket_lower_bound(b) as f64;
        let hi = bucket_upper_bound(b) as f64;
        prop_assert!(
            est >= lo && est <= hi,
            "p={p}: estimate {est} outside oracle bucket [{lo}, {hi}] (truth {truth})"
        );
        // And never outside the observed range.
        prop_assert!(est >= *vals.first().unwrap() as f64);
        prop_assert!(est <= *vals.last().unwrap() as f64);
    }

    #[test]
    fn quantile_upper_bounds_the_oracle(vals in values(), p in probability()) {
        let mut vals = vals;
        let h = LiveHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let s = h.snapshot("prop.qub", "ns");
        let truth = oracle_rank_value(&vals, p);
        let ub = s.quantile_upper_nanos(p);
        prop_assert!(
            ub >= truth,
            "p={p}: upper-bound estimate {ub} below true rank value {truth}"
        );
        // Over-reporting is bounded by the containing bucket's edge.
        prop_assert!(ub <= bucket_upper_bound(bucket_index(truth)));
    }

    #[test]
    fn percentiles_are_monotone_in_p(vals in values()) {
        let h = LiveHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot("prop.mono", "ns");
        let ps = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for w in ps.windows(2) {
            prop_assert!(
                s.percentile(w[0]) <= s.percentile(w[1]),
                "percentile not monotone between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn bucket_membership_is_exact(v in any::<u64>()) {
        let b = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(b));
        if b > 0 {
            prop_assert!(v > bucket_lower_bound(b));
        }
    }
}
