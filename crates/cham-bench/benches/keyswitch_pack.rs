//! Key-switch and packing micro-benchmarks at the paper's `N = 4096`
//! parameters — the software-side costs of pipeline stages 5–9.

use cham_bench::bench_rng;
use cham_he::extract::{extract_lwe, lwe_to_rlwe};
use cham_he::keys::{GaloisKeys, KeySwitchKey, SecretKey};
use cham_he::ops::keyswitch_mask;
use cham_he::pack::{pack_lwes, pack_two};
use cham_he::params::ChamParams;
use cham_he::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;

fn bench_keyswitch_pack(c: &mut Criterion) {
    let mut rng = bench_rng();
    let params = ChamParams::cham_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let coder = CoeffEncoder::new(&params);
    let t = params.plain_modulus().value();
    let v: Vec<u64> = (0..params.degree()).map(|_| rng.gen_range(0..t)).collect();
    let ct = enc.encrypt(&coder.encode_vector(&v).unwrap(), &mut rng);
    let ksk = KeySwitchKey::generate(&sk, sk.coeffs(), &mut rng).unwrap();
    let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
    let lwe = extract_lwe(&ct, 0).unwrap();
    let as_rlwe = lwe_to_rlwe(&lwe);

    let mut group = c.benchmark_group("keyswitch_pack");
    group.sample_size(10);
    group.bench_function("keyswitch_4096", |b| {
        b.iter(|| keyswitch_mask(ct.a(), &ksk, &params).unwrap())
    });
    group.bench_function("extract_lwe", |b| b.iter(|| extract_lwe(&ct, 0).unwrap()));
    group.bench_function("pack_two", |b| {
        b.iter(|| pack_two(1, &as_rlwe, &as_rlwe, &gkeys, &params).unwrap())
    });
    let lwes16: Vec<_> = (0..16).map(|_| lwe.clone()).collect();
    group.bench_function("pack_16_lwes", |b| {
        b.iter(|| pack_lwes(&lwes16, &gkeys, &params).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_keyswitch_pack);
criterion_main!(benches);
