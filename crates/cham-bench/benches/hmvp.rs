//! HMVP algorithm comparison (DESIGN.md ablation): coefficient-encoded
//! (Alg. 1, `O(m)`) vs batch rotate-and-sum (`O(m log N)`) vs the diagonal
//! method, at a reduced `N = 256` so the baselines finish in bench time.

use cham_he::baseline::BatchHmvp;
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::ChamParams;
use cham_he::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

fn bench_hmvp(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let params = ChamParams::insecure_test_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let t = params.plain_modulus().value();
    let (m, n) = (16usize, 64usize);
    let a = Matrix::random(m, n, t, &mut rng);
    let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();

    let hmvp = Hmvp::new(&params);
    let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
    let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap();
    let em = hmvp.encode_matrix(&a).unwrap();

    let batch = BatchHmvp::new(&params).unwrap();
    let rot_keys = GaloisKeys::generate(
        &sk,
        &batch
            .rotate_sum_galois_indices()
            .into_iter()
            .chain([3usize])
            .collect::<Vec<_>>(),
        &mut rng,
    )
    .unwrap();
    let ct_batch = batch.encrypt_vector(&v, &enc, &mut rng).unwrap();
    let ct_repl = batch.encrypt_vector_replicated(&v, &enc, &mut rng).unwrap();

    let mut group = c.benchmark_group("hmvp_16x64_n256");
    group.sample_size(10);
    group.bench_function("coefficient_encoded", |b| {
        b.iter(|| hmvp.multiply(&em, &cts, &gkeys).unwrap())
    });
    group.bench_function("batch_rotate_and_sum", |b| {
        b.iter(|| batch.rotate_and_sum(&a, &ct_batch, &rot_keys).unwrap())
    });
    group.bench_function("batch_diagonal", |b| {
        b.iter(|| batch.diagonal(&a, &ct_repl, &rot_keys).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_hmvp);
criterion_main!(benches);
