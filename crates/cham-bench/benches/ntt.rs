//! NTT micro-benchmarks (DESIGN.md ablation: constant-geometry vs
//! iterative dataflow; both against the schoolbook oracle at small sizes).

use cham_math::karatsuba::negacyclic_mul_karatsuba;
use cham_math::modulus::{Modulus, Q0};
use cham_math::ntt::{negacyclic_mul_schoolbook, NttTable};
use cham_math::ntt_cg::CgNttTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn bench_ntt(c: &mut Criterion) {
    let q = Modulus::new(Q0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("ntt");
    for log_n in [10u32, 12] {
        let n = 1usize << log_n;
        let it = NttTable::new(n, q).unwrap();
        let cg = CgNttTable::new(n, q).unwrap();
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q.value())).collect();
        group.bench_with_input(BenchmarkId::new("iterative_forward", n), &n, |b, _| {
            b.iter(|| {
                let mut x = a.clone();
                it.forward(&mut x);
                x
            })
        });
        group.bench_with_input(
            BenchmarkId::new("constant_geometry_forward", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut x = a.clone();
                    cg.forward(&mut x);
                    x
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("iterative_inverse", n), &n, |b, _| {
            let f = it.forward_to_vec(&a);
            b.iter(|| it.inverse_to_vec(&f))
        });
    }
    // Schoolbook only at a tiny size (O(N^2)).
    let n = 256usize;
    let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q.value())).collect();
    let b2: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q.value())).collect();
    group.bench_function("schoolbook_mul_256", |b| {
        b.iter(|| negacyclic_mul_schoolbook(&a, &b2, &q))
    });
    group.bench_function("karatsuba_mul_256", |b| {
        b.iter(|| negacyclic_mul_karatsuba(&a, &b2, &q))
    });
    // Full negacyclic multiply via NTT at the same size, for the
    // schoolbook/Karatsuba/NTT crossover picture.
    let t256 = NttTable::new(256, q).unwrap();
    group.bench_function("ntt_mul_256", |b| {
        b.iter(|| {
            let fa = t256.forward_to_vec(&a);
            let fb = t256.forward_to_vec(&b2);
            let fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
            t256.inverse_to_vec(&fc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ntt);
criterion_main!(benches);
