//! Polynomial-processing-unit micro-benchmarks, including the modular-
//! reduction ablation: Barrett vs the hardware shift-add fold (the CHAM
//! low-Hamming-modulus trick, §IV-A.3).

use cham_math::modulus::{Modulus, Q0};
use cham_math::montgomery::MontgomeryContext;
use cham_math::poly::Poly;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

fn bench_reduction(c: &mut Criterion) {
    let q = Modulus::new(Q0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let xs: Vec<u128> = (0..1024).map(|_| rng.gen::<u128>() >> 54).collect(); // ~74-bit products
    let mut group = c.benchmark_group("modular_reduction");
    group.bench_function("barrett", |b| {
        b.iter(|| xs.iter().map(|&x| q.reduce_u128(x)).sum::<u64>())
    });
    group.bench_function("shift_add", |b| {
        b.iter(|| xs.iter().map(|&x| q.reduce_u128_shift_add(x)).sum::<u64>())
    });
    // Montgomery: chained products in Montgomery form (its natural use).
    let mont = MontgomeryContext::new(&q).unwrap();
    let ys: Vec<u64> = xs.iter().map(|&x| q.reduce_u128(x)).collect();
    group.bench_function("montgomery_chain", |b| {
        b.iter(|| {
            let mut acc = mont.to_montgomery(1);
            for &y in &ys {
                acc = mont.mul(acc, y);
            }
            mont.from_montgomery(acc)
        })
    });
    group.finish();
}

fn bench_ppu_ops(c: &mut Criterion) {
    let q = Modulus::new(Q0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let n = 4096;
    let a: Poly = (0..n).map(|_| rng.gen_range(0..q.value())).collect();
    let b2: Poly = (0..n).map(|_| rng.gen_range(0..q.value())).collect();
    let mut group = c.benchmark_group("ppu");
    group.bench_function("modadd_4096", |bch| bch.iter(|| a.add(&b2, &q)));
    group.bench_function("modmul_4096", |bch| bch.iter(|| a.mul_pointwise(&b2, &q)));
    group.bench_function("shift_neg_4096", |bch| bch.iter(|| a.shift_neg(1234, &q)));
    group.bench_function("automorph_4096", |bch| {
        bch.iter(|| a.automorph(3, &q).unwrap())
    });
    group.bench_function("rev_4096", |bch| bch.iter(|| a.rev()));
    group.finish();
}

criterion_group!(benches, bench_reduction, bench_ppu_ops);
criterion_main!(benches);
