//! Serving throughput: batched multi-worker dispatch with the NTT-matrix
//! cache vs naive per-request dispatch.
//!
//! The naive baseline re-encodes the matrix to NTT form for every request
//! and multiplies serially — what a stateless per-request service would
//! do. The served path runs the real `cham-serve` stack end to end
//! (TCP loopback, framed protocol, content-addressed cache, bounded
//! batching scheduler, worker pool): the matrix is encoded once, requests
//! from concurrent clients coalesce into `multiply_many` batches.
//!
//! Every served result is decrypted and checked against the plain
//! reference product, so the speedup is measured over verified-correct
//! work. `--threads <n>` sets the worker pool size; the run record
//! (`--json`) carries the queue/batch telemetry of the served pass.

use cham_bench::BenchRun;
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::ChamParams;
use cham_serve::server::{Server, ServerConfig};
use cham_serve::{RetryClient, ServeClient};
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

// Wide and short: encoding the matrix to NTT form (rows × 64 column
// tiles of lifts) dominates one multiply (whose packing cost scales with
// rows only), so the served path's encode-once cache is the decisive
// advantage even on a single core. This mirrors the paper's serving
// shapes — HeteroLR matrices are wide (features ≫ batch rows) and reused
// across every iteration.
const ROWS: usize = 4;
const COLS: usize = 128 * 256;
const CLIENTS: usize = 3;
const PER_CLIENT: usize = 4;

fn main() {
    let mut run = BenchRun::from_env("serve_throughput");
    let workers = run.threads();
    let params = Arc::new(ChamParams::insecure_test_default().expect("test params"));
    let mut rng = cham_bench::bench_rng();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let max_log = params.max_pack_log();
    let gkeys = GaloisKeys::generate_for_packing(&sk, max_log, &mut rng).expect("gk");
    let indices: Vec<usize> = (1..=max_log).map(|j| (1usize << j) + 1).collect();
    let hmvp = Hmvp::from_arc(Arc::clone(&params));
    let t = params.plain_modulus();
    let matrix = Matrix::random(ROWS, COLS, t.value(), &mut rng);
    let total = CLIENTS * PER_CLIENT;

    // Pre-encrypt all inputs so neither pass pays for encryption.
    let mut vectors = Vec::with_capacity(total);
    let mut inputs = Vec::with_capacity(total);
    for _ in 0..total {
        let v: Vec<u64> = (0..COLS).map(|_| rng.gen_range(0..t.value())).collect();
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).expect("encrypt");
        vectors.push(v);
        inputs.push(cts);
    }

    let backend = cham_math::Backend::active();
    println!(
        "serve_throughput: {total} requests ({CLIENTS} clients x {PER_CLIENT}), \
         {ROWS}x{COLS} matrix, N = {}, {workers} worker(s), simd = {backend}",
        params.degree()
    );

    // --- Naive per-request dispatch: re-encode + serial multiply. ---
    let t0 = Instant::now();
    for (v, cts) in vectors.iter().zip(&inputs) {
        let em = hmvp.encode_matrix(&matrix).expect("encode");
        let result = hmvp.multiply(&em, cts, &gkeys).expect("multiply");
        let got = hmvp.decrypt_result(&result, &dec).expect("decrypt");
        assert_eq!(got, matrix.mul_vector_mod(v, t).expect("reference"));
    }
    let naive_seconds = t0.elapsed().as_secs_f64();
    println!(
        "naive per-request (re-encode + serial): {naive_seconds:.3} s \
         ({:.1} ms/request)",
        1e3 * naive_seconds / total as f64
    );

    // --- Served: real TCP stack, cache + batching + worker pool. ---
    let config = ServerConfig {
        workers,
        queue_capacity: total.max(8),
        max_batch: 8,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", Arc::clone(&params), &config).expect("server");
    let mut setup = ServeClient::connect(server.local_addr(), Arc::clone(&params)).expect("client");
    let key_id = setup.load_keys(&gkeys, &indices).expect("load keys");
    let matrix_id = setup.load_matrix(&matrix).expect("load matrix");

    // Clients go through `RetryClient` — the production-resilient path.
    // On this fault-free run its recovery counters must come back zero,
    // which the run record asserts is the steady-state cost of armor.
    let t1 = Instant::now();
    let retry_totals = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let chunk: Vec<usize> = (0..PER_CLIENT).map(|i| c * PER_CLIENT + i).collect();
            let inputs = &inputs;
            let vectors = &vectors;
            let server = &server;
            let params = &params;
            let hmvp = &hmvp;
            let dec = &dec;
            let matrix = &matrix;
            handles.push(scope.spawn(move || {
                let mut client =
                    RetryClient::connect(server.local_addr().to_string(), Arc::clone(params))
                        .expect("client");
                for i in chunk {
                    let result = client
                        .hmvp(key_id, matrix_id, &inputs[i], None)
                        .expect("hmvp");
                    let got = hmvp.decrypt_result(&result, dec).expect("decrypt");
                    assert_eq!(got, matrix.mul_vector_mod(&vectors[i], t).expect("ref"));
                }
                client.stats()
            }));
        }
        let mut retries = 0u64;
        let mut recovered = 0u64;
        for h in handles {
            let s = h.join().expect("client thread");
            retries += s.retries;
            recovered += s.faults_recovered;
        }
        (retries, recovered)
    });
    let served_seconds = t1.elapsed().as_secs_f64();
    let introspect = server.introspect();
    let stats = server.shutdown();

    let speedup = naive_seconds / served_seconds;
    println!(
        "served (cache + batching + {workers} worker(s)): {served_seconds:.3} s \
         ({:.1} ms/request)",
        1e3 * served_seconds / total as f64
    );
    println!(
        "batches: {} (avg size {:.2}), peak queue depth {}, speedup {speedup:.2}x",
        stats.batches,
        stats.avg_batch_size(),
        stats.peak_queue_depth
    );
    assert_eq!(stats.completed, total as u64, "all requests must complete");
    assert!(
        speedup > 1.0,
        "served path must beat naive per-request dispatch (got {speedup:.2}x)"
    );

    // Per-request phase breakdown from the tracing layer: every request
    // was traced end to end, so the attributed phase time must account
    // for the server-side latency (within 10% — the remainder is cache
    // lookups and channel handoffs, which are not phases).
    let total_stat = introspect
        .phase(cham_serve::stats::PHASE_TOTAL)
        .expect("traced requests must populate the total histogram");
    assert_eq!(
        total_stat.count, total as u64,
        "every request must be traced"
    );
    let attributed_ns: u64 = introspect
        .phases
        .iter()
        .filter(|p| cham_telemetry::span::phase::ALL.contains(&p.name.as_str()))
        .map(|p| p.sum_ns)
        .sum();
    let coverage = attributed_ns as f64 / total_stat.sum_ns as f64;
    println!("phase breakdown (p50/p99/p999 across {total} requests):");
    for p in &introspect.phases {
        println!(
            "  {:<14} count={:<6} p50={:>12} ns  p99={:>12} ns  p999={:>12} ns",
            p.name, p.count, p.p50_ns, p.p99_ns, p.p999_ns
        );
    }
    println!(
        "phase coverage: {:.1}% of end-to-end latency attributed",
        100.0 * coverage
    );
    assert!(
        (0.9..=1.1).contains(&coverage),
        "attributed phase time must sum within 10% of end-to-end latency \
         (got {:.1}%)",
        100.0 * coverage
    );

    run.param("rows", ROWS)
        .param("cols", COLS)
        .param("clients", CLIENTS)
        .param("requests", total)
        .param("degree", params.degree())
        .param("workers", workers)
        .param("max_batch", config.max_batch);
    // Fault/recovery accounting: zero on this unfaulted run, but the
    // fields exist so faulted soaks land in the same record shape.
    assert_eq!(stats.faults_injected, 0, "bench runs unfaulted");
    run.metric("naive_seconds", naive_seconds)
        .metric("served_seconds", served_seconds)
        .metric("speedup", speedup)
        .metric("batches", stats.batches)
        .metric("avg_batch_size", stats.avg_batch_size())
        .metric("peak_queue_depth", stats.peak_queue_depth)
        .metric("accepted", stats.accepted)
        .metric("rejected_busy", stats.rejected_busy)
        .metric("timed_out", stats.timed_out)
        .metric("faults_injected", stats.faults_injected)
        .metric("faults_recovered", retry_totals.1)
        .metric("retries", retry_totals.0)
        // Per-request latency distribution and phase attribution, from
        // the tracing layer's introspection snapshot.
        .metric("latency_p50_ns", total_stat.p50_ns)
        .metric("latency_p99_ns", total_stat.p99_ns)
        .metric("latency_p999_ns", total_stat.p999_ns)
        .metric("phase_coverage", coverage);
    // Scatter-gather serialize accounting (0 without the `telemetry`
    // feature): how many response frames went out via write_vectored and
    // how many buffer copies that saved.
    let wire_counter = |name: &str| {
        cham_telemetry::counters::snapshot()
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    };
    run.metric(
        "wire_vectored_writes",
        wire_counter("cham_serve.wire.vectored_writes"),
    )
    .metric(
        "wire_gathered_parts",
        wire_counter("cham_serve.wire.gathered_parts"),
    );
    for p in &introspect.phases {
        run.metric(format!("phase_ns.{}", p.name), p.sum_ns);
    }
    run.finish();
}
