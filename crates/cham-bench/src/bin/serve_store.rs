//! Persistent data plane: cold-start vs warm-restart time-to-first-result,
//! and streamed vs monolithic upload memory behavior.
//!
//! Cold pass: a fresh server over an empty `--store-dir` analogue pays
//! the one-time NTT matrix encode before its first HMVP result. Warm
//! pass: the *same* store directory under a restarted server restores
//! the encoded segment instead — the bench pins `matrix_encode == 0` on
//! the warm path and measures the time-to-first-result gap, which is the
//! paper's encode-once amortization made durable across process
//! lifetimes.
//!
//! The upload comparison streams one matrix in bounded chunks
//! (protocol v5) and uploads a second, distinct matrix monolithically,
//! reading the process peak-RSS high-water mark around each (Linux
//! `VmHWM`, reset via `clear_refs` where permitted; both metrics are 0
//! when the kernel interface is unavailable). Scatter-gather serialize
//! counters (`wire.vectored_writes` / `wire.gathered_parts`) land in the
//! run record when the `telemetry` feature is compiled in.
//!
//! Every served result is decrypted and checked against the plain
//! reference product, and the warm result is asserted bit-identical to
//! the cold one.

use cham_bench::BenchRun;
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::ChamParams;
use cham_serve::server::{Server, ServerConfig};
use cham_serve::stats::PHASE_MATRIX_ENCODE;
use cham_serve::{protocol, ServeClient};
use rand::Rng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 4;
const COLS: usize = 128 * 256;
const HMVPS: usize = 3;

/// Peak resident set (bytes) since process start or the last reset —
/// Linux `VmHWM`; `0` where /proc is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Resets the peak-RSS high-water mark (best-effort; Linux `clear_refs`).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn telemetry_counter(name: &str) -> u64 {
    cham_telemetry::counters::snapshot()
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |&(_, v)| v)
}

fn matrix_encode_count(server: &Server) -> u64 {
    server
        .phases()
        .snapshot()
        .iter()
        .find(|p| p.name == PHASE_MATRIX_ENCODE)
        .map_or(0, |p| p.count)
}

fn store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cham-serve-store-bench-{}", std::process::id()))
}

fn main() {
    let mut run = BenchRun::from_env("serve_store");
    let params = Arc::new(ChamParams::insecure_test_default().expect("test params"));
    let mut rng = cham_bench::bench_rng();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let max_log = params.max_pack_log();
    let gkeys = GaloisKeys::generate_for_packing(&sk, max_log, &mut rng).expect("gk");
    let indices: Vec<usize> = (1..=max_log).map(|j| (1usize << j) + 1).collect();
    let hmvp = Hmvp::from_arc(Arc::clone(&params));
    let t = params.plain_modulus();
    let matrix = Matrix::random(ROWS, COLS, t.value(), &mut rng);
    let body_bytes = protocol::matrix_to_bytes(&matrix).len();

    let mut vectors = Vec::with_capacity(HMVPS);
    let mut inputs = Vec::with_capacity(HMVPS);
    for _ in 0..HMVPS {
        let v: Vec<u64> = (0..COLS).map(|_| rng.gen_range(0..t.value())).collect();
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).expect("encrypt");
        vectors.push(v);
        inputs.push(cts);
    }

    let dir = store_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    println!(
        "serve_store: {ROWS}x{COLS} matrix ({body_bytes} wire bytes), N = {}, \
         store dir {}",
        params.degree(),
        dir.display()
    );

    // --- Cold start: encode once, spill, serve. ---
    let t0 = Instant::now();
    let server = Server::start("127.0.0.1:0", Arc::clone(&params), &config).expect("server");
    let mut client = ServeClient::connect(server.local_addr(), Arc::clone(&params)).expect("conn");
    let key_id = client.load_keys(&gkeys, &indices).expect("keys");
    let cold_up = client
        .load_matrix_streamed(&matrix, protocol::DEFAULT_CHUNK_BYTES)
        .expect("upload");
    let result = client
        .hmvp(key_id, cold_up.matrix_id, &inputs[0], None)
        .expect("hmvp");
    let cold_first = hmvp.decrypt_result(&result, &dec).expect("decrypt");
    let cold_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(
        cold_first,
        matrix.mul_vector_mod(&vectors[0], t).expect("reference")
    );
    let cold_encodes = matrix_encode_count(&server);
    assert_eq!(cold_encodes, 1, "cold start must encode exactly once");
    for (v, cts) in vectors.iter().zip(&inputs).skip(1) {
        let result = client
            .hmvp(key_id, cold_up.matrix_id, cts, None)
            .expect("hmvp");
        let got = hmvp.decrypt_result(&result, &dec).expect("decrypt");
        assert_eq!(got, matrix.mul_vector_mod(v, t).expect("reference"));
    }
    drop(client);
    server.shutdown();
    println!("cold start: first verified result in {cold_seconds:.3} s (1 encode)");

    // --- Warm restart: same directory, segment restore, zero encodes. ---
    let t0 = Instant::now();
    let server = Server::start("127.0.0.1:0", Arc::clone(&params), &config).expect("server");
    let mut client = ServeClient::connect(server.local_addr(), Arc::clone(&params)).expect("conn");
    let key_id = client.load_keys(&gkeys, &indices).expect("keys");
    let warm_up = client
        .load_matrix_streamed(&matrix, protocol::DEFAULT_CHUNK_BYTES)
        .expect("upload");
    let result = client
        .hmvp(key_id, warm_up.matrix_id, &inputs[0], None)
        .expect("hmvp");
    let warm_first = hmvp.decrypt_result(&result, &dec).expect("decrypt");
    let warm_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(warm_first, cold_first, "warm result must be bit-identical");
    let warm_encodes = matrix_encode_count(&server);
    assert_eq!(warm_encodes, 0, "warm restart must not re-encode");
    assert_eq!(warm_up.chunks_sent, 0, "warm re-upload must send no chunks");
    let restores = server.cache().store_restores();
    let store_stats = server.cache().store().expect("store").stats();
    println!(
        "warm restart: first verified result in {warm_seconds:.3} s \
         (0 encodes, {restores} restore, {} recovered segment(s))",
        store_stats.recovered
    );
    let warm_speedup = cold_seconds / warm_seconds.max(1e-9);
    println!("time-to-first-result speedup: {warm_speedup:.2}x");

    // --- Streamed vs monolithic upload peak RSS (fresh content each so
    // neither dedups onto a cached entry). ---
    let streamed_matrix = Matrix::random(ROWS, COLS, t.value(), &mut rng);
    reset_peak_rss();
    let up = client
        .load_matrix_streamed(&streamed_matrix, protocol::DEFAULT_CHUNK_BYTES)
        .expect("streamed upload");
    let streamed_peak = peak_rss_bytes();
    assert!(up.chunks_sent > 0);
    let mono_matrix = Matrix::random(ROWS, COLS, t.value(), &mut rng);
    reset_peak_rss();
    client
        .load_matrix_monolithic(&mono_matrix)
        .expect("monolithic upload");
    let mono_peak = peak_rss_bytes();
    println!(
        "upload peak RSS: streamed {streamed_peak} B vs monolithic {mono_peak} B \
         ({} chunk(s) of {} B)",
        up.chunks_sent,
        protocol::DEFAULT_CHUNK_BYTES
    );
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Scatter-gather copy accounting from the serialize path (0 without
    // the `telemetry` feature — additive fields, never load-bearing).
    let vectored_writes = telemetry_counter("cham_serve.wire.vectored_writes");
    let gathered_parts = telemetry_counter("cham_serve.wire.gathered_parts");

    run.param("rows", ROWS)
        .param("cols", COLS)
        .param("degree", params.degree())
        .param("matrix_wire_bytes", body_bytes)
        .param("chunk_bytes", protocol::DEFAULT_CHUNK_BYTES)
        .param("hmvps", HMVPS);
    run.metric("cold_first_result_seconds", cold_seconds)
        .metric("warm_first_result_seconds", warm_seconds)
        .metric("warm_speedup", warm_speedup)
        .metric("cold_matrix_encodes", cold_encodes)
        .metric("warm_matrix_encodes", warm_encodes)
        .metric("store_restores", restores)
        .metric("store_recovered_segments", store_stats.recovered)
        .metric("store_quarantined_segments", store_stats.quarantined)
        .metric("cold_chunks_sent", u64::from(cold_up.chunks_sent))
        .metric("warm_chunks_sent", u64::from(warm_up.chunks_sent))
        .metric("warm_chunks_skipped", u64::from(warm_up.chunks_skipped))
        .metric("streamed_upload_peak_rss_bytes", streamed_peak)
        .metric("monolithic_upload_peak_rss_bytes", mono_peak)
        .metric("wire_vectored_writes", vectored_writes)
        .metric("wire_gathered_parts", gathered_parts);
    run.finish();
}
