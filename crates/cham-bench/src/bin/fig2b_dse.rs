//! Fig. 2b — design-space exploration.
//!
//! Sweeps pipeline split × engines × NTT modules × butterfly PEs × pack
//! units, prints every point's (throughput, utilisation), the Pareto
//! frontier, and checks that the paper's two chosen points are on or near
//! it.

use cham_bench::{si, BenchRun};
use cham_sim::config::ChamConfig;
use cham_sim::dse::DesignSpace;

fn main() {
    let mut run = BenchRun::from_env("fig2b_dse");
    let ds = DesignSpace::default();
    let points = ds.explore().expect("grid evaluates");
    println!("=== Fig. 2b: design-space exploration (VU9P, HMVP 4096x4096) ===");
    println!(
        "{} candidate points, feasibility ceiling 75% utilisation",
        points.len()
    );
    println!();

    let pareto = DesignSpace::pareto(&points);
    println!("Pareto frontier ({} points):", pareto.len());
    println!(
        "{:<22} {:>16} {:>12}",
        "design", "throughput", "utilisation"
    );
    let mut sorted = pareto.clone();
    sorted.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
    for p in &sorted {
        println!(
            "{:<22} {:>14}MAC/s {:>11.1}%",
            p.label(),
            si(p.throughput),
            p.utilization * 100.0
        );
    }
    println!();

    let shipped = ds.evaluate(ChamConfig::cham()).expect("valid");
    let wide = ds.evaluate(ChamConfig::cham_wide()).expect("valid");
    println!("paper's chosen points:");
    for p in [&shipped, &wide] {
        println!(
            "  {:<22} {:>14}MAC/s {:>11.1}%  feasible={}",
            p.label(),
            si(p.throughput),
            p.utilization * 100.0,
            p.feasible
        );
    }
    let best = DesignSpace::best(&points).expect("non-empty");
    println!(
        "\ngrid optimum: {} at {}MAC/s — shipped point reaches {:.0}% of it",
        best.label(),
        si(best.throughput),
        100.0 * shipped.throughput / best.throughput
    );
    let infeasible = points.iter().filter(|p| !p.feasible).count();
    println!(
        "{infeasible} of {} candidates exceed the device budget",
        points.len()
    );

    run.param("candidates", points.len());
    run.metric("pareto_points", pareto.len())
        .metric("infeasible", infeasible)
        .metric("best_throughput_macs", best.throughput)
        .metric("shipped_throughput_macs", shipped.throughput)
        .metric("wide_throughput_macs", wide.throughput)
        .metric(
            "shipped_fraction_of_best",
            shipped.throughput / best.throughput,
        );
    run.finish();
}
