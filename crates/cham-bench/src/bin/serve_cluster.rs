//! Cluster serving under failure: open-loop load against a 3-shard,
//! 2-replica loopback fleet with one replica killed mid-run (and, when
//! `CHAM_SERVE_FAULTS` is set, seeded faults armed on another).
//!
//! Requests are issued *open-loop*: each client fires on a fixed
//! schedule regardless of how long earlier requests took, so a slow or
//! failing shard shows up as latency (the measurement includes queueing
//! behind the schedule), not as a silently reduced request rate —
//! the standard correction for coordinated omission.
//!
//! The run record (`--json`, `cham-run-record/v1`) carries the tail
//! latencies (p50/p99/p999), goodput, per-shard balance, the recovery
//! counters (failovers, retries, re-uploads), and the
//! degraded-replication window (kill → first request completed through
//! a failover). The headline assertions — the resilience claim of the
//! cluster layer:
//!
//! * `failed_requests == 0`: a replica dying mid-run and a faulty peer
//!   cost latency, never answers;
//! * every *surviving* shard served requests (balance never collapses
//!   onto one node);
//! * every decrypted result equals the plain reference product — the
//!   failover path returns verified-correct ciphertexts, not garbage.

use cham_bench::BenchRun;
use cham_cluster::{ClusterClient, Topology};
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::ChamParams;
use cham_serve::server::{Server, ServerConfig};
use cham_serve::shard::{HashRing, ShardSpec};
use cham_serve::{ClientConfig, FaultInjector, RetryPolicy};
use rand::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: u16 = 3;
const REPLICATION: u16 = 2;
const VNODES: u32 = 128;
/// Bands of one ring dimension each: at N=256, six bands spread over
/// the fleet, so every request fans out and every shard holds bands.
const ROWS: usize = 6 * 256;
const COLS: usize = 256;
const CLIENTS: usize = 3;
const PER_CLIENT: usize = 6;
/// Open-loop inter-arrival time per client.
const INTERVAL: Duration = Duration::from_millis(150);
/// The slot killed once half of each client's schedule has fired.
const VICTIM: u16 = 2;
/// The slot faults arm on (when `CHAM_SERVE_FAULTS` is set).
const FAULTED: u16 = 1;

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() as f64) * p).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

fn main() {
    let mut run = BenchRun::from_env("serve_cluster");
    let workers = run.threads();
    let params = Arc::new(ChamParams::insecure_test_default().expect("test params"));
    let mut rng = cham_bench::bench_rng();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let max_log = params.max_pack_log();
    let gkeys = GaloisKeys::generate_for_packing(&sk, max_log, &mut rng).expect("gk");
    let indices: Vec<usize> = (1..=max_log).map(|j| (1usize << j) + 1).collect();
    let hmvp = Hmvp::from_arc(Arc::clone(&params));
    let t = params.plain_modulus();
    let matrix = Matrix::random(ROWS, COLS, t.value(), &mut rng);
    let total = CLIENTS * PER_CLIENT;

    // Pre-encrypt every input so latency measures serving, not client
    // crypto.
    let mut vectors = Vec::with_capacity(total);
    let mut inputs = Vec::with_capacity(total);
    for _ in 0..total {
        let v: Vec<u64> = (0..COLS).map(|_| rng.gen_range(0..t.value())).collect();
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).expect("encrypt");
        vectors.push(v);
        inputs.push(cts);
    }

    // The fleet: 3 shards x 2 replicas; seeded faults (if armed via the
    // environment) on one replica, another killed mid-run.
    let faults = FaultInjector::from_env();
    let ring = HashRing::new(NODES, VNODES, REPLICATION);
    let mut servers: Vec<Option<Server>> = Vec::new();
    for i in 0..NODES {
        let config = ServerConfig {
            workers,
            queue_capacity: total.max(16),
            max_batch: 4,
            shard: Some(ShardSpec::new(ring.clone(), i, 1)),
            node_id: 0xC0DE + u64::from(i),
            faults: if i == FAULTED { faults.clone() } else { None },
            ..ServerConfig::default()
        };
        servers.push(Some(
            Server::start("127.0.0.1:0", Arc::clone(&params), &config).expect("server"),
        ));
    }
    let topology = Topology::new(
        servers
            .iter()
            .map(|s| {
                s.as_ref()
                    .expect("fleet just started")
                    .local_addr()
                    .to_string()
            })
            .collect(),
    )
    .expect("topology")
    .with_vnodes(VNODES)
    .with_replication(REPLICATION)
    .with_epoch(1);

    println!(
        "serve_cluster: {total} requests ({CLIENTS} clients x {PER_CLIENT}, open-loop \
         every {INTERVAL:?}), {ROWS}x{COLS} matrix over {NODES} shards x {REPLICATION} \
         replicas, N = {}, faults {} on shard {FAULTED}, shard {VICTIM} killed mid-run",
        params.degree(),
        if faults.is_some() { "ARMED" } else { "off" },
    );

    // Generous budget: under a dead replica plus seeded faults, a
    // request may burn several failover+retry rounds; the policy bounds
    // them, and the open-loop latency ledger charges every one.
    let policy = RetryPolicy {
        max_attempts: 40,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(50),
        jitter_seed: 0xC1,
        total_deadline: Some(Duration::from_secs(60)),
        ..RetryPolicy::default()
    };

    let start = Instant::now();
    let done_requests = std::sync::atomic::AtomicUsize::new(0);
    // Degraded-replication window: from the kill to the first request
    // that *completed through a failover* — how long the fleet ran with
    // a band's only copy serving before routing demonstrably healed.
    let kill_ns = std::sync::atomic::AtomicU64::new(0);
    let degraded_ns = std::sync::atomic::AtomicU64::new(u64::MAX);
    let outcome = std::thread::scope(|scope| {
        // The reaper: once half the requests have completed (so the
        // victim demonstrably served live traffic first — setup time
        // varies too much for a wall-clock trigger), one replica dies.
        let reaper = {
            let victim = servers[usize::from(VICTIM)].take().expect("victim");
            let done_requests = &done_requests;
            let kill_ns = &kill_ns;
            scope.spawn(move || {
                while done_requests.load(std::sync::atomic::Ordering::Relaxed) < total / 2 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                victim.shutdown();
                kill_ns.store(
                    start.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::SeqCst,
                );
            })
        };
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let topology = topology.clone();
            let params = &params;
            let hmvp = &hmvp;
            let dec = &dec;
            let matrix = &matrix;
            let gkeys = &gkeys;
            let indices = &indices;
            let inputs = &inputs;
            let vectors = &vectors;
            let done_requests = &done_requests;
            let kill_ns = &kill_ns;
            let degraded_ns = &degraded_ns;
            let mut policy = policy;
            policy.jitter_seed = 0xC1 ^ (c as u64 + 1);
            handles.push(scope.spawn(move || {
                let mut client = ClusterClient::with_config(
                    topology,
                    Arc::clone(params),
                    ClientConfig::default(),
                    policy,
                );
                // Uploads are content-addressed and idempotent: every
                // client performing them keeps setup symmetric.
                let key_id = client.load_keys(gkeys, indices).expect("load keys");
                let sharded = client
                    .load_matrix_sharded(matrix, params.degree())
                    .expect("load matrix");
                let t0 = Instant::now();
                let mut latencies_ns = Vec::with_capacity(PER_CLIENT);
                let mut failed = 0u64;
                for k in 0..PER_CLIENT {
                    // Open-loop: fire at the scheduled instant even if
                    // the previous request ran long (lateness counts).
                    let due = INTERVAL * k as u32;
                    if let Some(wait) = due.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let scheduled = t0 + due;
                    let i = c * PER_CLIENT + k;
                    let failovers_before = client.stats().failovers;
                    match client.hmvp_sharded(key_id, &sharded, &inputs[i], None) {
                        Ok(result) => {
                            latencies_ns.push(scheduled.elapsed().as_nanos() as u64);
                            let killed_at = kill_ns.load(std::sync::atomic::Ordering::SeqCst);
                            if killed_at != 0 && client.stats().failovers > failovers_before {
                                degraded_ns.fetch_min(
                                    (start.elapsed().as_nanos() as u64).saturating_sub(killed_at),
                                    std::sync::atomic::Ordering::SeqCst,
                                );
                            }
                            let got = hmvp.decrypt_result(&result, dec).expect("decrypt");
                            assert_eq!(
                                got,
                                matrix.mul_vector_mod(&vectors[i], t).expect("reference"),
                                "request {i} decrypted to a wrong product"
                            );
                        }
                        Err(e) => {
                            eprintln!("request {i} failed: {e}");
                            failed += 1;
                        }
                    }
                    done_requests.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                (latencies_ns, failed, client.stats())
            }));
        }
        reaper.join().expect("reaper");
        let mut latencies_ns = Vec::with_capacity(total);
        let mut failed = 0u64;
        let mut failovers = 0u64;
        let mut retries = 0u64;
        let mut reuploads = 0u64;
        let mut recovered = 0u64;
        let mut refreshes = 0u64;
        let mut per_shard = vec![0u64; usize::from(NODES)];
        for h in handles {
            let (lat, f, stats) = h.join().expect("client thread");
            latencies_ns.extend(lat);
            failed += f;
            failovers += stats.failovers;
            retries += stats.retries;
            reuploads += stats.reuploads;
            recovered += stats.faults_recovered;
            refreshes += stats.refreshes;
            for (slot, n) in stats.per_node_requests.iter().enumerate() {
                per_shard[slot] += n;
            }
        }
        (
            latencies_ns,
            failed,
            failovers,
            retries,
            reuploads,
            recovered,
            refreshes,
            per_shard,
        )
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let (mut latencies_ns, failed, failovers, retries, reuploads, recovered, refreshes, per_shard) =
        outcome;
    latencies_ns.sort_unstable();

    let goodput_rps = latencies_ns.len() as f64 / wall_seconds;
    let p50 = percentile(&latencies_ns, 0.50);
    let p99 = percentile(&latencies_ns, 0.99);
    let p999 = percentile(&latencies_ns, 0.999);
    println!(
        "latency p50 {:.2} ms  p99 {:.2} ms  p999 {:.2} ms  goodput {goodput_rps:.1} req/s",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6,
    );
    let degraded = degraded_ns.load(std::sync::atomic::Ordering::SeqCst);
    println!(
        "failed {failed}  failovers {failovers}  retries {retries}  reuploads {reuploads}  \
         recovered {recovered}  refreshes {refreshes}  per-shard {per_shard:?}"
    );
    println!(
        "degraded replication window (kill -> first failed-over answer): {:.2} ms",
        degraded as f64 / 1e6
    );

    // The resilience claim: a dead replica and a faulty one cost
    // latency, never requests.
    assert_eq!(
        failed, 0,
        "cluster serving lost {failed} of {total} requests"
    );
    assert_eq!(latencies_ns.len(), total, "every request must be measured");
    assert!(
        failovers >= 1,
        "the killed replica was never failed over — the kill did not bite"
    );
    assert_ne!(
        degraded,
        u64::MAX,
        "no request completed through a failover after the kill"
    );
    // Balance: every surviving shard served (the victim may legitimately
    // drop to its pre-kill share, but never to zero — it served the
    // first half of the run).
    for (slot, &served) in per_shard.iter().enumerate() {
        assert!(
            served > 0,
            "shard {slot} served nothing: balance collapsed {per_shard:?}"
        );
    }

    // Drain the survivors; their books must balance.
    let mut completed = 0u64;
    for s in servers.iter_mut().filter_map(Option::take) {
        let stats = s.shutdown();
        completed += stats.completed;
    }
    assert!(
        completed >= total as u64,
        "survivors completed {completed}, expected at least {total} band requests"
    );

    run.param("nodes", u64::from(NODES))
        .param("replication", u64::from(REPLICATION))
        .param("vnodes", u64::from(VNODES))
        .param("rows", ROWS)
        .param("cols", COLS)
        .param("clients", CLIENTS)
        .param("requests", total)
        .param("degree", params.degree())
        .param("workers", workers)
        .param("interval_ms", INTERVAL.as_millis() as u64)
        .param("faults_armed", u64::from(faults.is_some()));
    run.metric("latency_p50_ns", p50)
        .metric("latency_p99_ns", p99)
        .metric("latency_p999_ns", p999)
        .metric("goodput_rps", goodput_rps)
        .metric("failed_requests", failed)
        .metric("failovers", failovers)
        .metric("retries", retries)
        .metric("reuploads", reuploads)
        .metric("faults_recovered", recovered)
        .metric("refreshes", refreshes)
        .metric("degraded_replication_ns", degraded);
    for (slot, &served) in per_shard.iter().enumerate() {
        run.metric(format!("per_shard_requests_{slot}"), served);
    }
    run.finish();
}
