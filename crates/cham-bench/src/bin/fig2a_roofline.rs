//! Fig. 2a — the roofline model on the Xilinx U200.
//!
//! Prints the roofline ceilings and the compute intensity / attainable
//! performance of standalone NTT, standalone key-switch, and the fused
//! HMVP, reproducing the figure's argument: individual HE operators are
//! memory-bound; the fused HMVP approaches the compute roof.

use cham_bench::{si, BenchRun};
use cham_sim::pipeline::RingShape;
use cham_sim::resources::FpgaDevice;
use cham_sim::roofline::{OpProfile, Roofline};
use cham_telemetry::json::JsonValue;

fn main() {
    let mut run = BenchRun::from_env("fig2a_roofline");
    let device = FpgaDevice::u200();
    let roof = Roofline::new(device, 300e6);
    let shape = RingShape::cham();

    println!("=== Fig. 2a: roofline model (U200 @ 300 MHz) ===");
    println!(
        "compute roof: {}op/s   memory roof: {}B/s   ridge: {:.1} op/B",
        si(roof.peak_ops()),
        si(77e9),
        roof.ridge_intensity()
    );
    println!();
    println!(
        "{:<16} {:>12} {:>14} {:>10} {:>16} {:>12}",
        "operator", "ops", "bytes", "op/B", "attainable", "bound"
    );
    let mut profiles = vec![OpProfile::ntt(&shape), OpProfile::keyswitch(&shape)];
    for (m, n) in [
        (256usize, 4096usize),
        (1024, 4096),
        (4096, 4096),
        (8192, 4096),
    ] {
        profiles.push(OpProfile::hmvp(&shape, m, n));
    }
    for p in &profiles {
        println!(
            "{:<16} {:>12} {:>14} {:>10.2} {:>14}op/s {:>12}",
            p.name,
            p.ops,
            p.bytes,
            p.intensity(),
            si(roof.attainable_for(p)),
            if roof.memory_bound(p) {
                "memory"
            } else {
                "compute"
            }
        );
    }
    println!();
    println!("paper claim: \"the compute intensity of HE operations (e.g., NTT and");
    println!("key-switch) is much smaller than HMVP\" — reproduced above.");

    run.param("device", "u200").param("clock_hz", 300e6);
    run.metric("peak_ops_per_sec", roof.peak_ops())
        .metric("ridge_intensity", roof.ridge_intensity());
    run.metric(
        "operators",
        JsonValue::Array(
            profiles
                .iter()
                .map(|p| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::from(p.name.as_str())),
                        ("intensity".into(), JsonValue::Float(p.intensity())),
                        (
                            "attainable_ops_per_sec".into(),
                            JsonValue::Float(roof.attainable_for(p)),
                        ),
                        ("memory_bound".into(), JsonValue::Bool(roof.memory_bound(p))),
                    ])
                })
                .collect(),
        ),
    );
    run.finish();
}
