//! Fig. 7a/7b — HeteroLR per-step performance over dataset sizes.
//!
//! Three systems per dataset shape (samples × features):
//! * **Paillier (FATE)** — element-wise semi-HE, measured at a reduced
//!   modulus and extrapolated to 2048-bit by the fitted modexp scaling,
//! * **B/FV CPU** — this repository's software stack, per-op measured and
//!   extrapolated per shape,
//! * **B/FV + CHAM** — matvec offloaded to the modelled accelerator; the
//!   host keeps encryption/add_vec/decryption.
//!
//! Reproduced claims: B/FV cuts every step versus Paillier; CHAM
//! accelerates matvec by 30–1800×; end-to-end speed-up 2–36× with the
//! largest gains where matvec dominates (8192×4096, 8192×8192).

use cham_apps::bigint::BigUint;
use cham_apps::paillier::PaillierPrivateKey;
use cham_bench::{bench_rng, eng, BenchRun, CpuCosts};
use cham_he::params::ChamParams;
use cham_sim::pipeline::HmvpCycleModel;
use cham_telemetry::json::JsonValue;
use rand::Rng;
use std::time::Instant;

/// Measured Paillier per-op costs at a given modulus size.
struct PaillierCosts {
    encrypt: f64,
    add_plain: f64,
    mul_scalar: f64,
    decrypt: f64,
}

fn measure_paillier(bits: u32) -> PaillierCosts {
    let mut rng = bench_rng();
    let sk = PaillierPrivateKey::generate(bits, &mut rng);
    let pk = sk.public_key().clone();
    let reps = 5;
    let m = BigUint::from_u64(12345);
    let t0 = Instant::now();
    let cts: Vec<_> = (0..reps)
        .map(|_| pk.encrypt(&m, &mut rng).unwrap())
        .collect();
    let encrypt = t0.elapsed().as_secs_f64() / reps as f64;
    let t1 = Instant::now();
    for ct in &cts {
        let _ = pk.add_plain(ct, &m);
    }
    let add_plain = t1.elapsed().as_secs_f64() / reps as f64;
    let k = BigUint::from_u64(rng.gen::<u32>() as u64);
    let t2 = Instant::now();
    for ct in &cts {
        let _ = pk.mul_scalar(ct, &k);
    }
    let mul_scalar = t2.elapsed().as_secs_f64() / reps as f64;
    let t3 = Instant::now();
    for ct in &cts {
        let _ = sk.decrypt(ct);
    }
    let decrypt = t3.elapsed().as_secs_f64() / reps as f64;
    PaillierCosts {
        encrypt,
        add_plain,
        mul_scalar,
        decrypt,
    }
}

fn main() {
    let mut run = BenchRun::from_env("fig7ab_heterolr");
    println!("fitting Paillier modexp scaling (128 -> 256 bit)...");
    let p128 = measure_paillier(128);
    let p256 = measure_paillier(256);
    // Fit cost ∝ bits^e from the two sizes, per op class.
    let exp_fit = |a: f64, b: f64| (b / a).log2(); // per doubling
    let e_enc = exp_fit(p128.encrypt, p256.encrypt);
    // Extrapolate from 256-bit to FATE's 2048-bit (3 doublings).
    let scale = |v: f64, e: f64| v * (2f64).powf(e * 3.0);
    let pail = PaillierCosts {
        encrypt: scale(p256.encrypt, e_enc),
        add_plain: scale(
            p256.add_plain,
            exp_fit(p128.add_plain, p256.add_plain).max(1.5),
        ),
        mul_scalar: scale(p256.mul_scalar, exp_fit(p128.mul_scalar, p256.mul_scalar)),
        decrypt: scale(p256.decrypt, exp_fit(p128.decrypt, p256.decrypt)),
    };
    println!(
        "  2048-bit estimates: enc {}  add {}  scalar-mul {}  dec {}",
        eng(pail.encrypt),
        eng(pail.add_plain),
        eng(pail.mul_scalar),
        eng(pail.decrypt)
    );

    println!("\nmeasuring B/FV CPU per-op costs (N = 4096)...");
    let params = ChamParams::cham_default().expect("paper params");
    let cpu = CpuCosts::measure(&params);
    let model = HmvpCycleModel::cham();
    let n_ring = params.degree();

    // Dataset shapes of Fig. 7 (samples × features).
    let shapes = [
        (1024usize, 1024usize),
        (4096, 1024),
        (4096, 4096),
        (8192, 4096),
        (8192, 8192),
    ];
    println!("\n=== Fig. 7a/7b: HeteroLR per-iteration step times ===");
    let mut datasets = Vec::new();
    for (samples, features) in shapes {
        // Step models (one iteration, both parties' gradients).
        let cts_g = features.div_ceil(n_ring) as f64;

        // FATE parallelizes Paillier over worker processes; 16-way is a
        // typical deployment (documented substitution — single-core
        // numbers would be 16x larger).
        const FATE_WORKERS: f64 = 16.0;
        let fate_enc = samples as f64 * pail.encrypt / FATE_WORKERS;
        let fate_add = samples as f64 * pail.add_plain / FATE_WORKERS;
        let fate_mv = 2.0 * features as f64 * samples as f64 * pail.mul_scalar / FATE_WORKERS;
        let fate_dec = 2.0 * features as f64 * pail.decrypt / FATE_WORKERS;

        // The B/FV integration keeps FATE's per-value ciphertext
        // interface: one encryption per sample activation (this is why
        // CHAM's LWE<->RLWE conversion matters — per-value ciphertexts are
        // packed on the way into the HMVP). Encryption therefore scales
        // with the sample count, which is what keeps the paper's
        // end-to-end speed-up at 2-36x rather than matvec's 30-1800x.
        let bfv_enc = samples as f64 * cpu.encrypt;
        let bfv_add = samples as f64 * cpu.encrypt * 0.02; // per-value ct add
        let bfv_mv = 2.0 * cpu.hmvp_seconds(features, samples, n_ring);
        let bfv_dec = 2.0 * cts_g * cpu.decrypt;

        let cham_mv = 2.0 * model.hmvp_seconds(features, samples);

        let fate_total = fate_enc + fate_add + fate_mv + fate_dec;
        let bfv_total = bfv_enc + bfv_add + bfv_mv + bfv_dec;
        let cham_total = bfv_enc + bfv_add + cham_mv + bfv_dec;

        println!("\n--- dataset {samples} x {features} ---");
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "system", "encrypt", "add_vec", "matvec", "decrypt", "total"
        );
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "Paillier/FATE",
            eng(fate_enc),
            eng(fate_add),
            eng(fate_mv),
            eng(fate_dec),
            eng(fate_total)
        );
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "B/FV CPU",
            eng(bfv_enc),
            eng(bfv_add),
            eng(bfv_mv),
            eng(bfv_dec),
            eng(bfv_total)
        );
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "B/FV + CHAM",
            eng(bfv_enc),
            eng(bfv_add),
            eng(cham_mv),
            eng(bfv_dec),
            eng(cham_total)
        );
        println!(
            "matvec speed-up CHAM vs CPU: {:>6.0}x   end-to-end vs FATE: {:>6.1}x   vs B/FV CPU: {:>5.1}x",
            bfv_mv / cham_mv,
            fate_total / cham_total,
            bfv_total / cham_total
        );
        datasets.push(JsonValue::Object(vec![
            ("samples".into(), JsonValue::from(samples)),
            ("features".into(), JsonValue::from(features)),
            ("fate_total_seconds".into(), JsonValue::Float(fate_total)),
            ("bfv_total_seconds".into(), JsonValue::Float(bfv_total)),
            ("cham_total_seconds".into(), JsonValue::Float(cham_total)),
            ("matvec_speedup".into(), JsonValue::Float(bfv_mv / cham_mv)),
            (
                "end_to_end_vs_fate".into(),
                JsonValue::Float(fate_total / cham_total),
            ),
        ]));
    }
    println!("\npaper claims: matvec 30-1800x vs CPU; end-to-end 2-36x; large");
    println!("matrices gain most because matvec dominates — see rows above.");

    run.param("degree", n_ring);
    run.metric("datasets", JsonValue::Array(datasets));
    run.finish();
}
