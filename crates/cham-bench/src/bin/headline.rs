//! The abstract's headline claims, recomputed end to end:
//!
//! * **1800×** speed-up for matrix-vector product (largest shape, CHAM vs
//!   the CPU software baseline),
//! * **36×** for HeteroLR end-to-end (vs FATE's Paillier),
//! * **144×** for Beaver triple generation (vs the Delphi baseline).
//!
//! Our CPU baseline is this repository's own Rust implementation, not the
//! paper's SEAL-on-Xeon-6130, so absolute ratios differ; the table prints
//! both side by side (see EXPERIMENTS.md for the discussion).

use cham_bench::{delphi_triple_seconds, BenchRun, CpuCosts};
use cham_he::params::ChamParams;
use cham_sim::pipeline::HmvpCycleModel;

fn main() {
    let mut run = BenchRun::from_env("headline");
    let params = ChamParams::cham_default().expect("paper params");
    let threads = run.threads();
    println!("measuring CPU per-op costs (N = 4096, {threads} thread(s))...");
    let cpu = CpuCosts::measure_with_threads(&params, threads);
    let model = HmvpCycleModel::cham();
    let n_ring = params.degree();

    // 1) HMVP speed-up at the largest evaluated shape (8192 x 8192).
    let (m, n) = (8192usize, 8192usize);
    let cpu_mv = cpu.hmvp_seconds(m, n, n_ring);
    let cham_mv = model.hmvp_seconds(m, n);
    let hmvp_x = cpu_mv / cham_mv;

    // 2) HeteroLR end-to-end (8192 x 8192): the FATE integration keeps
    // per-value ciphertexts, so encryption scales with the sample count
    // (see fig7ab_heterolr); matvec runs on the CPU vs CHAM.
    let host = m as f64 * cpu.encrypt * 1.02 + 2.0 * 2.0 * cpu.decrypt;
    let lr_cpu = host + 2.0 * cpu_mv;
    let lr_cham = host + 2.0 * cham_mv;
    let lr_x = lr_cpu / lr_cham;

    // 3) Beaver triples vs the original Delphi (BSGS diagonal on CPU).
    let delphi = delphi_triple_seconds(&cpu, m, n, n_ring);
    let beaver_x = delphi / cham_mv;

    println!("\n=== headline claims ===");
    println!("{:<34} {:>12} {:>12}", "claim", "paper", "this repo");
    println!(
        "{:<34} {:>12} {:>11.0}x",
        "HMVP speed-up (8192x8192)", "1800x", hmvp_x
    );
    println!(
        "{:<34} {:>12} {:>11.1}x",
        "HeteroLR end-to-end speed-up", "36x", lr_x
    );
    println!(
        "{:<34} {:>12} {:>11.0}x",
        "Beaver triples vs Delphi", "144x", beaver_x
    );
    println!();
    println!(
        "CPU matvec {:.2} s -> CHAM {:.4} s at 8192x8192 (modelled 300 MHz FPGA)",
        cpu_mv, cham_mv
    );
    println!("note: our CPU baseline is an optimized Rust implementation; the");
    println!("paper's ratios are against SEAL-class software on a Xeon 6130. The");
    println!("directions and orders of magnitude are the reproduction target.");

    run.param("rows", m)
        .param("cols", n)
        .param("degree", n_ring);
    run.metric("cpu_hmvp_seconds", cpu_mv)
        .metric("cham_hmvp_seconds", cham_mv)
        .metric("hmvp_speedup", hmvp_x)
        .metric("heterolr_speedup", lr_x)
        .metric("beaver_speedup", beaver_x);
    run.finish();
}
