//! Fig. 6 — HMVP throughput for different matrix shapes, CHAM vs GPU.
//!
//! Reproduced claims: throughput grows near-linearly with the row count
//! `m` before saturating; the column count matters little until a row
//! spans multiple ciphertexts (`n > N`); CHAM sustains ≈4.5× the GPU.

use cham_bench::{si, BenchRun};
use cham_sim::baselines::GpuModel;
use cham_sim::pipeline::HmvpCycleModel;
use cham_telemetry::json::JsonValue;

fn main() {
    let mut run = BenchRun::from_env("fig6_throughput");
    let model = HmvpCycleModel::cham();
    let gpu = GpuModel::default();
    println!("=== Fig. 6: HMVP throughput (MAC/s) vs matrix shape ===");
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>8}",
        "m", "n", "CHAM", "GPU", "ratio"
    );
    let ms = [256usize, 512, 1024, 2048, 4096, 8192];
    let ns = [256usize, 1024, 4096, 8192];
    let mut points = Vec::new();
    for &n in &ns {
        for &m in &ms {
            let cham = model.hmvp_throughput_macs(m, n);
            let g = gpu.hmvp_throughput_macs(&model, m, n);
            points.push(JsonValue::Object(vec![
                ("rows".into(), JsonValue::from(m)),
                ("cols".into(), JsonValue::from(n)),
                ("cham_macs".into(), JsonValue::Float(cham)),
                ("gpu_macs".into(), JsonValue::Float(g)),
            ]));
            println!(
                "{:>6} {:>6} {:>12}/s {:>12}/s {:>7.1}x",
                m,
                n,
                si(cham),
                si(g),
                cham / g
            );
        }
        println!();
    }
    // Shape checks the paper narrates.
    let grow = model.hmvp_throughput_macs(8192, 4096) / model.hmvp_throughput_macs(256, 4096);
    println!("throughput gain 256→8192 rows (n=4096): {grow:.2}x (near-linear then saturating)");
    let tile_penalty =
        model.hmvp_throughput_macs(4096, 4096) / model.hmvp_throughput_macs(4096, 8192);
    println!(
        "column-tiling penalty at n=8192 vs 4096: {tile_penalty:.2}x (rows span two ciphertexts)"
    );

    run.metric("row_scaling_gain", grow)
        .metric("column_tiling_penalty", tile_penalty)
        .metric("points", JsonValue::Array(points));
    run.finish();
}
