//! Self-healing under fire: kill a replica mid-run, keep serving,
//! restart it with a lost store, and measure anti-entropy repair until
//! the fleet converges back to full replication.
//!
//! The run is three acts over a 3-shard, 2-replica loopback fleet with
//! per-node persistent stores:
//!
//! 1. **Load**: a client uploads keys and a sharded matrix and serves
//!    verified HMVPs; halfway through, one replica is killed. Every
//!    request during the outage must still answer (`failed_requests ==
//!    0` — the surviving replica holds every band).
//! 2. **Condemn**: the heartbeat monitor probes the fleet until the
//!    victim is `Down`, and the verdict quarantines it in the router —
//!    the same wiring `cham-cluster` exposes to operators.
//! 3. **Rejoin + repair**: the victim restarts with a *fresh* (lost)
//!    store on a new port. Anti-entropy rounds diff inventories over
//!    `StoreList` and stream the missing segments replica→replica over
//!    resumable chunks until a round plans nothing. The headline metric
//!    is `time_to_converged_seconds`; the headline assertions are
//!    `repaired_segments > 0` and `post_repair_inventory_diff == 0`,
//!    plus decrypt-verified serving from the healed fleet.
//!
//! Record format: `cham-run-record/v1` (`--json`).

use cham_bench::BenchRun;
use cham_cluster::{repair, ClusterClient, HealthConfig, HealthMonitor, NodeHealth, Topology};
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::hmvp::{Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, SecretKey};
use cham_he::params::ChamParams;
use cham_serve::server::{Server, ServerConfig};
use cham_serve::shard::{HashRing, ShardSpec};
use cham_serve::{ClientConfig, RetryPolicy};
use rand::Rng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: u16 = 3;
const REPLICATION: u16 = 2;
const VNODES: u32 = 128;
/// Six one-dimension bands: every node owns several, so the killed
/// replica demonstrably loses segments the repair must move back.
const ROWS: usize = 6 * 256;
const COLS: usize = 256;
/// Requests before the kill and requests served during the outage.
const PRE_KILL: usize = 4;
const OUTAGE: usize = 6;
/// The slot killed, restarted with a lost store, and repaired.
const VICTIM: u16 = 2;
const MAX_ROUNDS: usize = 16;

fn store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cham-serve-repair-{}-{tag}", std::process::id()))
}

fn server_config(workers: usize, ring: &HashRing, slot: u16, dir: PathBuf) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 32,
        max_batch: 4,
        shard: Some(ShardSpec::new(ring.clone(), slot, 1)),
        node_id: 0x4E0 + u64::from(slot),
        store_dir: Some(dir),
        ..ServerConfig::default()
    }
}

fn main() {
    let mut run = BenchRun::from_env("serve_repair");
    let workers = run.threads();
    let params = Arc::new(ChamParams::insecure_test_default().expect("test params"));
    let mut rng = cham_bench::bench_rng();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let max_log = params.max_pack_log();
    let gkeys = GaloisKeys::generate_for_packing(&sk, max_log, &mut rng).expect("gk");
    let indices: Vec<usize> = (1..=max_log).map(|j| (1usize << j) + 1).collect();
    let hmvp = Hmvp::from_arc(Arc::clone(&params));
    let t = params.plain_modulus();
    let matrix = Matrix::random(ROWS, COLS, t.value(), &mut rng);
    let total = PRE_KILL + OUTAGE;

    let mut vectors = Vec::with_capacity(total);
    let mut inputs = Vec::with_capacity(total);
    for _ in 0..total {
        let v: Vec<u64> = (0..COLS).map(|_| rng.gen_range(0..t.value())).collect();
        let cts = hmvp.encrypt_vector(&v, &enc, &mut rng).expect("encrypt");
        vectors.push(v);
        inputs.push(cts);
    }

    // Fresh per-node stores (leftovers from a crashed previous run
    // would fake convergence).
    let dirs: Vec<PathBuf> = (0..NODES).map(|i| store_dir(&i.to_string())).collect();
    let rejoin_dir = store_dir("rejoin");
    for d in dirs.iter().chain([&rejoin_dir]) {
        let _ = std::fs::remove_dir_all(d);
    }

    let ring = HashRing::new(NODES, VNODES, REPLICATION);
    let mut servers: Vec<Option<Server>> = (0..NODES)
        .map(|i| {
            let config = server_config(workers, &ring, i, dirs[usize::from(i)].clone());
            Some(Server::start("127.0.0.1:0", Arc::clone(&params), &config).expect("server"))
        })
        .collect();
    let topology = Topology::new(
        servers
            .iter()
            .map(|s| s.as_ref().expect("just started").local_addr().to_string())
            .collect(),
    )
    .expect("topology")
    .with_vnodes(VNODES)
    .with_replication(REPLICATION)
    .with_epoch(1);

    println!(
        "serve_repair: {total} requests ({PRE_KILL} pre-kill + {OUTAGE} during the outage), \
         {ROWS}x{COLS} matrix over {NODES} shards x {REPLICATION} replicas, N = {}, \
         shard {VICTIM} killed, restarted with a lost store, and repaired",
        params.degree(),
    );

    let policy = RetryPolicy {
        max_attempts: 40,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(50),
        jitter_seed: 0x4E9A,
        total_deadline: Some(Duration::from_secs(60)),
        ..RetryPolicy::default()
    };
    let mut client = ClusterClient::with_config(
        topology.clone(),
        Arc::clone(&params),
        ClientConfig::default(),
        policy,
    );
    let key_id = client.load_keys(&gkeys, &indices).expect("load keys");
    let sharded = client
        .load_matrix_sharded(&matrix, params.degree())
        .expect("load matrix");
    let band_ids: Vec<u64> = sharded.bands.iter().map(|b| b.id).collect();

    // Act 1: serve, kill mid-run, keep serving. Failures are counted,
    // not fatal, so the zero-gate in the guard script is the judge.
    let mut failed = 0u64;
    let mut outage_latencies = Vec::with_capacity(OUTAGE);
    for i in 0..total {
        if i == PRE_KILL {
            servers[usize::from(VICTIM)]
                .take()
                .expect("victim")
                .shutdown();
        }
        let t0 = Instant::now();
        match client.hmvp_sharded(key_id, &sharded, &inputs[i], None) {
            Ok(result) => {
                if i >= PRE_KILL {
                    outage_latencies.push(t0.elapsed().as_nanos() as u64);
                }
                let got = hmvp.decrypt_result(&result, &dec).expect("decrypt");
                assert_eq!(
                    got,
                    matrix.mul_vector_mod(&vectors[i], t).expect("reference"),
                    "request {i} decrypted to a wrong product"
                );
            }
            Err(e) => {
                eprintln!("request {i} failed: {e}");
                failed += 1;
            }
        }
    }

    // Act 2: the heartbeat condemns the victim; the verdict feeds the
    // router's long quarantine.
    let mut monitor = HealthMonitor::new(
        topology.clone(),
        Arc::clone(&params),
        HealthConfig {
            interval: Duration::from_millis(50),
            suspect_after: 1,
            down_after: 2,
            recover_after: 1,
            probe_timeout: Duration::from_millis(200),
            ..HealthConfig::default()
        },
    );
    let mut quarantined = 0usize;
    while monitor.down_slots() != vec![VICTIM] {
        for tr in monitor.tick() {
            if tr.to == NodeHealth::Down {
                quarantined += client.quarantine_node(&tr.addr, None);
            }
        }
        std::thread::sleep(monitor.next_pause());
    }
    assert!(quarantined >= 1, "the dead node was in no route");

    // Act 3: rejoin with a lost store on a fresh port, then repair.
    let restarted = Server::start(
        "127.0.0.1:0",
        Arc::clone(&params),
        &server_config(workers, &ring, VICTIM, rejoin_dir.clone()),
    )
    .expect("restart");
    let new_addr = restarted.local_addr().to_string();
    servers[usize::from(VICTIM)] = Some(restarted);
    let mut nodes2 = topology.nodes().to_vec();
    nodes2[usize::from(VICTIM)] = new_addr;
    let topology2 = Topology::new(nodes2)
        .expect("patched topology")
        .with_vnodes(VNODES)
        .with_replication(REPLICATION)
        .with_epoch(1);

    let repair_cfg = ClientConfig::default();
    let repair_start = Instant::now();
    let mut repaired = 0u64;
    let mut chunks_sent = 0u64;
    let mut rounds = 0u64;
    loop {
        let (plan, report) = repair::repair_round(&topology2, &params, &repair_cfg);
        repaired += report.repaired_segments;
        chunks_sent += report.chunks_sent;
        if plan.is_converged() {
            break;
        }
        rounds += 1;
        assert!(
            (rounds as usize) < MAX_ROUNDS,
            "repair failed to converge in {MAX_ROUNDS} rounds"
        );
    }
    let time_to_converged = repair_start.elapsed().as_secs_f64();

    // Converged exactly: diffing against the known upload set (not just
    // what the fleet reports) finds nothing left to move.
    let inventories = repair::fetch_inventories(&topology2, &params, &repair_cfg);
    let residual = repair::plan(&topology2.ring(), &inventories, &band_ids);
    let inventory_diff = (residual.transfers.len() + residual.unsourced.len()) as u64;

    // The healed fleet serves, decrypt-verified, through a fresh client.
    let mut healed = ClusterClient::with_config(
        topology2,
        Arc::clone(&params),
        ClientConfig::default(),
        RetryPolicy {
            jitter_seed: 0x4E9B,
            ..RetryPolicy::default()
        },
    );
    assert_eq!(healed.load_keys(&gkeys, &indices).expect("rekey"), key_id);
    for i in 0..2 {
        let result = healed
            .hmvp_sharded(key_id, &sharded, &inputs[i], None)
            .expect("post-repair request");
        let got = hmvp.decrypt_result(&result, &dec).expect("decrypt");
        assert_eq!(
            got,
            matrix.mul_vector_mod(&vectors[i], t).expect("reference"),
            "post-repair request {i} decrypted to a wrong product"
        );
    }

    outage_latencies.sort_unstable();
    let outage_p50 = outage_latencies
        .get(outage_latencies.len() / 2)
        .copied()
        .unwrap_or(0);
    println!(
        "outage: failed {failed}, p50 {:.2} ms; repair: {repaired} segments, \
         {chunks_sent} chunks, {rounds} round(s), converged in {time_to_converged:.3} s, \
         residual diff {inventory_diff}",
        outage_p50 as f64 / 1e6,
    );

    assert_eq!(failed, 0, "the outage lost {failed} of {total} requests");
    assert!(repaired > 0, "the rejoin transferred no segments");
    assert!(chunks_sent > 0, "repair must ride the chunked path");
    assert_eq!(inventory_diff, 0, "repair left the fleet unconverged");

    for s in servers.iter_mut().filter_map(Option::take) {
        s.shutdown();
    }
    for d in dirs.iter().chain([&rejoin_dir]) {
        let _ = std::fs::remove_dir_all(d);
    }

    run.param("nodes", u64::from(NODES))
        .param("replication", u64::from(REPLICATION))
        .param("vnodes", u64::from(VNODES))
        .param("rows", ROWS)
        .param("cols", COLS)
        .param("requests", total)
        .param("degree", params.degree())
        .param("workers", workers)
        .param("bands", band_ids.len());
    run.metric("failed_requests", failed)
        .metric("time_to_converged_seconds", time_to_converged)
        .metric("repaired_segments", repaired)
        .metric("repair_chunks_sent", chunks_sent)
        .metric("repair_rounds", rounds)
        .metric("post_repair_inventory_diff", inventory_diff)
        .metric("outage_latency_p50_ns", outage_p50);
    run.finish();
}
