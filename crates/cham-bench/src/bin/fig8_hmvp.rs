//! Fig. 8 — HMVP performance: CPU vs GPU vs CHAM, at n = 256 and n = 4096.
//!
//! The CPU series is measured from this repository's software stack and
//! extrapolated per row; CHAM comes from the cycle model; the GPU from the
//! calibrated ratio model. Reproduced claims: >10× over CPU with more than
//! 90% of compute offloaded, larger matrices gain more, and CHAM latency
//! is 0.3–0.7× the GPU's.

use cham_bench::{eng, BenchRun, CpuCosts, DotPhaseBench};
use cham_he::params::ChamParams;
use cham_sim::baselines::GpuModel;
use cham_sim::pipeline::HmvpCycleModel;
use cham_telemetry::histogram::LiveHistogram;
use cham_telemetry::json::JsonValue;
use cham_telemetry::span::{self, SpanRecorder, TraceId};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut run = BenchRun::from_env("fig8_hmvp");
    let params = ChamParams::cham_default().expect("paper params");
    let threads = run.threads();
    let backend = cham_math::Backend::active();
    println!(
        "SIMD backend: {backend} ({} lanes; override with CHAM_SIMD)",
        backend.lanes()
    );
    println!("measuring CPU per-op costs (N = 4096, {threads} thread(s))...");
    let cpu = CpuCosts::measure_with_threads(&params, threads);
    let model = HmvpCycleModel::cham();
    let gpu = GpuModel::default();

    let mut points = Vec::new();
    for n in [256usize, 4096] {
        println!(
            "\n=== Fig. 8{}: HMVP latency, no. of columns = {n} ===",
            if n == 256 { "a" } else { "b" }
        );
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
            "rows", "CPU", "GPU", "CHAM", "vs CPU", "vs GPU"
        );
        for m in [256usize, 1024, 4096, 8192] {
            let cpu_s = cpu.hmvp_seconds(m, n, params.degree());
            let cham_s = model.hmvp_seconds(m, n);
            let gpu_s = gpu.hmvp_seconds(&model, m, n);
            points.push(JsonValue::Object(vec![
                ("rows".into(), JsonValue::from(m)),
                ("cols".into(), JsonValue::from(n)),
                ("cpu_seconds".into(), JsonValue::Float(cpu_s)),
                ("gpu_seconds".into(), JsonValue::Float(gpu_s)),
                ("cham_seconds".into(), JsonValue::Float(cham_s)),
                ("speedup_vs_cpu".into(), JsonValue::Float(cpu_s / cham_s)),
                ("ratio_vs_gpu".into(), JsonValue::Float(cham_s / gpu_s)),
            ]));
            println!(
                "{:>6} {:>14} {:>14} {:>14} {:>9.0}x {:>9.2}x",
                m,
                eng(cpu_s),
                eng(gpu_s),
                eng(cham_s),
                cpu_s / cham_s,
                cham_s / gpu_s
            );
        }
    }
    println!();
    println!("paper claims: >10x over the CPU baseline, 0.3x–0.7x of GPU latency,");
    println!("higher gains for matrices with more rows — see ratio columns.");

    // Measured (not modelled) dot-product-phase speedup: the same rows ×
    // N workload, first capped at 1 row task, then fanned out at the
    // requested cap on the shared pool. On a single-core host this stays
    // ≈ 1.0 regardless of --threads; the pool's benefit needs real cores.
    let rows = (threads.max(1) * 16).max(32);
    let bench = DotPhaseBench::prepare(&params, rows);
    let serial_s = bench.seconds(1, 3);
    let parallel_s = bench.seconds(threads, 3);
    let dot_speedup = serial_s / parallel_s;
    println!();
    println!(
        "dot-product phase ({rows} rows): {} serial vs {} at {threads} thread(s) => {dot_speedup:.2}x",
        eng(serial_s),
        eng(parallel_s),
    );

    // Fused-vs-unfused ablation on the same workload: the unfused
    // reference kernel does strict per-term MODMUL + MODADD with per-term
    // allocations; the fused kernel accumulates in u128 lanes over
    // worker-pinned scratch. Both serial, so the ratio isolates the
    // lazy-accumulation + scratch-reuse gain from pool parallelism. A
    // second, wide shape (many column tiles per row) exercises the deep
    // accumulation regime the fused kernel targets — one-tile rows are
    // dominated by the shared rescale/extract stage.
    let unfused_s = bench.seconds_unfused(3);
    let fused_speedup = unfused_s / serial_s;
    println!(
        "dot-product phase ({rows} rows, 1 tile/row): {} unfused vs {} fused => {fused_speedup:.2}x",
        eng(unfused_s),
        eng(serial_s),
    );
    let n = params.degree();
    let (wide_rows, wide_tiles) = (8usize, 8usize);
    let wide = DotPhaseBench::prepare_cols(&params, wide_rows, wide_tiles * n);
    let wide_fused_s = wide.seconds(1, 3);
    let wide_unfused_s = wide.seconds_unfused(3);
    let wide_fused_speedup = wide_unfused_s / wide_fused_s;
    println!(
        "dot-product phase ({wide_rows} rows, {wide_tiles} tiles/row): {} unfused vs {} fused => {wide_fused_speedup:.2}x",
        eng(wide_unfused_s),
        eng(wide_fused_s),
    );

    // Per-rep latency distribution + kernel phase attribution for the
    // serial dot phase, via the same tracing layer the serving stack
    // uses: each rep runs under a SpanRecorder, so the in-kernel
    // dot/rescale spans accumulate while a live histogram captures the
    // rep-to-rep spread that a best-of summary hides.
    const DIST_REPS: usize = 20;
    let rep_hist = LiveHistogram::new();
    let recorder = Arc::new(SpanRecorder::new(TraceId::generate()));
    for _ in 0..DIST_REPS {
        let t0 = Instant::now();
        span::with_recorder(Arc::clone(&recorder), || {
            let _ = bench.seconds(1, 1);
        });
        rep_hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let rep_snap = rep_hist.snapshot("dot_phase_rep", "ns");
    let phase_spans = recorder.finish();
    println!();
    println!(
        "dot-phase rep distribution ({DIST_REPS} reps): p50 {} p99 {} p999 {}",
        eng(rep_snap.percentile(0.50) / 1e9),
        eng(rep_snap.percentile(0.99) / 1e9),
        eng(rep_snap.percentile(0.999) / 1e9),
    );
    for p in &phase_spans {
        println!(
            "  kernel phase {:<10} {} across {} spans",
            p.name,
            eng(p.dur_ns as f64 / 1e9),
            p.count
        );
    }

    run.param("degree", params.degree())
        .param("clock_hz", model.config().clock_hz);
    run.metric("rep_count", DIST_REPS);
    run.metric("rep_p50_ns", JsonValue::Float(rep_snap.percentile(0.50)));
    run.metric("rep_p99_ns", JsonValue::Float(rep_snap.percentile(0.99)));
    run.metric("rep_p999_ns", JsonValue::Float(rep_snap.percentile(0.999)));
    for p in &phase_spans {
        run.metric(format!("phase_ns.{}", p.name), p.dur_ns);
    }
    run.metric("points", JsonValue::Array(points));
    run.metric("dot_phase_rows", rows);
    run.metric("dot_phase_serial_seconds", JsonValue::Float(serial_s));
    run.metric("dot_phase_parallel_seconds", JsonValue::Float(parallel_s));
    run.metric("dot_phase_speedup", JsonValue::Float(dot_speedup));
    run.metric("dot_phase_unfused_seconds", JsonValue::Float(unfused_s));
    run.metric("dot_phase_fused_speedup", JsonValue::Float(fused_speedup));
    run.metric("dot_phase_wide_tiles", wide_tiles);
    run.metric(
        "dot_phase_wide_fused_seconds",
        JsonValue::Float(wide_fused_s),
    );
    run.metric(
        "dot_phase_wide_unfused_seconds",
        JsonValue::Float(wide_unfused_s),
    );
    run.metric(
        "dot_phase_wide_fused_speedup",
        JsonValue::Float(wide_fused_speedup),
    );
    run.finish();
}
