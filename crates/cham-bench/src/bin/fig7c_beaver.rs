//! Fig. 7c — Beaver triple generation: CHAM vs the original Delphi path.
//!
//! Delphi's preprocessing generates one matrix triple per linear layer via
//! a *batch-encoded* HMVP on the CPU (SEAL). The paper replaces it with
//! the coefficient-encoded HMVP on CHAM and reports 49–144× speed-up. We
//! rebuild both cost models from measured per-op CPU costs:
//!
//! * Delphi baseline: per row, one slot-wise multiply plus `log2(N/2)`
//!   rotations (each an automorphism + key-switch) on the CPU,
//! * CHAM: the cycle model's HMVP time (mask subtraction is free in the
//!   packed domain).

use cham_bench::{delphi_triple_seconds, eng, BenchRun, CpuCosts};
use cham_he::params::ChamParams;
use cham_sim::pipeline::HmvpCycleModel;
use cham_telemetry::json::JsonValue;

fn main() {
    let mut run = BenchRun::from_env("fig7c_beaver");
    let params = ChamParams::cham_default().expect("paper params");
    println!("measuring CPU per-op costs (N = 4096)...");
    let cpu = CpuCosts::measure(&params);
    let model = HmvpCycleModel::cham();
    let n_ring = params.degree();

    println!("\n=== Fig. 7c: Beaver triple generation time per batch of layers ===");
    println!(
        "{:>14} {:>8} {:>14} {:>14} {:>14} {:>8}",
        "layer (m x n)", "triples", "Delphi (CPU)", "coeff (CPU)", "CHAM", "speedup"
    );
    // Representative linear-layer shapes (Delphi evaluates CNN layers).
    let layers = [
        (1024usize, 1024usize, 16usize),
        (2048, 2048, 16),
        (4096, 4096, 16),
        (8192, 4096, 16),
    ];
    let mut layer_metrics = Vec::new();
    for (m, n, count) in layers {
        // Delphi baseline: BSGS diagonal matvec on the CPU (see lib docs).
        let delphi = count as f64 * delphi_triple_seconds(&cpu, m, n, n_ring);
        // Improved algorithm, still on CPU.
        let coeff_cpu = count as f64 * cpu.hmvp_seconds(m, n, n_ring);
        // Improved algorithm on CHAM.
        let cham = count as f64 * model.hmvp_seconds(m, n);
        println!(
            "{:>9}x{:<5} {:>8} {:>14} {:>14} {:>14} {:>7.0}x",
            m,
            n,
            count,
            eng(delphi),
            eng(coeff_cpu),
            eng(cham),
            delphi / cham
        );
        layer_metrics.push(JsonValue::Object(vec![
            ("rows".into(), JsonValue::from(m)),
            ("cols".into(), JsonValue::from(n)),
            ("triples".into(), JsonValue::from(count)),
            ("delphi_seconds".into(), JsonValue::Float(delphi)),
            ("coeff_cpu_seconds".into(), JsonValue::Float(coeff_cpu)),
            ("cham_seconds".into(), JsonValue::Float(cham)),
            ("speedup".into(), JsonValue::Float(delphi / cham)),
        ]));
    }
    println!("\npaper claim: 49x-144x over the original Delphi implementation.");
    println!("(absolute CPU costs differ from the paper's Xeon 6130 + SEAL; the");
    println!("ordering and order of magnitude are the reproduced shape.)");

    run.param("degree", n_ring);
    run.metric("layers", JsonValue::Array(layer_metrics));
    run.finish();
}
