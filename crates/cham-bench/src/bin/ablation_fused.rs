//! Ablation: fused whole-HMVP pipeline vs invoking individual HE operators
//! (the quantitative form of the paper's §III-B roofline argument:
//! "invoking these HE operations individually will cause intensive memory
//! access and therefore degrade overall performance").
//!
//! The op-by-op alternative pays an off-chip round trip per operator (the
//! intermediate ciphertexts cannot stay resident when each operator is a
//! separate kernel), so each stage is bounded by
//! `max(compute, bytes/bandwidth)`; the fused pipeline streams only the
//! matrix plaintexts.

use cham_bench::{eng, si, BenchRun};
use cham_sim::memory::DdrModel;
use cham_sim::pipeline::{HmvpCycleModel, RingShape};
use cham_telemetry::json::JsonValue;

fn main() {
    let mut run = BenchRun::from_env("ablation_fused");
    let model = HmvpCycleModel::cham();
    let shape = RingShape::cham();
    let ddr = DdrModel::default();
    let clock = 300e6;
    let tn = shape.ntt_cycles(4) as f64 / clock; // one limb transform
    let poly_bytes = (shape.degree * 8) as f64;
    let bw = ddr.effective();

    println!("=== ablation: fused HMVP pipeline vs op-by-op invocation ===\n");
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>8}",
        "m", "n", "fused", "op-by-op", "penalty"
    );
    let mut points = Vec::new();
    for (m, n) in [(1024usize, 4096usize), (4096, 4096), (8192, 4096)] {
        let fused = model.hmvp_seconds(m, n);
        // Op-by-op: per row, each stage reads and writes its operands
        // off-chip. Stage traffic (augmented ct = 6 polys, pt = 3 polys):
        //   NTT(pt): r/w 3+3; MULT: r 6+3 w 6; INTT: r/w 6+6;
        //   RESCALE: r 6 w 4;  per reduction: r/w ≈ 8+8 plus KSK 12.
        let la = shape.aug_limbs as f64;
        let row_io_polys = (3.0 + 3.0) + (6.0 + 3.0 + 6.0) + (6.0 + 6.0) + (6.0 + 4.0);
        let row_io = row_io_polys * poly_bytes / bw;
        let row_compute = (la + 2.0 * la) * tn / 6.0 // transforms on 6 units
            + 2.0 * la * poly_bytes / 8.0 / (4.0 * clock); // pointwise on 4 lanes
        let red_io = (8.0 + 8.0 + 12.0) * poly_bytes / bw;
        let red_compute = tn;
        let op_by_op = m as f64 * (row_io.max(row_compute) + row_io)
            + (m as f64 - 1.0) * (red_io.max(red_compute) + red_io);
        println!(
            "{:>6} {:>6} {:>14} {:>14} {:>7.1}x",
            m,
            n,
            eng(fused),
            eng(op_by_op),
            op_by_op / fused
        );
        points.push(JsonValue::Object(vec![
            ("rows".into(), JsonValue::from(m)),
            ("cols".into(), JsonValue::from(n)),
            ("fused_seconds".into(), JsonValue::Float(fused)),
            ("op_by_op_seconds".into(), JsonValue::Float(op_by_op)),
            ("penalty".into(), JsonValue::Float(op_by_op / fused)),
        ]));
    }
    println!(
        "\n(effective DDR bandwidth {}B/s; one limb transform {} at 300 MHz)",
        si(bw),
        eng(tn)
    );
    println!("the fused pipeline's advantage is the paper's core §III-B design claim.");

    run.param("clock_hz", clock)
        .param("ddr_bandwidth_bytes_per_sec", bw);
    run.metric("points", JsonValue::Array(points));
    run.finish();
}
