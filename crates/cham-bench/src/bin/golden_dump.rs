//! Emits RTL golden vectors for the CHAM functional units on stdout.
//!
//! ```sh
//! cargo run -p cham-bench --release --bin golden_dump > cham_golden.txt
//! ```
//!
//! Arguments (positional, optional): `degree` (default 4096), `per_unit`
//! vector count (default 2), `seed` (default 1).

use cham_bench::BenchRun;
use cham_math::modulus::{Modulus, Q0};
use cham_sim::golden::GoldenGenerator;

fn main() {
    // Positional args keep their historic meaning; `--json <path>` is
    // routed to the shared benchmark CLI.
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            flags.push(a);
            flags.extend(args.next());
        } else {
            positional.push(a);
        }
    }
    let mut run = BenchRun::from_args("golden_dump", flags);
    let degree: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let per_unit: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    let q = Modulus::new(Q0).expect("Q0 is valid");
    let mut generator = GoldenGenerator::new(degree, q, seed);
    match generator.full_dump(per_unit) {
        Ok(dump) => {
            println!("# CHAM golden vectors: degree={degree} q={Q0} seed={seed}");
            print!("{dump}");
            run.param("degree", degree)
                .param("per_unit", per_unit)
                .param("seed", seed)
                .param("q", Q0);
            run.metric("dump_bytes", dump.len());
            run.finish();
        }
        Err(e) => {
            eprintln!("golden-vector generation failed: {e}");
            std::process::exit(1);
        }
    }
}
