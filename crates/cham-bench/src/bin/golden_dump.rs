//! Emits RTL golden vectors for the CHAM functional units on stdout.
//!
//! ```sh
//! cargo run -p cham-bench --release --bin golden_dump > cham_golden.txt
//! ```
//!
//! Arguments (positional, optional): `degree` (default 4096), `per_unit`
//! vector count (default 2), `seed` (default 1).

use cham_math::modulus::{Modulus, Q0};
use cham_sim::golden::GoldenGenerator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let per_unit: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    let q = Modulus::new(Q0).expect("Q0 is valid");
    let mut generator = GoldenGenerator::new(degree, q, seed);
    match generator.full_dump(per_unit) {
        Ok(dump) => {
            println!("# CHAM golden vectors: degree={degree} q={Q0} seed={seed}");
            print!("{dump}");
        }
        Err(e) => {
            eprintln!("golden-vector generation failed: {e}");
            std::process::exit(1);
        }
    }
}
