//! Table III — single-NTT-module comparison, plus the §V-B.1 throughput
//! claims (195k NTT ops/s vs HEAX 117k vs GPU 45k; key-switch 65k ops/s,
//! 105× the CPU).
//!
//! The CPU column is *measured* on this machine from the software stack;
//! the ratio will differ from the paper's Xeon 6130 but the ordering and
//! magnitude reproduce.

use cham_bench::{si, BenchRun, CpuCosts};
use cham_he::params::ChamParams;
use cham_math::NttTable;
use cham_sim::baselines::published_ntt;
use cham_sim::pipeline::HmvpCycleModel;
use cham_sim::report::table3;
use std::time::Instant;

/// Best-of-3 seconds for `reps` transforms of one N-point limb.
fn time_ntt(reps: usize, mut transform: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            transform();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut run = BenchRun::from_env("table3_ntt");
    println!("=== Table III: comparison of a single NTT module ===");
    print!("{}", table3());
    println!();

    let model = HmvpCycleModel::cham();
    println!("=== NTT / key-switch throughput (paper §V-B.1) ===");
    println!(
        "CHAM NTT ops/s (modelled):      {} (paper: 195k)",
        si(model.ntt_ops_per_sec())
    );
    println!(
        "HEAX NTT ops/s (published):     {}",
        si(published_ntt::HEAX_NTT_OPS_PER_SEC)
    );
    println!(
        "GPU NTT ops/s (published):      {}",
        si(published_ntt::GPU_NTT_OPS_PER_SEC)
    );
    println!(
        "CHAM key-switch ops/s:          {} (paper: 65k)",
        si(model.keyswitch_ops_per_sec())
    );
    println!();

    println!("measuring CPU baseline on this machine (N = 4096)...");
    let params = ChamParams::cham_default().expect("paper params");
    let cpu = CpuCosts::measure(&params);
    let cpu_ks = cpu.keyswitch_ops_per_sec();
    let cpu_ntt = cpu.ntt_ops_per_sec(3);
    println!("CPU NTT ops/s (measured):       {}", si(cpu_ntt));
    println!("CPU key-switch ops/s (measured):{}", si(cpu_ks));
    println!(
        "CHAM/CPU key-switch speed-up:   {:.0}x (paper: 105x on Xeon 6130)",
        model.keyswitch_ops_per_sec() / cpu_ks
    );

    // Strict-vs-lazy ablation on one single-limb N = 4096 forward NTT:
    // the same table, the same buffer, only the reduction discipline
    // differs (canonical per butterfly vs Harvey [0, 4q) + one final pass).
    let n = params.degree();
    let q = params.ciphertext_context().moduli()[0];
    let table = NttTable::new(n, q).expect("NTT table");
    let mut poly: Vec<u64> = (0..n as u64).map(|i| i % q.value()).collect();
    let reps = 200;
    let strict_s = time_ntt(reps, || table.forward_strict(&mut poly));
    let lazy_s = time_ntt(reps, || table.forward(&mut poly));
    let lazy_speedup = strict_s / lazy_s;
    println!();
    println!("=== Ablation: strict vs lazy reduction (single-limb forward NTT, N = {n}) ===");
    println!("{:>24} {:>14} {:>14}", "datapath", "sec/transform", "ops/s");
    println!(
        "{:>24} {:>14.3e} {:>14}",
        "strict (reference)",
        strict_s / reps as f64,
        si(reps as f64 / strict_s)
    );
    println!(
        "{:>24} {:>14.3e} {:>14}",
        "lazy (production)",
        lazy_s / reps as f64,
        si(reps as f64 / lazy_s)
    );
    println!("lazy-reduction speedup:         {lazy_speedup:.2}x");

    run.param("degree", params.degree());
    run.metric("ntt_strict_seconds", strict_s / reps as f64)
        .metric("ntt_lazy_seconds", lazy_s / reps as f64)
        .metric("ntt_lazy_speedup", lazy_speedup);
    run.metric("cham_ntt_ops_per_sec", model.ntt_ops_per_sec())
        .metric("cham_keyswitch_ops_per_sec", model.keyswitch_ops_per_sec())
        .metric("cpu_ntt_ops_per_sec", cpu_ntt)
        .metric("cpu_keyswitch_ops_per_sec", cpu_ks)
        .metric("keyswitch_speedup", model.keyswitch_ops_per_sec() / cpu_ks);
    run.finish();
}
