//! Table III — single-NTT-module comparison, plus the §V-B.1 throughput
//! claims (195k NTT ops/s vs HEAX 117k vs GPU 45k; key-switch 65k ops/s,
//! 105× the CPU).
//!
//! The CPU column is *measured* on this machine from the software stack;
//! the ratio will differ from the paper's Xeon 6130 but the ordering and
//! magnitude reproduce.

use cham_bench::{si, BenchRun, CpuCosts};
use cham_he::params::ChamParams;
use cham_math::poly::LAZY_ACC_BOUND;
use cham_math::{simd, Backend, NttTable};
use cham_sim::baselines::published_ntt;
use cham_sim::pipeline::HmvpCycleModel;
use cham_sim::report::table3;
use std::time::Instant;

/// Best-of-3 seconds for `reps` transforms of one N-point limb.
fn time_ntt(reps: usize, mut transform: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            transform();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut run = BenchRun::from_env("table3_ntt");
    println!("=== Table III: comparison of a single NTT module ===");
    print!("{}", table3());
    println!();

    let model = HmvpCycleModel::cham();
    println!("=== NTT / key-switch throughput (paper §V-B.1) ===");
    println!(
        "CHAM NTT ops/s (modelled):      {} (paper: 195k)",
        si(model.ntt_ops_per_sec())
    );
    println!(
        "HEAX NTT ops/s (published):     {}",
        si(published_ntt::HEAX_NTT_OPS_PER_SEC)
    );
    println!(
        "GPU NTT ops/s (published):      {}",
        si(published_ntt::GPU_NTT_OPS_PER_SEC)
    );
    println!(
        "CHAM key-switch ops/s:          {} (paper: 65k)",
        si(model.keyswitch_ops_per_sec())
    );
    println!();

    println!("measuring CPU baseline on this machine (N = 4096)...");
    let params = ChamParams::cham_default().expect("paper params");
    let cpu = CpuCosts::measure(&params);
    let cpu_ks = cpu.keyswitch_ops_per_sec();
    let cpu_ntt = cpu.ntt_ops_per_sec(3);
    println!("CPU NTT ops/s (measured):       {}", si(cpu_ntt));
    println!("CPU key-switch ops/s (measured):{}", si(cpu_ks));
    println!(
        "CHAM/CPU key-switch speed-up:   {:.0}x (paper: 105x on Xeon 6130)",
        model.keyswitch_ops_per_sec() / cpu_ks
    );

    // Strict-vs-lazy ablation on one single-limb N = 4096 forward NTT:
    // the same table, the same buffer, only the reduction discipline
    // differs (canonical per butterfly vs Harvey [0, 4q) + one final pass).
    let n = params.degree();
    let q = params.ciphertext_context().moduli()[0];
    let table = NttTable::new(n, q).expect("NTT table");
    let mut poly: Vec<u64> = (0..n as u64).map(|i| i % q.value()).collect();
    let reps = 200;
    let strict_s = time_ntt(reps, || table.forward_strict(&mut poly));
    let lazy_s = time_ntt(reps, || table.forward(&mut poly));
    let lazy_speedup = strict_s / lazy_s;
    println!();
    println!("=== Ablation: strict vs lazy reduction (single-limb forward NTT, N = {n}) ===");
    println!("{:>24} {:>14} {:>14}", "datapath", "sec/transform", "ops/s");
    println!(
        "{:>24} {:>14.3e} {:>14}",
        "strict (reference)",
        strict_s / reps as f64,
        si(reps as f64 / strict_s)
    );
    println!(
        "{:>24} {:>14.3e} {:>14}",
        "lazy (production)",
        lazy_s / reps as f64,
        si(reps as f64 / lazy_s)
    );
    println!("lazy-reduction speedup:         {lazy_speedup:.2}x");

    // Scalar-vs-SIMD ablation: the same lazy datapath, pinned to the scalar
    // backend and to the host's best vector backend via `with_backend` (the
    // in-process equivalent of two `CHAM_SIMD=scalar`/`=auto` runs), over
    // all four hot kernels. `NttTable::new` above already captured the
    // env-selected backend, so `ntt_lazy_seconds` stays the production
    // path; the rows below isolate the vectorization factor.
    let simd_backend = Backend::detect_auto();
    let scalar_table = NttTable::with_backend(n, q, Backend::Scalar).expect("NTT table");
    let simd_table = NttTable::with_backend(n, q, simd_backend).expect("NTT table");
    let fwd_scalar_s = time_ntt(reps, || scalar_table.forward(&mut poly));
    let fwd_simd_s = time_ntt(reps, || simd_table.forward(&mut poly));
    let inv_scalar_s = time_ntt(reps, || scalar_table.inverse(&mut poly));
    let inv_simd_s = time_ntt(reps, || simd_table.inverse(&mut poly));
    // Element-wise kernels on single-limb N-length slices. The mul-lazy
    // constants must be canonical (< q); the MAC runs a full
    // LAZY_ACC_BOUND window (1 write + 15 accumulates) per rep so the
    // u128 lanes never outrun their headroom proof.
    let w: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q.value()).collect();
    let ws: Vec<u64> = w.iter().map(|&x| q.shoup(x)).collect();
    let mul_scalar_s = time_ntt(reps, || {
        simd::mul_shoup_lazy_slice(Backend::Scalar, &mut poly, &w, &ws, &q);
    });
    let mul_simd_s = time_ntt(reps, || {
        simd::mul_shoup_lazy_slice(simd_backend, &mut poly, &w, &ws, &q);
    });
    let mut acc = vec![0u128; n];
    let mut mac_window = |backend: Backend| {
        simd::mac_write(backend, &mut acc, &w, &w);
        for _ in 1..LAZY_ACC_BOUND {
            simd::mac_accumulate(backend, &mut acc, &w, &w);
        }
    };
    let mac_reps = reps / LAZY_ACC_BOUND + 1;
    let mac_scalar_s = time_ntt(mac_reps, || mac_window(Backend::Scalar));
    let mac_simd_s = time_ntt(mac_reps, || mac_window(simd_backend));
    let speedup_fwd = fwd_scalar_s / fwd_simd_s;
    let speedup_inv = inv_scalar_s / inv_simd_s;
    let speedup_mul = mul_scalar_s / mul_simd_s;
    let speedup_mac = mac_scalar_s / mac_simd_s;
    println!();
    println!(
        "=== Ablation: scalar vs SIMD backend `{}` ({} lanes, N = {n}) ===",
        simd_backend,
        simd_backend.lanes()
    );
    println!(
        "{:>24} {:>14} {:>14} {:>10}",
        "kernel", "scalar s", "simd s", "speedup"
    );
    let per = reps as f64;
    let mac_per = (mac_reps * LAZY_ACC_BOUND) as f64;
    for (name, s, v, sp) in [
        (
            "forward NTT",
            fwd_scalar_s / per,
            fwd_simd_s / per,
            speedup_fwd,
        ),
        (
            "inverse NTT",
            inv_scalar_s / per,
            inv_simd_s / per,
            speedup_inv,
        ),
        (
            "mul_shoup_lazy",
            mul_scalar_s / per,
            mul_simd_s / per,
            speedup_mul,
        ),
        (
            "mac (fused dot)",
            mac_scalar_s / mac_per,
            mac_simd_s / mac_per,
            speedup_mac,
        ),
    ] {
        println!("{name:>24} {s:>14.3e} {v:>14.3e} {sp:>9.2}x");
    }

    run.param("degree", params.degree());
    run.param("simd_ablation_backend", simd_backend.name());
    run.metric("ntt_simd_seconds", fwd_simd_s / reps as f64)
        .metric("simd_speedup_fwd_ntt", speedup_fwd)
        .metric("simd_speedup_inv_ntt", speedup_inv)
        .metric("simd_speedup_mul_lazy", speedup_mul)
        .metric("simd_speedup_mac", speedup_mac);
    run.metric("ntt_strict_seconds", strict_s / reps as f64)
        .metric("ntt_lazy_seconds", lazy_s / reps as f64)
        .metric("ntt_lazy_speedup", lazy_speedup);
    run.metric("cham_ntt_ops_per_sec", model.ntt_ops_per_sec())
        .metric("cham_keyswitch_ops_per_sec", model.keyswitch_ops_per_sec())
        .metric("cpu_ntt_ops_per_sec", cpu_ntt)
        .metric("cpu_keyswitch_ops_per_sec", cpu_ks)
        .metric("keyswitch_speedup", model.keyswitch_ops_per_sec() / cpu_ks);
    run.finish();
}
