//! Table II — resource utilisation on the Xilinx VU9P.

use cham_sim::config::ChamConfig;
use cham_sim::report::{table2, utilization_summary};
use cham_sim::resources::{FpgaDevice, ResourceModel};

fn main() {
    let model = ResourceModel::default();
    let cfg = ChamConfig::cham();
    println!("=== Table II: resource utilization on the Xilinx VU9P ===");
    print!("{}", table2(&model, &cfg));
    println!();
    println!("{}", utilization_summary(&model, &cfg, &FpgaDevice::vu9p()));
    println!("paper's P&R criterion: every class below 75% (met)");
}
