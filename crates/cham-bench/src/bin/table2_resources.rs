//! Table II — resource utilisation on the Xilinx VU9P.

use cham_bench::BenchRun;
use cham_sim::config::ChamConfig;
use cham_sim::report::{table2, utilization_summary};
use cham_sim::resources::{FpgaDevice, ResourceModel};

fn main() {
    let mut run = BenchRun::from_env("table2_resources");
    let model = ResourceModel::default();
    let cfg = ChamConfig::cham();
    println!("=== Table II: resource utilization on the Xilinx VU9P ===");
    print!("{}", table2(&model, &cfg));
    println!();
    println!("{}", utilization_summary(&model, &cfg, &FpgaDevice::vu9p()));
    println!("paper's P&R criterion: every class below 75% (met)");

    let device = FpgaDevice::vu9p();
    let usage = model.chip(&cfg);
    run.param("device", device.name);
    run.metric(
        "lut_fraction",
        usage.lut as f64 / device.capacity.lut as f64,
    )
    .metric("ff_fraction", usage.ff as f64 / device.capacity.ff as f64)
    .metric(
        "dsp_fraction",
        usage.dsp as f64 / device.capacity.dsp as f64,
    )
    .metric(
        "bram_fraction",
        usage.bram as f64 / device.capacity.bram as f64,
    )
    .metric("max_utilization", usage.max_utilization(&device));
    run.finish();
}
