//! Environmental sensitivity of the shipped design (ablation bench):
//! throughput vs clock frequency, DDR bandwidth, and engine count.

use cham_bench::{si, BenchRun};
use cham_sim::config::ChamConfig;
use cham_sim::sensitivity::Sensitivity;

fn main() {
    let mut run = BenchRun::from_env("sensitivity");
    let s = Sensitivity::new(ChamConfig::cham());
    println!("=== sensitivity analysis (HMVP 4096x4096, shipped engine) ===\n");

    println!("clock frequency:");
    for p in s
        .sweep_clock(&[100e6, 200e6, 300e6, 450e6, 600e6])
        .expect("sweep")
    {
        println!("  {:>7} Hz -> {:>10}MAC/s", si(p.x), si(p.throughput));
    }

    println!("\nDDR bandwidth:");
    for p in s
        .sweep_bandwidth(&[2e9, 8e9, 19e9, 38e9, 77e9, 154e9])
        .expect("sweep")
    {
        println!("  {:>7}B/s -> {:>10}MAC/s", si(p.x), si(p.throughput));
    }
    let knee = s.memory_bound_threshold().expect("bisection");
    println!(
        "  memory-bound below ≈ {}B/s (the shipped 77 GB/s has ample margin)",
        si(knee)
    );

    println!("\nengine count:");
    for p in s.sweep_engines(&[1, 2, 3, 4, 6, 8]).expect("sweep") {
        println!(
            "  {:>3} engines -> {:>10}MAC/s",
            p.x as usize,
            si(p.throughput)
        );
    }
    println!("\ntakeaways: compute-bound at the shipped point (throughput tracks the");
    println!("clock); engines scale until the shared DDR link saturates.");

    run.metric("memory_bound_threshold_bytes_per_sec", knee);
    run.finish();
}
