//! # cham-bench — the figure/table reproduction harness
//!
//! One binary per paper artifact (run with `cargo run -p cham-bench
//! --release --bin <name>`):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig2a_roofline` | Fig. 2a roofline: NTT / key-switch / HMVP intensity |
//! | `fig2b_dse` | Fig. 2b design-space exploration |
//! | `table2_resources` | Table II resource utilisation |
//! | `table3_ntt` | Table III NTT comparison + throughput claims |
//! | `fig6_throughput` | Fig. 6 HMVP throughput vs matrix shape |
//! | `fig8_hmvp` | Fig. 8 HMVP latency: CPU vs GPU vs CHAM |
//! | `fig7ab_heterolr` | Fig. 7a/7b HeteroLR step breakdown |
//! | `fig7c_beaver` | Fig. 7c Beaver triple generation |
//! | `headline` | the abstract's 1800× / 36× / 144× claims |
//!
//! This library holds the shared measurement helpers: CPU-baseline timing
//! of the software HE stack with extrapolation to paper-scale shapes, and
//! table formatting.

#![warn(missing_docs)]
use cham_he::ciphertext::RlweCiphertext;
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::extract::extract_lwe;
use cham_he::hmvp::{EncodedMatrix, Hmvp, Matrix};
use cham_he::keys::{GaloisKeys, KeySwitchKey, SecretKey};
use cham_he::ops::{keyswitch_mask, mul_plain_prepared, rescale};
use cham_he::pack::pack_two;
use cham_he::params::ChamParams;
use cham_telemetry::record::RunRecord;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

/// A deterministic RNG for reproducible measurements.
pub fn bench_rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xCAB1E)
}

/// The shared CLI of every figure binary:
///
/// * `--json <path>` — write a structured [`RunRecord`]
///   (`cham-run-record/v1`, see `DESIGN.md` § Observability) when the
///   run finishes. With the `telemetry` feature enabled the record
///   embeds the full counter/timer snapshot.
/// * `--threads <n>` — CPU-baseline parallelism for measurements that
///   support it (see [`CpuCosts::measure_with_threads`]). Defaults to 1;
///   always recorded as the `threads` param of the run record. The value
///   also sizes the process-global `cham-pool` kernel pool (unless
///   `CHAM_POOL_THREADS` or an earlier pool use already fixed its size),
///   so limb/row-parallel kernels fan out to exactly this many workers.
///
/// Binaries call [`BenchRun::from_env`] first, attach `param`s and
/// `metric`s while printing their usual tables, and end with
/// [`BenchRun::finish`].
#[derive(Debug)]
pub struct BenchRun {
    record: RunRecord,
    json_path: Option<PathBuf>,
    threads: usize,
}

impl BenchRun {
    /// Parses `std::env::args` for the benchmark `name`.
    ///
    /// Prints usage and exits with status 2 on unknown arguments, and
    /// with status 0 on `--help`.
    #[must_use]
    pub fn from_env(name: &str) -> Self {
        Self::from_args(name, std::env::args().skip(1))
    }

    /// [`Self::from_env`] over an explicit argument list (testable).
    #[must_use]
    pub fn from_args(name: &str, args: impl IntoIterator<Item = String>) -> Self {
        let mut json_path = None;
        let mut threads = 1usize;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => match args.next() {
                    Some(p) => json_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --json requires a path");
                        std::process::exit(2);
                    }
                },
                "--threads" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => threads = n,
                    _ => {
                        eprintln!("error: --threads requires a positive integer");
                        std::process::exit(2);
                    }
                },
                "--help" | "-h" => {
                    println!("usage: {name} [--json <path>] [--threads <n>]");
                    println!("  --json <path>  write a cham-run-record/v1 JSON run record");
                    println!("  --threads <n>  CPU-baseline thread count (default 1)");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("error: unknown argument `{other}` (try --help)");
                    std::process::exit(2);
                }
            }
        }
        // Route --threads to the shared kernel pool. First configuration
        // wins pool-wide; an explicit CHAM_POOL_THREADS env (read on first
        // pool use) or an earlier benchmark in-process takes precedence.
        cham_pool::configure_global(threads);
        let mut record = RunRecord::start(name);
        record.param("threads", threads as u64);
        record.param("pool_threads", cham_pool::global().threads() as u64);
        // Active SIMD backend (resolves CHAM_SIMD on first use) so every
        // bench trajectory is attributable to the datapath that produced
        // it. `simd_requested` preserves the raw env (distinguishes an
        // explicit `scalar` pin from auto-resolution), and
        // `simd_expect_vector` is computed from raw feature detection —
        // independent of the Backend dispatch logic — so a dispatch bug
        // that silently falls back to scalar cannot mask itself.
        let backend = cham_math::Backend::active();
        let requested = std::env::var("CHAM_SIMD").unwrap_or_else(|_| "auto".into());
        #[cfg(target_arch = "x86_64")]
        let host_vector = std::arch::is_x86_feature_detected!("avx2");
        #[cfg(target_arch = "aarch64")]
        let host_vector = true;
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let host_vector = false;
        let expect_vector = host_vector && !requested.trim().eq_ignore_ascii_case("scalar");
        record.param("simd_backend", backend.name());
        record.param("simd_lanes", backend.lanes() as u64);
        record.param("simd_requested", requested);
        record.param("simd_expect_vector", u64::from(expect_vector));
        Self {
            record,
            json_path,
            threads,
        }
    }

    /// The `--threads` value (1 when the flag was not given).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Records an input parameter on the run record.
    pub fn param(
        &mut self,
        key: impl Into<String>,
        value: impl Into<cham_telemetry::json::JsonValue>,
    ) -> &mut Self {
        self.record.param(key, value);
        self
    }

    /// Records a result metric on the run record.
    pub fn metric(
        &mut self,
        key: impl Into<String>,
        value: impl Into<cham_telemetry::json::JsonValue>,
    ) -> &mut Self {
        self.record.metric(key, value);
        self
    }

    /// Stops the wall clock and, when `--json` was given, writes the
    /// record (panicking on I/O errors — a benchmark that cannot write
    /// its results should fail loudly).
    ///
    /// Pool activity (`pool_tasks`, `pool_steals`, `pool_parks`,
    /// `pool_idle_ns`) is snapshotted into the record's metrics — these
    /// counters are always on (plain atomics), independent of the
    /// `telemetry` feature.
    ///
    /// # Panics
    /// Panics when the record file cannot be written.
    pub fn finish(mut self) {
        if let Some(stats) = cham_pool::global_stats() {
            self.record.metric("pool_tasks", stats.tasks);
            self.record.metric("pool_steals", stats.steals);
            self.record.metric("pool_parks", stats.parks);
            self.record.metric("pool_idle_ns", stats.idle_ns);
        }
        // Lazy-reduction datapath activity: deferred-reduction flush passes
        // and scratch-pool reuse. Always-on atomics, like the pool stats.
        self.record
            .metric("lazy_flushes", cham_math::modulus::lazy_flush_count());
        let (hits, misses) = cham_he::scratch::scratch_stats();
        self.record.metric("scratch_hits", hits);
        self.record.metric("scratch_misses", misses);
        // SIMD dispatch accounting (always-on atomics): totals across the
        // kernel families, so a run that claims a vector backend but did
        // all its work in scalar tails is visible in the record.
        let simd = cham_math::simd_stats();
        let (vector_elems, tail_elems) = simd.totals();
        self.record.metric("simd_vector_elems", vector_elems);
        self.record.metric("simd_tail_elems", tail_elems);
        self.record.finish();
        if let Some(path) = &self.json_path {
            self.record
                .write(path)
                .unwrap_or_else(|e| panic!("writing run record {}: {e}", path.display()));
            // stderr: several binaries have their stdout redirected into
            // result files (e.g. golden_dump).
            eprintln!("wrote run record to {}", path.display());
        }
    }
}

/// Measured per-operation CPU costs of the software HE stack at the
/// paper's full parameters (`N = 4096`), used to extrapolate CPU baselines
/// to paper-scale workloads without running hours of software HE.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// One augmented symmetric encryption (seconds).
    pub encrypt: f64,
    /// One per-row dot product: prepared-plaintext multiply + rescale +
    /// extract (seconds).
    pub dot_row: f64,
    /// One `PACKTWOLWES` reduction: automorphism + key-switch (seconds).
    pub pack_reduction: f64,
    /// One raw key-switch of a mask polynomial (seconds).
    pub keyswitch: f64,
    /// One full decryption (seconds).
    pub decrypt: f64,
    /// One limb NTT of size `N` (seconds).
    pub ntt: f64,
}

impl CpuCosts {
    /// Measures the cost table on this machine at the given parameters,
    /// single-threaded (the paper's CPU baseline).
    ///
    /// # Panics
    /// Panics if key setup fails (cannot happen for valid parameters).
    pub fn measure(params: &ChamParams) -> Self {
        Self::measure_with_threads(params, 1)
    }

    /// [`Self::measure`] with `threads`-way parallelism for the per-row
    /// dot product (the only stage the HMVP pipeline parallelizes): the
    /// amortized `dot_row` is measured over a `threads`-row matrix run
    /// through `dot_products_parallel`, so extrapolations reflect the
    /// multi-threaded CPU baseline selected by `--threads`.
    ///
    /// # Panics
    /// Panics if key setup fails (cannot happen for valid parameters).
    pub fn measure_with_threads(params: &ChamParams, threads: usize) -> Self {
        let threads = threads.max(1);
        let mut rng = bench_rng();
        let sk = SecretKey::generate(params, &mut rng);
        let enc = Encryptor::new(params, &sk);
        let dec = Decryptor::new(params, &sk);
        let coder = cham_he::encoding::CoeffEncoder::new(params);
        let hmvp = Hmvp::new(params);
        let t = params.plain_modulus().value();
        let n = params.degree();
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let pt = coder.encode_vector(&v).expect("vector fits");

        let reps = 3;
        let t0 = Instant::now();
        let mut ct = enc.encrypt_augmented(&pt, &mut rng);
        for _ in 1..reps {
            ct = enc.encrypt_augmented(&pt, &mut rng);
        }
        let encrypt = t0.elapsed().as_secs_f64() / reps as f64;

        // Per-row dot product with a prepared matrix, amortized over
        // `threads` rows so thread-pool speedup lands in the figure.
        let rows = threads;
        let data: Vec<u64> = (0..rows * n).map(|_| rng.gen_range(0..t)).collect();
        let matrix = Matrix::from_data(rows, n, data).expect("shape");
        let em = hmvp.encode_matrix(&matrix).expect("encode");
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = hmvp
                .dot_products_parallel(&em, std::slice::from_ref(&ct), threads)
                .expect("dot");
        }
        let dot_row = t1.elapsed().as_secs_f64() / (reps * rows) as f64;

        // One pack reduction at level 1.
        let gkeys = GaloisKeys::generate_for_packing(&sk, 1, &mut rng).expect("gk");
        let row_pt = coder
            .encode_row(&(0..n).map(|_| rng.gen_range(0..t)).collect::<Vec<_>>())
            .expect("row fits");
        let prepared =
            cham_he::ops::lift_plaintext_ntt(&row_pt, params, params.augmented_context())
                .expect("lift");
        let prod = mul_plain_prepared(&ct, &prepared).expect("mul");
        let normal = rescale(&prod, params).expect("rescale");
        let lwe = extract_lwe(&normal, 0).expect("extract");
        let as_rlwe = cham_he::extract::lwe_to_rlwe(&lwe);
        let t2 = Instant::now();
        for _ in 0..reps {
            let _ = pack_two(1, &as_rlwe, &as_rlwe, &gkeys, params).expect("pack");
        }
        let pack_reduction = t2.elapsed().as_secs_f64() / reps as f64;

        // Raw key-switch.
        let ksk = KeySwitchKey::generate(&sk, sk.coeffs(), &mut rng).expect("ksk");
        let t3 = Instant::now();
        for _ in 0..reps {
            let _ = keyswitch_mask(normal.a(), &ksk, params).expect("ks");
        }
        let keyswitch = t3.elapsed().as_secs_f64() / reps as f64;

        let t4 = Instant::now();
        for _ in 0..reps {
            let _ = dec.decrypt(&normal);
        }
        let decrypt = t4.elapsed().as_secs_f64() / reps as f64;

        // One limb NTT.
        let q = params.ciphertext_context().moduli()[0];
        let table = cham_math::NttTable::new(n, q).expect("ntt");
        let mut poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q.value())).collect();
        let t5 = Instant::now();
        let ntt_reps = 20;
        for _ in 0..ntt_reps {
            table.forward(&mut poly);
        }
        let ntt = t5.elapsed().as_secs_f64() / ntt_reps as f64;

        Self {
            encrypt,
            dot_row,
            pack_reduction,
            keyswitch,
            decrypt,
            ntt,
        }
    }

    /// Extrapolated CPU seconds for a full `rows × cols` HMVP (dot
    /// products + packing; encryption/decryption excluded to match the
    /// paper's matvec step).
    pub fn hmvp_seconds(&self, rows: usize, cols: usize, degree: usize) -> f64 {
        let tiles = cols.div_ceil(degree) as f64;
        rows as f64 * self.dot_row * tiles + (rows.saturating_sub(1)) as f64 * self.pack_reduction
    }

    /// CPU key-switch throughput in ops/s.
    pub fn keyswitch_ops_per_sec(&self) -> f64 {
        1.0 / self.keyswitch
    }

    /// CPU NTT throughput in "NTT ops"/s using the paper's accounting
    /// (one op = one 3-limb plaintext transform).
    pub fn ntt_ops_per_sec(&self, aug_limbs: usize) -> f64 {
        1.0 / (self.ntt * aug_limbs as f64)
    }
}

/// A prepared dot-product-phase benchmark: one encoded `rows × cols` matrix
/// and one encrypted input vector (one ciphertext per `N`-column tile),
/// reusable across thread counts so a reported speedup ratio compares the
/// *same* work at different parallelism caps (the pool itself stays at its
/// configured size; the cap bounds how many row tasks run concurrently).
#[derive(Debug)]
pub struct DotPhaseBench {
    hmvp: Hmvp,
    em: EncodedMatrix,
    cts: Vec<RlweCiphertext>,
    rows: usize,
}

impl DotPhaseBench {
    /// Encrypts an input vector and encodes a random `rows × N` matrix at
    /// the given parameters.
    ///
    /// # Panics
    /// Panics if encoding/encryption fails (cannot happen for valid
    /// parameters and `rows ≥ 1`).
    #[must_use]
    pub fn prepare(params: &ChamParams, rows: usize) -> Self {
        Self::prepare_cols(params, rows, params.degree())
    }

    /// [`Self::prepare`] with an explicit column count: `⌈cols/N⌉` column
    /// tiles per row, so the per-row accumulation depth (the regime the
    /// fused kernel targets) scales with `cols`.
    ///
    /// # Panics
    /// Panics if encoding/encryption fails (cannot happen for valid
    /// parameters, `rows ≥ 1` and `cols ≥ 1`).
    #[must_use]
    pub fn prepare_cols(params: &ChamParams, rows: usize, cols: usize) -> Self {
        let mut rng = bench_rng();
        let sk = SecretKey::generate(params, &mut rng);
        let enc = Encryptor::new(params, &sk);
        let coder = cham_he::encoding::CoeffEncoder::new(params);
        let hmvp = Hmvp::new(params);
        let t = params.plain_modulus().value();
        let n = params.degree();
        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..t)).collect();
        let cts: Vec<RlweCiphertext> = v
            .chunks(n)
            .map(|tile| {
                enc.encrypt_augmented(&coder.encode_vector(tile).expect("vector fits"), &mut rng)
            })
            .collect();
        let data: Vec<u64> = (0..rows * cols).map(|_| rng.gen_range(0..t)).collect();
        let em = hmvp
            .encode_matrix(&Matrix::from_data(rows, cols, data).expect("shape"))
            .expect("encode");
        Self {
            hmvp,
            em,
            cts,
            rows,
        }
    }

    /// Number of matrix rows per run.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Best-of-`reps` wall-clock seconds for one dot-product phase at the
    /// given row-parallelism cap.
    ///
    /// # Panics
    /// Panics if the dot-product phase fails (cannot happen for the
    /// shapes [`DotPhaseBench::prepare`] builds).
    #[must_use]
    pub fn seconds(&self, threads: usize, reps: usize) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let _ = self
                .hmvp
                .dot_products_parallel(&self.em, &self.cts, threads)
                .expect("dot phase");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }

    /// Best-of-`reps` wall-clock seconds for one dot-product phase through
    /// the pre-fusion reference kernel (`dot_products_unfused`): strict
    /// per-term MODMUL/MODADD with per-term allocations, serial over rows.
    /// Paired with [`DotPhaseBench::seconds`] at `threads = 1` this isolates
    /// the lazy-accumulation + scratch-reuse gain from pool parallelism.
    ///
    /// # Panics
    /// Panics if the dot-product phase fails (cannot happen for the
    /// shapes [`DotPhaseBench::prepare`] builds).
    #[must_use]
    pub fn seconds_unfused(&self, reps: usize) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let _ = self
                .hmvp
                .dot_products_unfused(&self.em, &self.cts)
                .expect("dot phase");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }
}

/// Cost model for the *original Delphi* triple generation: a batch-encoded
/// diagonal matvec with baby-step/giant-step rotations (GAZELLE-style),
/// evaluated on the CPU — `≈ 2√n` key-switches plus `n` slot-wise
/// multiply-accumulate passes per output block of `N/2` rows.
pub fn delphi_triple_seconds(cpu: &CpuCosts, rows: usize, cols: usize, degree: usize) -> f64 {
    let slots = (degree / 2) as f64;
    let blocks = (rows as f64 / slots).ceil();
    let rotations = 2.0 * (cols as f64).sqrt();
    // A slot-wise diagonal multiply-accumulate costs roughly one NTT-domain
    // pass of the dot-product pipeline (no INTT per diagonal).
    let diag_pass = cpu.dot_row * 0.3;
    blocks * (rotations * cpu.keyswitch + cols as f64 * diag_pass)
}

// The `eng`/`si` formatters moved to `cham_telemetry::fmt` (single home
// for human-number rendering); re-exported here so the figure binaries
// keep their `cham_bench::eng(..)` call sites.
pub use cham_telemetry::fmt::{eng, si};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_parses_json_flag() {
        let run = BenchRun::from_args("t", ["--json".to_string(), "/tmp/x.json".to_string()]);
        assert_eq!(
            run.json_path.as_deref(),
            Some(std::path::Path::new("/tmp/x.json"))
        );
        let run = BenchRun::from_args("t", std::iter::empty());
        assert!(run.json_path.is_none());
    }

    #[test]
    fn bench_run_writes_record() {
        let dir = std::env::temp_dir().join("cham_bench_run_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rec.json");
        let mut run = BenchRun::from_args(
            "unit",
            ["--json".into(), path.to_str().unwrap().to_string()],
        );
        run.param("rows", 8u64);
        run.metric("speedup", 2.5f64);
        run.finish();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\": \"cham-run-record/v1\""));
        assert!(body.contains("\"name\": \"unit\""));
        assert!(body.contains("\"rows\": 8"));
        assert!(body.contains("\"speedup\": 2.5"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cpu_costs_measure_and_extrapolate() {
        // Measured at the reduced test parameters so the smoke test stays
        // fast; the figure binaries use the full N = 4096 set.
        let params = ChamParams::insecure_test_default().expect("test params");
        let costs = CpuCosts::measure(&params);
        for v in [
            costs.encrypt,
            costs.dot_row,
            costs.pack_reduction,
            costs.keyswitch,
            costs.decrypt,
            costs.ntt,
        ] {
            assert!(v > 0.0 && v.is_finite(), "cost {v}");
        }
        // Extrapolation is linear in rows and tiles.
        let n = params.degree();
        let one = costs.hmvp_seconds(64, n, n);
        let two_rows = costs.hmvp_seconds(128, n, n);
        assert!(two_rows > 1.8 * one && two_rows < 2.2 * one);
        let two_tiles = costs.hmvp_seconds(64, 2 * n, n);
        assert!(two_tiles > one);
        // Derived throughputs are positive.
        assert!(costs.keyswitch_ops_per_sec() > 0.0);
        assert!(costs.ntt_ops_per_sec(3) > 0.0);
    }

    #[test]
    fn delphi_model_scales_sanely() {
        let params = ChamParams::insecure_test_default().expect("test params");
        let costs = CpuCosts::measure(&params);
        let n = params.degree();
        let small = delphi_triple_seconds(&costs, 64, 64, n);
        let wide = delphi_triple_seconds(&costs, 64, 256, n);
        let tall = delphi_triple_seconds(&costs, 64 * n, 64, n);
        assert!(small > 0.0);
        assert!(wide > small, "more columns cost more");
        assert!(tall > small, "more row blocks cost more");
    }
}
