//! Property-based tests for the simulator: model monotonicity, schedule
//! invariants, and resource-model consistency over randomized
//! configurations.

use cham_sim::config::{ChamConfig, EngineConfig};
use cham_sim::dse::DesignSpace;
use cham_sim::pipeline::{HmvpCycleModel, RingShape};
use cham_sim::resources::{FpgaDevice, ResourceModel};
use cham_sim::trace::{PipelineTrace, Stage};
use proptest::prelude::*;

fn arbitrary_engine() -> impl Strategy<Value = EngineConfig> {
    (
        1usize..=8,                                  // ntt units
        prop::sample::select(vec![1usize, 2, 4, 8]), // bfus
        1usize..=8,                                  // mult lanes
        1usize..=8,                                  // ppu lanes
        1usize..=2,                                  // pack units
        5usize..=11,                                 // stages
    )
        .prop_map(|(ntt, bfu, mult, ppu, pack, stages)| EngineConfig {
            ntt_units: ntt,
            intt_units: ntt,
            bfus_per_ntt: bfu,
            mult_lanes: mult,
            ppu_lanes: ppu,
            pack_units: pack,
            pipeline_stages: stages,
            reduce_buffer_cts: 16,
            ram_strategy: Default::default(),
        })
}

fn arbitrary_config() -> impl Strategy<Value = ChamConfig> {
    (arbitrary_engine(), 1usize..=3).prop_map(|(engine, engines)| ChamConfig {
        engine,
        engines,
        clock_hz: 300e6,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cycle_model_positive_and_monotone(cfg in arbitrary_config(), m in 1usize..4096, n in 1usize..8192) {
        let model = HmvpCycleModel::new(cfg, RingShape::cham()).unwrap();
        let t = model.hmvp_seconds(m, n);
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(model.hmvp_seconds(m + 128, n) >= t);
        prop_assert!(model.hmvp_seconds(m, n + 8192) >= t);
    }

    #[test]
    fn more_hardware_is_never_slower(cfg in arbitrary_config(), m in 64usize..4096) {
        let base = HmvpCycleModel::new(cfg, RingShape::cham()).unwrap();
        let mut bigger_cfg = cfg;
        bigger_cfg.engine.ntt_units = (cfg.engine.ntt_units * 2).min(16);
        bigger_cfg.engine.intt_units = bigger_cfg.engine.ntt_units;
        bigger_cfg.engine.mult_lanes = cfg.engine.mult_lanes * 2;
        bigger_cfg.engine.ppu_lanes = cfg.engine.ppu_lanes * 2;
        bigger_cfg.engine.pack_units = cfg.engine.pack_units * 2;
        let bigger = HmvpCycleModel::new(bigger_cfg, RingShape::cham()).unwrap();
        prop_assert!(bigger.hmvp_seconds(m, 4096) <= base.hmvp_seconds(m, 4096) * 1.0001);
    }

    #[test]
    fn resource_model_monotone_in_units(cfg in arbitrary_engine()) {
        let model = ResourceModel::default();
        let base = model.engine(&cfg);
        let mut bigger = cfg;
        bigger.ntt_units += 1;
        bigger.intt_units += 1;
        let grown = model.engine(&bigger);
        prop_assert!(grown.lut >= base.lut);
        prop_assert!(grown.dsp >= base.dsp);
    }

    #[test]
    fn dse_evaluation_is_consistent(cfg in arbitrary_config()) {
        let ds = DesignSpace::default();
        let p = ds.evaluate(cfg).unwrap();
        prop_assert!(p.throughput > 0.0);
        prop_assert!(p.utilization > 0.0);
        prop_assert_eq!(p.feasible, p.utilization <= 0.75);
        // Feasibility implies the chip physically fits.
        if p.feasible {
            let chip = ResourceModel::default().chip(&cfg);
            prop_assert!(chip.fits(&FpgaDevice::vu9p()));
        }
    }

    #[test]
    fn trace_schedule_invariants(rows in 1usize..128) {
        let t = PipelineTrace::schedule(&ChamConfig::cham(), &RingShape::cham(), rows).unwrap();
        prop_assert!(t.is_conflict_free());
        // Event accounting: 4 dot events per row, padded−1 reductions.
        let padded = rows.next_power_of_two();
        prop_assert_eq!(t.events.len(), 4 * rows + padded - 1);
        // The final reduction cannot finish before the last row has left
        // the dot stages (padding-only pairs may legally run at t = 0).
        if rows > 1 {
            let last_row_done = (rows as u64 + 3) * 6144;
            let last_pack_end = t
                .stage_events(cham_sim::trace::Stage::Pack)
                .map(|e| e.end)
                .max()
                .unwrap();
            prop_assert!(last_pack_end > last_row_done);
        }
        // Trace makespan within 2x of the aggregate cycle model (the
        // model adds stall/overhead terms the trace resolves exactly).
        let model = HmvpCycleModel::new(
            ChamConfig { engines: 1, ..ChamConfig::cham() },
            RingShape::cham(),
        ).unwrap();
        let agg = model.engine_cycles(rows, 4096).total_cycles;
        prop_assert!(t.total_cycles <= 2 * agg, "trace {} vs model {}", t.total_cycles, agg);
    }

    #[test]
    fn trace_events_have_monotone_starts(rows in 1usize..128) {
        let t = PipelineTrace::schedule(&ChamConfig::cham(), &RingShape::cham(), rows).unwrap();
        // The event list is globally sorted by start cycle, and every
        // event is well-formed and inside the makespan.
        prop_assert!(t.events.windows(2).all(|w| w[0].start <= w[1].start));
        for e in &t.events {
            prop_assert!(e.start < e.end, "empty event {e:?}");
            prop_assert!(e.end <= t.total_cycles);
        }
    }

    #[test]
    fn trace_stage_accounting_closes(rows in 1usize..128) {
        let t = PipelineTrace::schedule(&ChamConfig::cham(), &RingShape::cham(), rows).unwrap();
        // Per stage, busy + internal stalls exactly tile the span from
        // the stage's first start to its last end (no overlap, no
        // unaccounted cycles).
        for s in Stage::ALL {
            let first = t.stage_events(s).map(|e| e.start).min();
            let last = t.stage_events(s).map(|e| e.end).max();
            if let (Some(first), Some(last)) = (first, last) {
                prop_assert_eq!(
                    first + t.stage_busy(s) + t.stage_stall(s),
                    last,
                    "stage {} accounting", s
                );
            }
        }
        // Dot stages never stall in this schedule; their busy time is
        // exactly rows × ii.
        let ii = RingShape::cham().ntt_cycles(ChamConfig::cham().engine.bfus_per_ntt);
        for s in Stage::DOT_STAGES {
            prop_assert_eq!(t.stage_stall(s), 0);
            prop_assert_eq!(t.stage_busy(s), rows as u64 * ii);
        }
        let occ = t.occupancy();
        prop_assert!(occ > 0.0 && occ <= 1.0, "occupancy {}", occ);
    }

    #[test]
    fn trace_total_matches_model_within_overhead(rows in 1usize..128) {
        // The trace's exact makespan and the aggregate cycle model agree
        // once the model's explicitly-modeled stall and fill/drain
        // overhead terms are allowed for on both sides.
        let cfg = ChamConfig { engines: 1, ..ChamConfig::cham() };
        let t = PipelineTrace::schedule(&cfg, &RingShape::cham(), rows).unwrap();
        let report = HmvpCycleModel::new(cfg, RingShape::cham())
            .unwrap()
            .engine_cycles(rows, 4096);
        // The trace pads the pack tree to a power of two (padded − rows
        // extra reductions); the aggregate model counts rows − 1. Allow
        // for both that and the model's stall/overhead terms.
        let ii = RingShape::cham().ntt_cycles(cfg.engine.bfus_per_ntt);
        let padding = (rows.next_power_of_two() - rows) as u64 * ii
            / cfg.engine.pack_units as u64;
        let slack = report.stall_cycles + report.overhead_cycles + padding;
        prop_assert!(
            t.total_cycles <= report.total_cycles + slack,
            "trace {} model {} slack {}", t.total_cycles, report.total_cycles, slack
        );
        prop_assert!(
            t.total_cycles + slack >= report.total_cycles,
            "trace {} model {} slack {}", t.total_cycles, report.total_cycles, slack
        );
    }
}
