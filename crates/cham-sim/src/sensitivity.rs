//! What-if sensitivity analysis over the accelerator model.
//!
//! The DSE (Fig. 2b) explores *structural* choices; this module sweeps the
//! *environmental* ones — clock frequency, DDR bandwidth, engine count —
//! and reports how HMVP throughput responds. It quantifies two properties
//! the paper asserts qualitatively: the shipped design is compute-bound
//! (so throughput tracks the clock, not the memory), and engines scale
//! near-linearly until the shared link saturates.

use crate::config::ChamConfig;
use crate::memory::DdrModel;
use crate::pipeline::{HmvpCycleModel, RingShape};
use crate::Result;

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// HMVP throughput in MAC/s on the scoring workload.
    pub throughput: f64,
}

/// The sweep driver (fixed workload, varying environment).
#[derive(Debug, Clone)]
pub struct Sensitivity {
    base: ChamConfig,
    shape: RingShape,
    /// Scoring workload (rows, cols).
    pub workload: (usize, usize),
}

impl Sensitivity {
    /// Creates a sweep around a base configuration.
    pub fn new(base: ChamConfig) -> Self {
        Self {
            base,
            shape: RingShape::cham(),
            workload: (4096, 4096),
        }
    }

    fn throughput(&self, config: ChamConfig, ddr: DdrModel) -> Result<f64> {
        let model = HmvpCycleModel::new(config, self.shape)?.with_ddr(ddr);
        Ok(model.hmvp_throughput_macs(self.workload.0, self.workload.1))
    }

    /// Sweeps the clock frequency (Hz).
    ///
    /// # Errors
    /// Propagates model-construction failures.
    pub fn sweep_clock(&self, clocks_hz: &[f64]) -> Result<Vec<SensitivityPoint>> {
        clocks_hz
            .iter()
            .map(|&clk| {
                let cfg = ChamConfig {
                    clock_hz: clk,
                    ..self.base
                };
                Ok(SensitivityPoint {
                    x: clk,
                    throughput: self.throughput(cfg, DdrModel::default())?,
                })
            })
            .collect()
    }

    /// Sweeps the DDR bandwidth (bytes/s).
    ///
    /// # Errors
    /// Propagates model-construction failures.
    pub fn sweep_bandwidth(&self, bws: &[f64]) -> Result<Vec<SensitivityPoint>> {
        bws.iter()
            .map(|&bw| {
                let ddr = DdrModel {
                    bytes_per_sec: bw,
                    ..DdrModel::default()
                };
                Ok(SensitivityPoint {
                    x: bw,
                    throughput: self.throughput(self.base, ddr)?,
                })
            })
            .collect()
    }

    /// Sweeps the engine count.
    ///
    /// # Errors
    /// Propagates model-construction failures.
    pub fn sweep_engines(&self, engines: &[usize]) -> Result<Vec<SensitivityPoint>> {
        engines
            .iter()
            .map(|&e| {
                let cfg = ChamConfig {
                    engines: e,
                    ..self.base
                };
                Ok(SensitivityPoint {
                    x: e as f64,
                    throughput: self.throughput(cfg, DdrModel::default())?,
                })
            })
            .collect()
    }

    /// The bandwidth below which the shipped workload becomes memory-bound
    /// (bisection against the compute throughput).
    ///
    /// # Errors
    /// Propagates model-construction failures.
    pub fn memory_bound_threshold(&self) -> Result<f64> {
        let compute = self.throughput(self.base, DdrModel::default())?;
        let (mut lo, mut hi) = (1e8f64, 1e12f64);
        for _ in 0..60 {
            let mid = (lo * hi).sqrt();
            let t = self.throughput(
                self.base,
                DdrModel {
                    bytes_per_sec: mid,
                    ..DdrModel::default()
                },
            )?;
            if t < compute * 0.999 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Sensitivity {
        Sensitivity::new(ChamConfig::cham())
    }

    #[test]
    fn clock_scaling_is_linear_when_compute_bound() {
        let s = sweep();
        let pts = s.sweep_clock(&[150e6, 300e6, 600e6]).unwrap();
        let r1 = pts[1].throughput / pts[0].throughput;
        let r2 = pts[2].throughput / pts[1].throughput;
        assert!((r1 - 2.0).abs() < 0.05, "r1 {r1}");
        // At 600 MHz the link may start to matter, but not by much.
        assert!(r2 > 1.7, "r2 {r2}");
    }

    #[test]
    fn bandwidth_has_a_knee() {
        let s = sweep();
        let pts = s.sweep_bandwidth(&[1e9, 5e9, 20e9, 77e9, 300e9]).unwrap();
        // Starved at 1 GB/s, saturated by 77 GB/s.
        assert!(pts[0].throughput < pts[3].throughput * 0.2);
        assert!((pts[4].throughput - pts[3].throughput) / pts[3].throughput < 0.01);
        let knee = s.memory_bound_threshold().unwrap();
        assert!(knee > 1e9 && knee < 77e9, "knee {knee}");
    }

    #[test]
    fn engines_scale_until_the_link_saturates() {
        let s = sweep();
        let pts = s.sweep_engines(&[1, 2, 4, 8]).unwrap();
        let g12 = pts[1].throughput / pts[0].throughput;
        assert!(g12 > 1.8, "1->2 engines gain {g12}");
        // Scaling efficiency decays monotonically.
        let eff: Vec<f64> = pts
            .iter()
            .map(|p| p.throughput / (p.x * pts[0].throughput))
            .collect();
        for w in eff.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "efficiency not decaying: {eff:?}");
        }
    }
}
