//! Comparator baselines (paper §V-B).
//!
//! * **HEAX** (Riazi et al., ASPLOS'20) and **F1** (Feldmann et al.,
//!   MICRO'21) appear in Table III via their published numbers — the paper
//!   compares against publications, not re-runs, and so do we.
//! * The **GPU** (NVIDIA V100 @ 1.29 GHz) appears in Figs. 6–8. The paper
//!   reports it only as measured *ratios* against CHAM (45 k NTT ops/s,
//!   4.5× lower HMVP throughput, 0.3–0.7× CHAM/GPU latency); we encode
//!   those calibrated ratios as the model. See DESIGN.md (Substitutions).
//! * The **CPU** baseline is *measured*, not modelled: the bench harness
//!   times this repository's own software implementation (`cham-he`).

use crate::pipeline::HmvpCycleModel;

/// One NTT design for the Table III comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct NttDesign {
    /// Design name.
    pub name: &'static str,
    /// Transform latency in clock cycles.
    pub latency_cycles: u64,
    /// Butterfly parallelism.
    pub parallelism: u64,
    /// LUT count (`None` where the paper gives none, e.g. F1 is an ASIC).
    pub lut: Option<u64>,
    /// BRAM count.
    pub bram: Option<u64>,
}

impl NttDesign {
    /// Area-time product in `latency × parallelism`, normalised to a
    /// reference design (Table III column "ATP (l×p)").
    pub fn atp_lp(&self, reference: &NttDesign) -> f64 {
        (self.latency_cycles * self.parallelism) as f64
            / (reference.latency_cycles * reference.parallelism) as f64
    }

    /// Area-time product in `latency × LUT`, normalised (column "(l×u)").
    /// `None` when either design lacks a LUT figure.
    pub fn atp_lu(&self, reference: &NttDesign) -> Option<f64> {
        Some(
            (self.latency_cycles * self.lut?) as f64
                / (reference.latency_cycles * reference.lut?) as f64,
        )
    }
}

/// Table III reference rows (published numbers).
pub mod published_ntt {
    use super::NttDesign;

    /// CHAM, twiddle ROM and buffer in BRAM.
    pub const CHAM_BRAM: NttDesign = NttDesign {
        name: "CHAM (BRAM only)",
        latency_cycles: 6144,
        parallelism: 4,
        lut: Some(3324),
        bram: Some(14),
    };

    /// CHAM, twiddle ROM in distributed RAM, buffer in BRAM.
    pub const CHAM_MIXED: NttDesign = NttDesign {
        name: "CHAM (BRAM+dRAM)",
        latency_cycles: 6144,
        parallelism: 4,
        lut: Some(6508),
        bram: Some(6),
    };

    /// CHAM, everything in distributed RAM.
    pub const CHAM_DRAM: NttDesign = NttDesign {
        name: "CHAM (dRAM only)",
        latency_cycles: 6144,
        parallelism: 4,
        lut: Some(9248),
        bram: Some(0),
    };

    /// HEAX (Intel FPGA, 8-input LUTs and 20 kbit BRAMs — footnote 2).
    pub const HEAX: NttDesign = NttDesign {
        name: "HEAX",
        latency_cycles: 6144,
        parallelism: 4,
        lut: Some(22_316),
        bram: Some(11),
    };

    /// F1 (ASIC; no FPGA LUT/BRAM figures).
    pub const F1: NttDesign = NttDesign {
        name: "F1",
        latency_cycles: 202,
        parallelism: 896,
        lut: None,
        bram: None,
    };

    /// HEAX NTT throughput at `N = 2^12` (paper §V-B.1).
    pub const HEAX_NTT_OPS_PER_SEC: f64 = 117_000.0;

    /// GPU single-kernel NTT throughput, 1024 threads (paper §V-B.1).
    pub const GPU_NTT_OPS_PER_SEC: f64 = 45_000.0;
}

/// The calibrated V100 GPU model.
///
/// The paper gives the GPU only relative to CHAM: throughput 4.5× lower
/// (Fig. 6) and latency such that CHAM/GPU ∈ [0.3, 0.7] with CHAM's edge
/// largest at small batches (Fig. 8). Those constants are encoded here.
#[derive(Debug, Clone)]
pub struct GpuModel {
    /// Throughput handicap vs CHAM (paper: 4.5).
    pub throughput_ratio: f64,
    /// CHAM/GPU latency ratio at small batch (paper: 0.3).
    pub latency_ratio_small: f64,
    /// CHAM/GPU latency ratio at large batch (paper: 0.7).
    pub latency_ratio_large: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        Self {
            throughput_ratio: 4.5,
            latency_ratio_small: 0.3,
            latency_ratio_large: 0.7,
        }
    }
}

impl GpuModel {
    /// GPU HMVP latency for a shape, derived from the CHAM cycle model and
    /// the calibrated ratio (interpolated log-linearly in `rows` between
    /// 64 and 8192).
    pub fn hmvp_seconds(&self, cham: &HmvpCycleModel, rows: usize, cols: usize) -> f64 {
        let cham_secs = cham.hmvp_seconds(rows, cols);
        let r = self.latency_ratio(rows);
        cham_secs / r
    }

    /// The interpolated CHAM/GPU latency ratio for a row count.
    pub fn latency_ratio(&self, rows: usize) -> f64 {
        let lo = 64f64.log2();
        let hi = 8192f64.log2();
        let x = (rows.max(1) as f64).log2().clamp(lo, hi);
        let w = (x - lo) / (hi - lo);
        self.latency_ratio_small + w * (self.latency_ratio_large - self.latency_ratio_small)
    }

    /// GPU HMVP throughput in MAC/s.
    pub fn hmvp_throughput_macs(&self, cham: &HmvpCycleModel, rows: usize, cols: usize) -> f64 {
        cham.hmvp_throughput_macs(rows, cols) / self.throughput_ratio
    }

    /// GPU NTT throughput (published constant).
    pub fn ntt_ops_per_sec(&self) -> f64 {
        published_ntt::GPU_NTT_OPS_PER_SEC
    }
}

#[cfg(test)]
mod tests {
    use super::published_ntt::*;
    use super::*;

    #[test]
    fn table3_atp_columns_reproduce() {
        // Normalised to CHAM (BRAM only), matching Table III.
        let r = &CHAM_BRAM;
        assert!((CHAM_BRAM.atp_lu(r).unwrap() - 1.0).abs() < 1e-12);
        assert!((CHAM_MIXED.atp_lu(r).unwrap() - 1.96).abs() < 0.005);
        assert!((CHAM_DRAM.atp_lu(r).unwrap() - 2.78).abs() < 0.005);
        assert!((HEAX.atp_lu(r).unwrap() - 6.71).abs() < 0.005);
        assert!((F1.atp_lp(r) - 7.36).abs() < 0.005);
        assert!(F1.atp_lu(r).is_none());
    }

    #[test]
    fn cham_ntt_beats_heax_throughput() {
        // Paper: 195k vs 117k ops/s.
        let model = HmvpCycleModel::cham();
        assert!(model.ntt_ops_per_sec() > HEAX_NTT_OPS_PER_SEC);
        let ratio = model.ntt_ops_per_sec() / HEAX_NTT_OPS_PER_SEC;
        assert!((ratio - 195.0 / 117.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn gpu_latency_ratio_interpolates() {
        let g = GpuModel::default();
        assert!((g.latency_ratio(64) - 0.3).abs() < 1e-12);
        assert!((g.latency_ratio(8192) - 0.7).abs() < 1e-12);
        let mid = g.latency_ratio(724); // geometric middle
        assert!(mid > 0.3 && mid < 0.7);
        // Clamped outside the range.
        assert!((g.latency_ratio(1) - 0.3).abs() < 1e-12);
        assert!((g.latency_ratio(100_000) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn gpu_is_slower_than_cham_but_not_absurdly() {
        let g = GpuModel::default();
        let cham = HmvpCycleModel::cham();
        for rows in [256usize, 2048, 8192] {
            let c = cham.hmvp_seconds(rows, 4096);
            let gpu = g.hmvp_seconds(&cham, rows, 4096);
            let ratio = c / gpu;
            assert!((0.3..=0.7).contains(&ratio), "rows={rows} ratio={ratio}");
        }
        let t = g.hmvp_throughput_macs(&cham, 4096, 4096);
        assert!((cham.hmvp_throughput_macs(4096, 4096) / t - 4.5).abs() < 1e-9);
    }

    #[test]
    fn gpu_ntt_constant() {
        assert_eq!(GpuModel::default().ntt_ops_per_sec(), 45_000.0);
    }
}
