//! Design-space exploration (paper Fig. 2b, §III-B).
//!
//! The explored axes: pipeline split (5–11 macro-stages), number of compute
//! engines, NTT modules per engine, butterfly parallelism ("`k`-PE NTT"),
//! and pack units. Each point is scored by HMVP throughput (4096×4096
//! workload) and by peak resource utilisation on the VU9P; points that
//! exceed the paper's 75% place-and-route criterion are infeasible.
//!
//! The paper reports two optimal points:
//! `(9 stages, 1×PACKTWOLWES, 6×NTT, 4-PE, 2 engines)` (shipped) and
//! `(9 stages, 1×PACKTWOLWES, 6×NTT, 8-PE, 1 engine)`.

use crate::config::{ChamConfig, EngineConfig};
use crate::pipeline::{HmvpCycleModel, RingShape};
use crate::resources::{FpgaDevice, ResourceModel};
use crate::Result;

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The configuration.
    pub config: ChamConfig,
    /// HMVP throughput in MAC/s on the scoring workload.
    pub throughput: f64,
    /// Peak resource-class utilisation on the target device.
    pub utilization: f64,
    /// Whether the point meets the 75% utilisation criterion.
    pub feasible: bool,
}

impl DesignPoint {
    /// Short label, e.g. `9s/2e/6ntt/4pe/1pk`.
    pub fn label(&self) -> String {
        format!(
            "{}s/{}e/{}ntt/{}pe/{}pk",
            self.config.engine.pipeline_stages,
            self.config.engines,
            self.config.engine.ntt_units,
            self.config.engine.bfus_per_ntt,
            self.config.engine.pack_units
        )
    }
}

/// The exploration driver.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    device: FpgaDevice,
    shape: RingShape,
    /// Scoring workload (rows, cols).
    pub workload: (usize, usize),
    /// Utilisation ceiling for feasibility (paper: 0.75).
    pub max_utilization: f64,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self {
            device: FpgaDevice::vu9p(),
            shape: RingShape::cham(),
            workload: (4096, 4096),
            max_utilization: 0.75,
        }
    }
}

impl DesignSpace {
    /// Creates an exploration over a device.
    pub fn new(device: FpgaDevice) -> Self {
        Self {
            device,
            ..Self::default()
        }
    }

    /// Evaluates one configuration.
    ///
    /// # Errors
    /// Propagates invalid configurations.
    pub fn evaluate(&self, config: ChamConfig) -> Result<DesignPoint> {
        let model = HmvpCycleModel::new(config, self.shape)?;
        // Merged pipeline stages serialise their work: below the natural
        // 9-way split, throughput scales down by the merge factor.
        let stage_penalty = if config.engine.pipeline_stages < 9 {
            config.engine.pipeline_stages as f64 / 9.0
        } else {
            1.0
        };
        let throughput =
            model.hmvp_throughput_macs(self.workload.0, self.workload.1) * stage_penalty;
        let resources = ResourceModel::new(self.device.clone()).chip(&config);
        let utilization = resources.max_utilization(&self.device);
        Ok(DesignPoint {
            config,
            throughput,
            utilization,
            feasible: utilization <= self.max_utilization,
        })
    }

    /// Enumerates the paper's exploration grid.
    pub fn candidate_grid(&self) -> Vec<ChamConfig> {
        let mut out = Vec::new();
        for stages in [5usize, 7, 9, 11] {
            for engines in [1usize, 2, 3] {
                for ntt_units in [2usize, 4, 6, 8] {
                    for n_bf in [2usize, 4, 8] {
                        for pack_units in [1usize, 2] {
                            // The DSE balance rule (§III-B): lane counts
                            // track butterfly parallelism so stage
                            // latencies stay matched.
                            let engine = EngineConfig {
                                ntt_units,
                                intt_units: ntt_units,
                                bfus_per_ntt: n_bf,
                                mult_lanes: n_bf,
                                ppu_lanes: n_bf,
                                pack_units,
                                pipeline_stages: stages,
                                reduce_buffer_cts: 16,
                                ram_strategy: Default::default(),
                            };
                            out.push(ChamConfig {
                                engine,
                                engines,
                                clock_hz: 300e6,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Evaluates the whole grid.
    ///
    /// # Errors
    /// Propagates evaluation failures (none for the built-in grid).
    pub fn explore(&self) -> Result<Vec<DesignPoint>> {
        self.candidate_grid()
            .into_iter()
            .map(|c| self.evaluate(c))
            .collect()
    }

    /// The Pareto frontier of *feasible* points: no other feasible point
    /// has both higher throughput and lower utilisation.
    pub fn pareto(points: &[DesignPoint]) -> Vec<DesignPoint> {
        let feasible: Vec<&DesignPoint> = points.iter().filter(|p| p.feasible).collect();
        feasible
            .iter()
            .filter(|p| {
                !feasible.iter().any(|q| {
                    q.throughput > p.throughput && q.utilization <= p.utilization
                        || q.throughput >= p.throughput && q.utilization < p.utilization
                })
            })
            .map(|p| (*p).clone())
            .collect()
    }

    /// The best feasible point by throughput.
    pub fn best(points: &[DesignPoint]) -> Option<&DesignPoint> {
        points
            .iter()
            .filter(|p| p.feasible)
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size() {
        let ds = DesignSpace::default();
        assert_eq!(ds.candidate_grid().len(), 4 * 3 * 4 * 3 * 2);
    }

    #[test]
    fn shipped_point_is_feasible_and_strong() {
        let ds = DesignSpace::default();
        let points = ds.explore().unwrap();
        let shipped = ds.evaluate(ChamConfig::cham()).unwrap();
        assert!(shipped.feasible, "shipped util {}", shipped.utilization);
        let best = DesignSpace::best(&points).unwrap();
        // The shipped point should be within 25% of the grid optimum —
        // Fig. 2b picks it as one of the best-performing feasible points.
        assert!(
            shipped.throughput >= best.throughput * 0.75,
            "shipped {} vs best {} ({})",
            shipped.throughput,
            best.throughput,
            best.label()
        );
    }

    #[test]
    fn both_paper_points_feasible_and_similar() {
        let ds = DesignSpace::default();
        let a = ds.evaluate(ChamConfig::cham()).unwrap();
        let b = ds.evaluate(ChamConfig::cham_wide()).unwrap();
        assert!(a.feasible && b.feasible);
        let ratio = a.throughput / b.throughput;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn oversized_configs_are_infeasible() {
        let ds = DesignSpace::default();
        let huge = ChamConfig {
            engine: EngineConfig {
                ntt_units: 8,
                intt_units: 8,
                bfus_per_ntt: 8,
                mult_lanes: 8,
                ppu_lanes: 8,
                pack_units: 2,
                pipeline_stages: 11,
                reduce_buffer_cts: 16,
                ram_strategy: Default::default(),
            },
            engines: 3,
            clock_hz: 300e6,
        };
        let p = ds.evaluate(huge).unwrap();
        assert!(!p.feasible, "util {}", p.utilization);
    }

    #[test]
    fn pareto_is_nonempty_and_feasible() {
        let ds = DesignSpace::default();
        let points = ds.explore().unwrap();
        let pareto = DesignSpace::pareto(&points);
        assert!(!pareto.is_empty());
        assert!(pareto.iter().all(|p| p.feasible));
        // Pareto points are mutually non-dominated.
        for p in &pareto {
            for q in &pareto {
                let dominates = q.throughput > p.throughput && q.utilization < p.utilization;
                assert!(!dominates);
            }
        }
    }

    #[test]
    fn fewer_stages_hurt_throughput() {
        let ds = DesignSpace::default();
        let mut c5 = ChamConfig::cham();
        c5.engine.pipeline_stages = 5;
        let p5 = ds.evaluate(c5).unwrap();
        let p9 = ds.evaluate(ChamConfig::cham()).unwrap();
        assert!(p9.throughput > p5.throughput);
    }

    #[test]
    fn labels_are_readable() {
        let ds = DesignSpace::default();
        let p = ds.evaluate(ChamConfig::cham()).unwrap();
        assert_eq!(p.label(), "9s/2e/6ntt/4pe/1pk");
    }
}
