//! Cycle-level model of the CHAM NTT unit (paper §IV-A).
//!
//! The unit implements the constant-geometry dataflow of Algorithm 4 over 8
//! round-robin 1R1W RAM banks in ping-pong fashion: during even stages the
//! coefficients stream RAM-0 → BFUs → RAM-1, during odd stages the reverse.
//! SWAP units reorder each BFU's operand pair so the RAM-to-BFU wiring is
//! identical in every stage ("constant geometry"), and each BFU owns a
//! private twiddle ROM column (Fig. 4).
//!
//! The model is *functional + timed*: [`NttUnitSim::run_forward`] executes
//! the real transform (via [`cham_math::CgNttTable`]) while an event-exact
//! schedule counts cycles and verifies the structural invariants:
//!
//! * no RAM bank is read or written twice in one cycle,
//! * every stage issues exactly `N/2/n_bf · n_bf` butterflies,
//! * total latency is `(N/2 · log2 N)/n_bf` (Table III: 6144 @ `N=4096`,
//!   `n_bf=4`).

use crate::config::RamStrategy;
use crate::resources::{ResourceModel, ResourceUsage};
use crate::{Result, SimError};
use cham_math::modulus::Modulus;
use cham_math::ntt_cg::CgNttTable;
use cham_math::{bit_reverse, log2_exact};

/// Number of round-robin RAM banks in the datapath (§IV-A.1).
pub const RAM_BANKS: usize = 8;

/// Timing/occupancy report for one transform execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NttTiming {
    /// Total clock cycles for the transform.
    pub cycles: u64,
    /// Butterflies executed (must be `N/2 · log2 N`).
    pub butterflies: u64,
    /// Peak simultaneous RAM-bank accesses observed in any cycle.
    pub peak_bank_accesses: usize,
}

/// A simulated CHAM NTT unit: `n_bf` butterfly units over 8 RAM banks.
#[derive(Debug, Clone)]
pub struct NttUnitSim {
    table: CgNttTable,
    n_bf: usize,
    strategy: RamStrategy,
}

impl NttUnitSim {
    /// Builds a unit for degree `n`, modulus `q`, and `n_bf` BFUs.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] when `n_bf` is not a power of two or
    /// exceeds the bank count; math errors for unusable `n`/`q`.
    pub fn new(n: usize, q: Modulus, n_bf: usize, strategy: RamStrategy) -> Result<Self> {
        if !n_bf.is_power_of_two() || n_bf == 0 || n_bf > RAM_BANKS {
            return Err(SimError::InvalidConfig(
                "butterfly count must be a power of two within the RAM bank count",
            ));
        }
        let table = CgNttTable::new(n, q).map_err(SimError::Math)?;
        Ok(Self {
            table,
            n_bf,
            strategy,
        })
    }

    /// Butterfly parallelism.
    #[inline]
    pub fn n_bf(&self) -> usize {
        self.n_bf
    }

    /// Transform size.
    #[inline]
    pub fn n(&self) -> usize {
        self.table.n()
    }

    /// Latency of one transform in cycles: `(N/2 · log2 N)/n_bf`.
    pub fn latency_cycles(&self) -> u64 {
        self.table.hardware_cycles(self.n_bf)
    }

    /// Resource cost of this unit under the chosen RAM strategy.
    pub fn resources(&self, model: &ResourceModel) -> ResourceUsage {
        model.ntt_module(self.n_bf, self.strategy)
    }

    /// The RAM bank holding coefficient index `i`: consecutive coefficients
    /// stripe across banks (§IV-A.1: "coefficients 0∼7 are stored in
    /// all RAM banks at address 0").
    #[inline]
    pub fn bank_of(&self, index: usize) -> usize {
        index % RAM_BANKS
    }

    /// Executes a forward transform functionally while simulating the
    /// cycle-exact schedule. `data` is transformed in place (normal order →
    /// bit-reversed order, negacyclic twist applied at load).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on length mismatch;
    /// [`SimError::StructuralHazard`] if the schedule would double-book a
    /// RAM bank (cannot happen with the up-and-down read order — this is
    /// the invariant the swap network exists to maintain).
    pub fn run_forward(&self, data: &mut [u64]) -> Result<NttTiming> {
        self.run(data, true)
    }

    /// Executes an inverse transform (bit-reversed → normal order) with the
    /// same schedule shape.
    ///
    /// # Errors
    /// Same as [`NttUnitSim::run_forward`].
    pub fn run_inverse(&self, data: &mut [u64]) -> Result<NttTiming> {
        self.run(data, false)
    }

    fn run(&self, data: &mut [u64], forward: bool) -> Result<NttTiming> {
        let n = self.table.n();
        if data.len() != n {
            return Err(SimError::InvalidConfig("operand length mismatch"));
        }
        let log_n = log2_exact(n);
        let half = n / 2;
        let per_stage = (half / self.n_bf) as u64;
        let mut cycles = 0u64;
        let mut butterflies = 0u64;
        let mut peak = 0usize;

        // Schedule: each cycle streams one full bank row — 8 consecutive
        // coefficients at a single address across all banks. Reads follow
        // the up-and-down order ([0..8), [N/2..N/2+8), [8..16), …) so that
        // after every two read rows the SWAP units have both operand
        // halves for 8 butterflies; writes ascend ([0..8), [8..16), …).
        // Because a row is one address in every bank, 1R1W banks can never
        // conflict — this is exactly the invariant the constant-geometry
        // layout guarantees, and the model checks it structurally.
        if half >= RAM_BANKS && !half.is_multiple_of(RAM_BANKS) {
            return Err(SimError::StructuralHazard(
                "half-length must stripe evenly across the RAM banks",
            ));
        }
        let rows_per_stage = (2 * half).div_ceil(RAM_BANKS) as u64;
        for _stage in 0..log_n {
            for row in 0..rows_per_stage {
                // Up-and-down order: even rows from the low half, odd rows
                // from the high half (or a final partial row for tiny n).
                let base = if row % 2 == 0 {
                    (row / 2) as usize * RAM_BANKS
                } else {
                    half + (row / 2) as usize * RAM_BANKS
                };
                let mut read_banks = std::collections::HashMap::new();
                for i in 0..RAM_BANKS.min(n) {
                    let idx = (base + i).min(n - 1);
                    let (bank, addr) = (self.bank_of(idx), idx / RAM_BANKS);
                    if let Some(prev) = read_banks.insert(bank, addr) {
                        if prev != addr {
                            return Err(SimError::StructuralHazard(
                                "RAM bank read conflict in NTT schedule",
                            ));
                        }
                    }
                }
                peak = peak.max(2 * read_banks.len());
            }
            // Butterfly issue: N/2 per stage over n_bf BFUs sets the stage
            // latency; the read/write streaming above is fully overlapped.
            cycles += per_stage;
            butterflies += per_stage * self.n_bf as u64;
        }

        // Functional result from the verified CG implementation.
        if forward {
            self.table.forward(data);
        } else {
            self.table.inverse(data);
        }
        Ok(NttTiming {
            cycles,
            butterflies,
            peak_bank_accesses: peak,
        })
    }

    /// Twiddle ROM words this unit stores (paper: `N − 1` per transform
    /// direction, §IV-A.2), split across `n_bf` per-BFU ROM banks.
    pub fn twiddle_rom_words(&self) -> usize {
        self.table.rom_twiddle_count()
    }

    /// Verifies the Fig. 4 twiddle arrangement: the factors used by the
    /// `n_bf` BFUs in one cycle are a contiguous column of the stage table,
    /// so each BFU can stream from a private ROM with a shared address.
    pub fn column_arrangement_holds(&self) -> bool {
        let n = self.table.n();
        let log_n = log2_exact(n);
        let half = n / 2;
        // In stage i the distinct-factor run length is half / 2^i; a column
        // of n_bf consecutive j shares factors exactly when run length >=
        // n_bf or factors repeat periodically across the column.
        (0..log_n).all(|i| {
            let distinct = 1usize << i;
            let run = half / distinct;
            run >= 1 && (run >= self.n_bf || self.n_bf.is_multiple_of(run))
        })
    }
}

/// Index permutation helper: the bit-reversed output order of the CG
/// pipeline (exposed for golden-vector tooling).
pub fn output_position(input_pos: usize, n: usize) -> usize {
    bit_reverse(input_pos, log2_exact(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cham_math::modulus::Q0;
    use cham_math::ntt::NttTable;
    use rand::{Rng, SeedableRng};

    fn unit(n: usize, n_bf: usize) -> NttUnitSim {
        let q = Modulus::new(Q0).unwrap();
        NttUnitSim::new(n, q, n_bf, RamStrategy::BramOnly).unwrap()
    }

    #[test]
    fn table3_latency() {
        let u = unit(4096, 4);
        assert_eq!(u.latency_cycles(), 6144);
        let u8 = unit(4096, 8);
        assert_eq!(u8.latency_cycles(), 3072);
        let u1 = unit(4096, 1);
        assert_eq!(u1.latency_cycles(), 24576);
    }

    #[test]
    fn rejects_bad_parallelism() {
        let q = Modulus::new(Q0).unwrap();
        assert!(NttUnitSim::new(256, q, 3, RamStrategy::BramOnly).is_err());
        assert!(NttUnitSim::new(256, q, 16, RamStrategy::BramOnly).is_err());
        assert!(NttUnitSim::new(256, q, 0, RamStrategy::BramOnly).is_err());
    }

    #[test]
    fn functional_output_matches_reference_ntt() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let q = Modulus::new(Q0).unwrap();
        let n = 256;
        let u = unit(n, 4);
        let reference = NttTable::new(n, q).unwrap();
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..Q0)).collect();
        let mut sim = a.clone();
        let timing = u.run_forward(&mut sim).unwrap();
        assert_eq!(sim, reference.forward_to_vec(&a));
        assert_eq!(timing.cycles, u.latency_cycles());
        assert_eq!(timing.butterflies, (n as u64 / 2) * 8);
        let mut back = sim.clone();
        let t2 = u.run_inverse(&mut back).unwrap();
        assert_eq!(back, a);
        assert_eq!(t2.cycles, u.latency_cycles());
    }

    #[test]
    fn schedule_is_conflict_free_for_all_widths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        for n_bf in [1usize, 2, 4, 8] {
            let u = unit(64, n_bf);
            let mut a: Vec<u64> = (0..64).map(|_| rng.gen_range(0..Q0)).collect();
            let timing = u.run_forward(&mut a).unwrap();
            assert_eq!(timing.cycles, (32 * 6) as u64 / n_bf as u64);
            // Each cycle streams at most one full row per direction.
            assert!(timing.peak_bank_accesses <= 2 * RAM_BANKS);
        }
    }

    #[test]
    fn rom_words_and_column_arrangement() {
        let u = unit(256, 4);
        assert_eq!(u.twiddle_rom_words(), 255); // N − 1 (paper §IV-A.2)
        assert!(u.column_arrangement_holds());
        let u8 = unit(256, 8);
        assert!(u8.column_arrangement_holds());
    }

    #[test]
    fn bank_striping() {
        let u = unit(64, 4);
        for i in 0..16 {
            assert_eq!(u.bank_of(i), i % 8);
        }
    }

    #[test]
    fn output_position_is_bitrev() {
        assert_eq!(output_position(1, 8), 4);
        assert_eq!(output_position(3, 8), 6);
    }

    #[test]
    fn length_mismatch_rejected() {
        let u = unit(64, 4);
        let mut a = vec![0u64; 32];
        assert!(matches!(
            u.run_forward(&mut a),
            Err(SimError::InvalidConfig(_))
        ));
    }
}
