//! Heterogeneous CPU+FPGA execution model (paper §III-C, Fig. 1b).
//!
//! The host pipelines data transfer against FPGA compute with multiple
//! threads; the FPGA buffers each thread's I/O in dedicated RAMs. The model
//! is a discrete-event schedule over three resource classes — the PCIe link
//! (half-duplex per direction), the host threads, and the compute engines —
//! reproducing the overlap behaviour of Fig. 1b.
//!
//! The runtime's RAS features (§III-C: register-load error handling,
//! hang/reset, health monitoring) are modelled as injectable fault events
//! with their recovery costs, so failure-handling paths are testable.

use crate::pipeline::HmvpCycleModel;
use crate::{Result, SimError};

/// One HMVP job submitted by a host thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmvpJob {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
}

impl HmvpJob {
    /// Bytes shipped to the FPGA: matrix plaintexts + vector ciphertext.
    pub fn input_bytes(&self, degree: usize, aug_limbs: usize) -> u64 {
        let tiles = self.cols.div_ceil(degree) as u64;
        let row_bytes = tiles * aug_limbs as u64 * degree as u64 * 8;
        self.rows as u64 * row_bytes + tiles * 2 * aug_limbs as u64 * degree as u64 * 8
    }

    /// Bytes returned: the packed result ciphertexts.
    pub fn output_bytes(&self, degree: usize, ct_limbs: usize) -> u64 {
        let packs = self.rows.div_ceil(degree) as u64;
        packs * 2 * ct_limbs as u64 * degree as u64 * 8
    }
}

/// Injectable RAS fault events (§III-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A corrupted register load detected on job `job`; the runtime
    /// re-loads and retries the job.
    RegisterLoadError {
        /// Index of the affected job.
        job: usize,
    },
    /// The FPGA hangs during job `job`; the runtime resets the board
    /// (costing `reset_seconds`) and retries.
    Hang {
        /// Index of the affected job.
        job: usize,
        /// Reset-and-reload cost in seconds.
        reset_seconds: f64,
    },
}

/// Which system resource an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeteroResource {
    /// Host→FPGA PCIe transfer.
    LinkIn,
    /// One of the compute engines.
    Engine(usize),
    /// FPGA→host PCIe transfer.
    LinkOut,
}

/// One scheduled interval in the overlap timeline (the bars of Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroEvent {
    /// Job index.
    pub job: usize,
    /// Occupied resource.
    pub resource: HeteroResource,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// Outcome of a heterogeneous run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// End-to-end makespan in seconds.
    pub makespan: f64,
    /// Sum of FPGA compute time (all engines).
    pub compute_seconds: f64,
    /// Sum of transfer time (both directions).
    pub transfer_seconds: f64,
    /// Fraction of the makespan the engines were busy.
    pub engine_utilization: f64,
    /// Number of jobs retried due to faults.
    pub retries: usize,
    /// Health-probe count emitted by the monitor model.
    pub health_probes: u64,
    /// The full event timeline (transfer and compute intervals per job).
    pub events: Vec<HeteroEvent>,
}

impl ScheduleReport {
    /// Renders the Fig. 1b overlap picture as a text Gantt chart: one lane
    /// per resource, one character per `makespan/width` seconds, digits
    /// identify jobs.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(8);
        let scale = self.makespan / width as f64;
        let engines = self
            .events
            .iter()
            .filter_map(|e| match e.resource {
                HeteroResource::Engine(i) => Some(i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut lanes: Vec<(String, Vec<u8>)> = Vec::new();
        lanes.push(("in".into(), vec![b'.'; width]));
        for i in 0..engines {
            lanes.push((format!("eng{i}"), vec![b'.'; width]));
        }
        lanes.push(("out".into(), vec![b'.'; width]));
        for e in &self.events {
            let lane = match e.resource {
                HeteroResource::LinkIn => 0,
                HeteroResource::Engine(i) => 1 + i,
                HeteroResource::LinkOut => 1 + engines,
            };
            let a = ((e.start / scale) as usize).min(width - 1);
            let b = (((e.end / scale).ceil()) as usize).clamp(a + 1, width);
            let ch = b'0' + (e.job % 10) as u8;
            for c in lanes[lane].1.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        let mut out = String::new();
        for (name, lane) in lanes {
            out.push_str(&format!(
                "{:>5} |{}|\n",
                name,
                String::from_utf8_lossy(&lane)
            ));
        }
        out
    }
}

/// The host+FPGA system model.
#[derive(Debug, Clone)]
pub struct HeteroSystem {
    model: HmvpCycleModel,
    /// Host threads pipelining transfers (Fig. 1b explores 1–3).
    pub host_threads: usize,
    /// PCIe effective bandwidth per direction, bytes/s (Gen3 x16 ≈ 12 GB/s
    /// effective).
    pub pcie_bytes_per_sec: f64,
    /// Health-monitor probe period in seconds.
    pub health_period: f64,
}

impl HeteroSystem {
    /// Creates the system around a cycle model.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for zero threads or non-positive
    /// bandwidth.
    pub fn new(
        model: HmvpCycleModel,
        host_threads: usize,
        pcie_bytes_per_sec: f64,
    ) -> Result<Self> {
        if host_threads == 0 {
            return Err(SimError::InvalidConfig("at least one host thread required"));
        }
        if pcie_bytes_per_sec <= 0.0 || pcie_bytes_per_sec.is_nan() {
            return Err(SimError::InvalidConfig("bandwidth must be positive"));
        }
        Ok(Self {
            model,
            host_threads,
            pcie_bytes_per_sec,
            health_period: 1.0,
        })
    }

    /// Runs a job list through the overlap schedule with optional fault
    /// injection, returning the makespan report.
    pub fn run(&self, jobs: &[HmvpJob], faults: &[FaultEvent]) -> ScheduleReport {
        let shape = *self.model.shape();
        let engines = self.model.config().engines;
        // Resource availability times.
        let mut link_in_free = 0.0f64;
        let mut link_out_free = 0.0f64;
        let mut engine_free = vec![0.0f64; engines];
        let mut thread_free = vec![0.0f64; self.host_threads];

        let mut compute_total = 0.0;
        let mut transfer_total = 0.0;
        let mut makespan: f64 = 0.0;
        let mut retries = 0usize;
        let mut events = Vec::with_capacity(3 * jobs.len());

        for (idx, job) in jobs.iter().enumerate() {
            let t_in =
                job.input_bytes(shape.degree, shape.aug_limbs) as f64 / self.pcie_bytes_per_sec;
            let t_out =
                job.output_bytes(shape.degree, shape.ct_limbs) as f64 / self.pcie_bytes_per_sec;
            let mut t_compute = self.model.hmvp_seconds(job.rows, job.cols);

            // Fault handling: retried jobs pay the recovery cost and run
            // their compute twice (detected at completion).
            for f in faults {
                match *f {
                    FaultEvent::RegisterLoadError { job } if job == idx => {
                        retries += 1;
                        t_compute += self.model.hmvp_seconds(jobs[idx].rows, jobs[idx].cols);
                    }
                    FaultEvent::Hang { job, reset_seconds } if job == idx => {
                        retries += 1;
                        t_compute +=
                            reset_seconds + self.model.hmvp_seconds(jobs[idx].rows, jobs[idx].cols);
                    }
                    _ => {}
                }
            }

            // Pick the earliest-available host thread; it owns this job's
            // two transfers.
            let (tid, _) = thread_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one thread");
            // Input transfer occupies the thread and the inbound link.
            let in_start = thread_free[tid].max(link_in_free);
            let in_end = in_start + t_in;
            link_in_free = in_end;
            events.push(HeteroEvent {
                job: idx,
                resource: HeteroResource::LinkIn,
                start: in_start,
                end: in_end,
            });
            // Compute on the earliest-free engine.
            let (eid, _) = engine_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one engine");
            let c_start = in_end.max(engine_free[eid]);
            let c_end = c_start + t_compute;
            engine_free[eid] = c_end;
            events.push(HeteroEvent {
                job: idx,
                resource: HeteroResource::Engine(eid),
                start: c_start,
                end: c_end,
            });
            // Output transfer.
            let o_start = c_end.max(link_out_free);
            let o_end = o_start + t_out;
            link_out_free = o_end;
            thread_free[tid] = o_end;
            events.push(HeteroEvent {
                job: idx,
                resource: HeteroResource::LinkOut,
                start: o_start,
                end: o_end,
            });

            compute_total += t_compute;
            transfer_total += t_in + t_out;
            makespan = makespan.max(o_end);
        }

        let engine_utilization = if makespan > 0.0 {
            (compute_total / engines as f64) / makespan
        } else {
            0.0
        };
        ScheduleReport {
            makespan,
            compute_seconds: compute_total,
            transfer_seconds: transfer_total,
            engine_utilization: engine_utilization.min(1.0),
            retries,
            health_probes: (makespan / self.health_period).ceil() as u64,
            events,
        }
    }

    /// Serial (no-overlap) reference: transfers and compute strictly
    /// alternate on one thread and one engine.
    pub fn run_serial(&self, jobs: &[HmvpJob]) -> f64 {
        let shape = *self.model.shape();
        jobs.iter()
            .map(|j| {
                j.input_bytes(shape.degree, shape.aug_limbs) as f64 / self.pcie_bytes_per_sec
                    + self.model.hmvp_seconds(j.rows, j.cols) * self.model.config().engines as f64
                    + j.output_bytes(shape.degree, shape.ct_limbs) as f64 / self.pcie_bytes_per_sec
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::HmvpCycleModel;

    fn system(threads: usize) -> HeteroSystem {
        HeteroSystem::new(HmvpCycleModel::cham(), threads, 12e9).unwrap()
    }

    fn jobs(n: usize) -> Vec<HmvpJob> {
        vec![
            HmvpJob {
                rows: 2048,
                cols: 4096
            };
            n
        ]
    }

    #[test]
    fn validation() {
        assert!(HeteroSystem::new(HmvpCycleModel::cham(), 0, 12e9).is_err());
        assert!(HeteroSystem::new(HmvpCycleModel::cham(), 2, 0.0).is_err());
    }

    #[test]
    fn overlap_beats_serial() {
        let sys = system(3);
        let js = jobs(8);
        let report = sys.run(&js, &[]);
        let serial = sys.run_serial(&js);
        assert!(
            report.makespan < serial,
            "overlap {} vs serial {serial}",
            report.makespan
        );
        assert!(report.engine_utilization > 0.3);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn more_threads_improve_overlap() {
        let js = jobs(8);
        let m1 = system(1).run(&js, &[]).makespan;
        let m3 = system(3).run(&js, &[]).makespan;
        assert!(m3 <= m1);
    }

    #[test]
    fn faults_cost_time_and_count_retries() {
        let sys = system(2);
        let js = jobs(4);
        let clean = sys.run(&js, &[]);
        let faulty = sys.run(
            &js,
            &[
                FaultEvent::RegisterLoadError { job: 1 },
                FaultEvent::Hang {
                    job: 2,
                    reset_seconds: 0.5,
                },
            ],
        );
        assert_eq!(faulty.retries, 2);
        assert!(faulty.makespan > clean.makespan);
        assert!(faulty.makespan > 0.5);
    }

    #[test]
    fn health_probes_scale_with_makespan() {
        let sys = system(2);
        let short = sys.run(&jobs(1), &[]);
        let long = sys.run(&jobs(16), &[]);
        assert!(long.health_probes >= short.health_probes);
    }

    #[test]
    fn event_timeline_and_render() {
        let sys = system(3);
        let js = jobs(5);
        let report = sys.run(&js, &[]);
        // 3 events per job, all within the makespan, engines overlap with
        // transfers of other jobs (the Fig. 1b point).
        assert_eq!(report.events.len(), 15);
        for e in &report.events {
            assert!(e.start <= e.end);
            assert!(e.end <= report.makespan + 1e-12);
        }
        // Overlap exists: some engine interval intersects some link-in
        // interval of a different job.
        let overlap = report.events.iter().any(|a| {
            matches!(a.resource, HeteroResource::Engine(_))
                && report.events.iter().any(|b| {
                    matches!(b.resource, HeteroResource::LinkIn)
                        && b.job != a.job
                        && b.start < a.end
                        && a.start < b.end
                })
        });
        assert!(overlap, "no transfer/compute overlap found");
        let chart = report.render(60);
        assert!(chart.contains("in "));
        assert!(chart.contains("eng0"));
        assert!(chart.contains("out"));
        assert_eq!(chart.lines().count(), 2 + 2); // in + 2 engines + out
    }

    #[test]
    fn job_byte_accounting() {
        let j = HmvpJob {
            rows: 4096,
            cols: 4096,
        };
        // Matrix: 4096 rows × 3 limbs × 4096 coeffs × 8 B = 402 MB.
        let input = j.input_bytes(4096, 3);
        assert!(input > 400_000_000 && input < 415_000_000, "{input}");
        // One packed ciphertext: 2 polys × 2 limbs × 4096 × 8 = 131 kB.
        assert_eq!(j.output_bytes(4096, 2), 131_072);
    }
}
