//! Functional + timed co-simulation of the CHAM accelerator.
//!
//! [`SimulatedCham`] executes real HMVP workloads through the `cham-he`
//! algorithm stack (bit-exact with a software run) while the
//! [`crate::pipeline::HmvpCycleModel`] accounts the cycles the FPGA would
//! spend. This is the substitution for the physical VU9P board: the paper's
//! performance numbers are cycle counts at 300 MHz, which the model
//! reproduces from the same pipeline laws.

use crate::config::ChamConfig;
use crate::pipeline::{CycleReport, HmvpCycleModel, RingShape};
use crate::{Result, SimError};
use cham_he::encrypt::{Decryptor, Encryptor};
use cham_he::hmvp::{Hmvp, HmvpResult, Matrix};
use cham_he::keys::GaloisKeys;
use cham_he::params::ChamParams;
use cham_he::prelude::RlweCiphertext;
use rand::Rng;

/// A timed HMVP outcome: the (functionally exact) result plus the cycle
/// report of the modelled hardware run.
#[derive(Debug, Clone)]
pub struct TimedHmvp {
    /// The homomorphic result (decryptable with the owner's key).
    pub result: HmvpResult,
    /// Modelled hardware cycles.
    pub cycles: CycleReport,
    /// Modelled wall-clock seconds at the configured frequency.
    pub seconds: f64,
}

/// The simulated accelerator: configuration + parameter set.
#[derive(Debug, Clone)]
pub struct SimulatedCham {
    model: HmvpCycleModel,
    params: ChamParams,
    hmvp: Hmvp,
}

impl SimulatedCham {
    /// Builds a simulator for a configuration and HE parameter set (the
    /// ring shape is derived from the parameters).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for invalid configurations.
    pub fn new(config: ChamConfig, params: &ChamParams) -> Result<Self> {
        let shape = RingShape {
            degree: params.degree(),
            aug_limbs: params.augmented_context().len(),
            ct_limbs: params.ciphertext_context().len(),
        };
        Ok(Self {
            model: HmvpCycleModel::new(config, shape)?,
            params: params.clone(),
            hmvp: Hmvp::new(params),
        })
    }

    /// The paper's shipped accelerator over the paper's parameters.
    ///
    /// # Errors
    /// Propagates parameter-construction failures.
    pub fn cham() -> Result<Self> {
        let params = ChamParams::cham_default().map_err(SimError::He)?;
        Self::new(ChamConfig::cham(), &params)
    }

    /// The cycle model.
    #[inline]
    pub fn model(&self) -> &HmvpCycleModel {
        &self.model
    }

    /// The HE parameter set.
    #[inline]
    pub fn params(&self) -> &ChamParams {
        &self.params
    }

    /// The underlying HMVP engine (for encoding/encryption helpers).
    #[inline]
    pub fn hmvp(&self) -> &Hmvp {
        &self.hmvp
    }

    /// Runs an HMVP functionally and reports modelled hardware timing.
    ///
    /// # Errors
    /// Propagates HE-layer failures (shape mismatches, missing keys).
    pub fn run_hmvp(
        &self,
        matrix: &Matrix,
        cts: &[RlweCiphertext],
        gkeys: &GaloisKeys,
    ) -> Result<TimedHmvp> {
        let em = self.hmvp.encode_matrix(matrix).map_err(SimError::He)?;
        let result = self.hmvp.multiply(&em, cts, gkeys).map_err(SimError::He)?;
        let cycles = self.model.hmvp_cycles(matrix.rows(), matrix.cols());
        Ok(TimedHmvp {
            seconds: cycles.seconds(self.model.config().clock_hz),
            result,
            cycles,
        })
    }

    /// Timing-only estimate for a shape (no functional execution) — used
    /// by the figure sweeps at the paper's full `N = 4096` scale.
    pub fn estimate_hmvp(&self, rows: usize, cols: usize) -> CycleReport {
        self.model.hmvp_cycles(rows, cols)
    }

    /// Convenience end-to-end check: encrypt, multiply, decrypt, compare
    /// against the plain product. Returns the modelled seconds.
    ///
    /// # Errors
    /// [`SimError::FunctionalMismatch`] if the simulated result disagrees
    /// with the plain computation (this failing would mean the simulator's
    /// functional path diverged — it shares code with `cham-he`, so it
    /// cannot, but the check keeps the co-sim honest).
    pub fn verify_roundtrip<R: Rng + ?Sized>(
        &self,
        matrix: &Matrix,
        v: &[u64],
        enc: &Encryptor,
        dec: &Decryptor,
        gkeys: &GaloisKeys,
        rng: &mut R,
    ) -> Result<f64> {
        let cts = self
            .hmvp
            .encrypt_vector(v, enc, rng)
            .map_err(SimError::He)?;
        let timed = self.run_hmvp(matrix, &cts, gkeys)?;
        let got = self
            .hmvp
            .decrypt_result(&timed.result, dec)
            .map_err(SimError::He)?;
        let expect = matrix
            .mul_vector_mod(v, self.params.plain_modulus())
            .map_err(SimError::He)?;
        if got != expect {
            return Err(SimError::FunctionalMismatch);
        }
        Ok(timed.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cham_he::keys::SecretKey;
    use rand::SeedableRng;

    fn setup() -> (ChamParams, SimulatedCham, rand::rngs::StdRng) {
        let params = ChamParams::insecure_test_default().unwrap();
        let sim = SimulatedCham::new(ChamConfig::cham(), &params).unwrap();
        (params, sim, rand::rngs::StdRng::seed_from_u64(4004))
    }

    #[test]
    fn functional_roundtrip_with_timing() {
        let (params, sim, mut rng) = setup();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        let t = params.plain_modulus().value();
        let a = Matrix::random(32, 64, t, &mut rng);
        let v: Vec<u64> = (0..64).map(|_| rng.gen_range(0..t)).collect();
        let secs = sim
            .verify_roundtrip(&a, &v, &enc, &dec, &gkeys, &mut rng)
            .unwrap();
        assert!(secs > 0.0);
    }

    #[test]
    fn estimates_scale_with_shape() {
        let (_, sim, _) = setup();
        let small = sim.estimate_hmvp(64, 256).total_cycles;
        let tall = sim.estimate_hmvp(512, 256).total_cycles;
        let wide = sim.estimate_hmvp(64, 2048).total_cycles;
        assert!(tall > small);
        assert!(wide > small);
    }

    #[test]
    fn paper_scale_estimate_sanity() {
        // Full-scale HMVP (4096×4096) on the shipped config: each engine
        // packs 2048 rows at ~6144 cycles each → ~42 ms at 300 MHz... per
        // engine row block of 2048 → ≈ 42/2 ms. Order-of-magnitude check.
        let sim = SimulatedCham::cham().unwrap();
        let secs = sim.estimate_hmvp(4096, 4096).seconds(300e6);
        assert!(secs > 1e-3 && secs < 1e-1, "secs {secs}");
    }
}
