//! Pipeline event tracing: a per-row schedule of the 9-stage macro
//! pipeline, renderable as a text Gantt chart.
//!
//! The cycle model in [`crate::pipeline`] gives aggregate bounds; the
//! tracer materialises the actual schedule for a (small) workload so
//! micro-behaviour — stage overlap, reduce-buffer preemption, the packing
//! tree's tail — can be inspected and asserted on. Used by tests and the
//! `accelerator_sim` example; also a debugging aid when calibrating
//! against new hardware data.

use crate::config::ChamConfig;
use crate::pipeline::RingShape;
use crate::{Result, SimError};
use cham_telemetry::json::JsonValue;
use cham_telemetry::trace::ChromeTrace;

/// Pipeline stage identifiers (paper Fig. 1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Stage 1: forward NTT of the plaintext row.
    Ntt,
    /// Stage 2: coefficient-wise multiply.
    MultPoly,
    /// Stage 3: inverse NTT.
    Intt,
    /// Stage 4: rescale + extract.
    RescaleExtract,
    /// Stages 5–9: one `PACKTWOLWES` reduction.
    Pack,
}

impl Stage {
    /// All dot-product stages in order.
    pub const DOT_STAGES: [Stage; 4] = [
        Stage::Ntt,
        Stage::MultPoly,
        Stage::Intt,
        Stage::RescaleExtract,
    ];

    /// All pipeline stages in display order.
    pub const ALL: [Stage; 5] = [
        Stage::Ntt,
        Stage::MultPoly,
        Stage::Intt,
        Stage::RescaleExtract,
        Stage::Pack,
    ];
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Ntt => "NTT",
            Stage::MultPoly => "MULT",
            Stage::Intt => "INTT",
            Stage::RescaleExtract => "RS+EX",
            Stage::Pack => "PACK",
        };
        write!(f, "{s}")
    }
}

/// One scheduled interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The stage executing.
    pub stage: Stage,
    /// Work item: row index for dot stages, reduction index for pack.
    pub item: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// The materialised schedule of one HMVP.
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    /// All events, sorted by start cycle.
    pub events: Vec<TraceEvent>,
    /// Makespan in cycles.
    pub total_cycles: u64,
}

impl PipelineTrace {
    /// Schedules `rows` matrix rows through one engine. Each dot-product
    /// stage is a unit-capacity resource with interval `ii`; `PACKTWOLWES`
    /// consumes pairs as the binary tree allows, bounded by the reduce
    /// buffer.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for zero rows or invalid configs.
    pub fn schedule(config: &ChamConfig, shape: &RingShape, rows: usize) -> Result<Self> {
        cham_telemetry::counter_add!("cham_sim.trace.schedule", 1);
        cham_telemetry::time_scope!("cham_sim.trace.schedule");
        config.validate()?;
        if rows == 0 {
            return Err(SimError::InvalidConfig("at least one row required"));
        }
        let ii = shape.ntt_cycles(config.engine.bfus_per_ntt);
        let mut events = Vec::new();
        // Dot stages: classic pipelined schedule; stage s of row r starts
        // at max(prev stage of r, stage s of r-1) — uniform ii makes this
        // (r + s) · ii.
        let mut row_done = vec![0u64; rows];
        for (r, done) in row_done.iter_mut().enumerate() {
            for (s, stage) in Stage::DOT_STAGES.iter().enumerate() {
                let start = (r as u64 + s as u64) * ii;
                events.push(TraceEvent {
                    stage: *stage,
                    item: r,
                    start,
                    end: start + ii,
                });
                *done = start + ii;
            }
        }
        // Pack tree: the single PACKTWOLWES unit greedily consumes
        // whichever reduction is ready first — level-1 pairs from the
        // extraction stream and deeper-level pairs fed back through the
        // reduce buffer interleave into the unit's idle slots.
        let pack_ii = ii / config.engine.pack_units as u64;
        let padded = rows.next_power_of_two();
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // Reduction ids are assigned level by level: level-1 reductions are
        // 0..padded/2, level-2 follow, and so on up to the root. A child's
        // completion is "fed" to its parent; once both children report, the
        // parent enters the ready heap.
        let mut level_base = vec![0usize];
        {
            let mut width = padded / 2;
            let mut base = 0;
            while width >= 1 {
                base += width;
                level_base.push(base);
                if width == 1 {
                    break;
                }
                width /= 2;
            }
        }
        let reductions = padded - 1;
        let mut reports: Vec<(u64, u8)> = vec![(0, 0); reductions];
        let feed = |idx_in_level: usize,
                    level: usize,
                    time: u64,
                    reports: &mut Vec<(u64, u8)>,
                    heap: &mut BinaryHeap<Reverse<(u64, usize)>>| {
            // The consumer of output `idx_in_level` at `level` is reduction
            // idx_in_level/2 of the next level.
            if level + 1 > level_base.len() - 1 {
                return;
            }
            let red = level_base[level] + idx_in_level / 2;
            if red >= reductions {
                return;
            }
            let entry = &mut reports[red];
            entry.0 = entry.0.max(time);
            entry.1 += 1;
            if entry.1 == 2 {
                heap.push(Reverse((entry.0, red)));
            }
        };
        for leaf in 0..padded {
            let time = row_done.get(leaf).copied().unwrap_or(0);
            feed(leaf, 0, time, &mut reports, &mut heap);
        }
        let mut pack_free = 0u64;
        while let Some(Reverse((ready, red))) = heap.pop() {
            let start = ready.max(pack_free);
            let end = start + pack_ii;
            events.push(TraceEvent {
                stage: Stage::Pack,
                item: red,
                start,
                end,
            });
            pack_free = end;
            // Which level does `red` belong to, and what is its index?
            let level = level_base
                .windows(2)
                .position(|w| red >= w[0] && red < w[1])
                .map(|l| l + 1)
                .expect("reduction id within tree");
            let idx_in_level = red - level_base[level - 1];
            feed(idx_in_level, level, end, &mut reports, &mut heap);
        }
        events.sort_by_key(|e| (e.start, e.item));
        let total_cycles = events.iter().map(|e| e.end).max().unwrap_or(0);
        Ok(Self {
            events,
            total_cycles,
        })
    }

    /// Events for one stage.
    pub fn stage_events(&self, stage: Stage) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.stage == stage)
    }

    /// Busy cycles per stage.
    pub fn stage_busy(&self, stage: Stage) -> u64 {
        self.stage_events(stage).map(|e| e.end - e.start).sum()
    }

    /// Utilisation of a stage over the makespan.
    pub fn stage_utilization(&self, stage: Stage) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.stage_busy(stage) as f64 / self.total_cycles as f64
    }

    /// Idle ("stall") cycles of a stage between its first start and its
    /// last end — gaps where the unit sits ready but has no input.
    pub fn stage_stall(&self, stage: Stage) -> u64 {
        let mut evs: Vec<_> = self.stage_events(stage).collect();
        evs.sort_by_key(|e| e.start);
        evs.windows(2)
            .map(|w| w[1].start.saturating_sub(w[0].end))
            .sum()
    }

    /// Aggregate occupancy: busy cycles summed over all five stages,
    /// divided by `5 × makespan` (1.0 = every unit busy every cycle).
    pub fn occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let busy: u64 = Stage::ALL.iter().map(|&s| self.stage_busy(s)).sum();
        busy as f64 / (Stage::ALL.len() as u64 * self.total_cycles) as f64
    }

    /// Per-stage busy/stall/utilisation plus makespan and occupancy, as a
    /// JSON object suitable for embedding in a benchmark run record.
    pub fn metrics_json(&self) -> JsonValue {
        let stages: Vec<(String, JsonValue)> = Stage::ALL
            .iter()
            .map(|&s| {
                (
                    s.to_string(),
                    JsonValue::Object(vec![
                        (
                            "events".into(),
                            JsonValue::from(self.stage_events(s).count()),
                        ),
                        ("busy_cycles".into(), JsonValue::UInt(self.stage_busy(s))),
                        ("stall_cycles".into(), JsonValue::UInt(self.stage_stall(s))),
                        (
                            "utilization".into(),
                            JsonValue::Float(self.stage_utilization(s)),
                        ),
                    ]),
                )
            })
            .collect();
        JsonValue::Object(vec![
            ("total_cycles".into(), JsonValue::UInt(self.total_cycles)),
            ("occupancy".into(), JsonValue::Float(self.occupancy())),
            ("stages".into(), JsonValue::Object(stages)),
        ])
    }

    /// Converts the schedule to a Chrome Trace Event (Perfetto) trace:
    /// one named track per pipeline stage, one complete event per
    /// scheduled interval. Cycles are mapped to microseconds at
    /// `clock_hz` so the Perfetto timeline reads in real accelerator
    /// time; event args carry the raw cycle numbers.
    pub fn to_chrome_trace(&self, clock_hz: f64) -> ChromeTrace {
        let us_per_cycle = 1e6 / clock_hz.max(1.0);
        let mut trace = ChromeTrace::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            trace.thread_name(i as u64 + 1, stage.to_string());
        }
        for e in &self.events {
            let tid = Stage::ALL
                .iter()
                .position(|&s| s == e.stage)
                .expect("stage in ALL") as u64
                + 1;
            let label = match e.stage {
                Stage::Pack => format!("pack {}", e.item),
                _ => format!("row {}", e.item),
            };
            trace.complete(
                tid,
                label,
                "stage",
                e.start as f64 * us_per_cycle,
                (e.end - e.start) as f64 * us_per_cycle,
                vec![
                    ("item".into(), JsonValue::from(e.item)),
                    ("start_cycle".into(), JsonValue::UInt(e.start)),
                    ("end_cycle".into(), JsonValue::UInt(e.end)),
                ],
            );
        }
        trace
    }

    /// Writes the schedule as Chrome Trace Event JSON (see
    /// [`Self::to_chrome_trace`]) — open the file in
    /// <https://ui.perfetto.dev> or `chrome://tracing`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_chrome_trace(
        &self,
        path: impl AsRef<std::path::Path>,
        clock_hz: f64,
    ) -> std::io::Result<()> {
        self.to_chrome_trace(clock_hz).write(path)
    }

    /// Verifies that no two events of the same stage overlap (each stage
    /// is one hardware resource).
    pub fn is_conflict_free(&self) -> bool {
        for stage in Stage::ALL {
            let mut evs: Vec<_> = self.stage_events(stage).collect();
            evs.sort_by_key(|e| e.start);
            for w in evs.windows(2) {
                if w[1].start < w[0].end {
                    return false;
                }
            }
        }
        true
    }

    /// Renders a coarse text Gantt chart (one character per `scale`
    /// cycles; rows = stages).
    pub fn render(&self, scale: u64) -> String {
        let width = self.total_cycles.div_ceil(scale.max(1)) as usize;
        let mut out = String::new();
        for stage in Stage::ALL {
            let mut lane = vec![b'.'; width];
            for e in self.stage_events(stage) {
                let a = (e.start / scale.max(1)) as usize;
                let b = (e.end.div_ceil(scale.max(1)) as usize).min(width);
                let ch = b'0' + (e.item % 10) as u8;
                for c in lane.iter_mut().take(b).skip(a) {
                    *c = ch;
                }
            }
            out.push_str(&format!(
                "{:>6} |{}|\n",
                stage.to_string(),
                String::from_utf8_lossy(&lane)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChamConfig;

    fn trace(rows: usize) -> PipelineTrace {
        PipelineTrace::schedule(&ChamConfig::cham(), &RingShape::cham(), rows).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(PipelineTrace::schedule(&ChamConfig::cham(), &RingShape::cham(), 0).is_err());
    }

    #[test]
    fn schedule_is_conflict_free() {
        for rows in [1usize, 2, 7, 16, 64] {
            let t = trace(rows);
            assert!(t.is_conflict_free(), "rows={rows}");
        }
    }

    #[test]
    fn event_counts() {
        let rows = 16;
        let t = trace(rows);
        // 4 dot events per row + (padded − 1) reductions.
        assert_eq!(t.stage_events(Stage::Ntt).count(), rows);
        assert_eq!(t.stage_events(Stage::Pack).count(), rows - 1);
        assert_eq!(t.events.len(), 4 * rows + rows - 1);
    }

    #[test]
    fn steady_state_matches_cycle_model() {
        // For large row counts the trace's makespan per row approaches the
        // balanced interval (6144 cycles).
        let rows = 256;
        let t = trace(rows);
        let per_row = t.total_cycles as f64 / rows as f64;
        assert!((per_row - 6144.0).abs() / 6144.0 < 0.1, "per_row {per_row}");
    }

    #[test]
    fn pack_tail_extends_makespan() {
        // The last pack reduction must finish after the last dot product.
        let t = trace(32);
        let last_dot = t
            .stage_events(Stage::RescaleExtract)
            .map(|e| e.end)
            .max()
            .unwrap();
        let last_pack = t.stage_events(Stage::Pack).map(|e| e.end).max().unwrap();
        assert!(last_pack > last_dot);
        assert_eq!(t.total_cycles, last_pack);
    }

    #[test]
    fn utilization_and_render() {
        let t = trace(32);
        // In steady state, every dot stage is busy most of the time.
        for s in Stage::DOT_STAGES {
            let u = t.stage_utilization(s);
            assert!(u > 0.6, "{s} utilization {u}");
        }
        let chart = t.render(6144);
        assert!(chart.contains("NTT"));
        assert!(chart.contains("PACK"));
        assert_eq!(chart.lines().count(), 5);
    }

    #[test]
    fn stall_and_occupancy_metrics() {
        let t = trace(8);
        // Dot stages run back-to-back: zero internal stalls.
        for s in Stage::DOT_STAGES {
            assert_eq!(t.stage_stall(s), 0, "{s}");
        }
        // The pack unit waits on tree dependencies, so it does stall.
        assert!(t.stage_stall(Stage::Pack) > 0);
        let occ = t.occupancy();
        assert!(occ > 0.0 && occ < 1.0, "occupancy {occ}");
        // Busy + stall never exceeds the makespan for any stage.
        for s in Stage::ALL {
            assert!(t.stage_busy(s) + t.stage_stall(s) <= t.total_cycles, "{s}");
        }
    }

    #[test]
    fn metrics_json_shape() {
        let t = trace(4);
        let json = t.metrics_json().to_string();
        assert!(json.contains("\"total_cycles\""));
        assert!(json.contains("\"occupancy\""));
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{s}\"")), "{s} missing");
        }
        assert!(json.contains("\"busy_cycles\""));
        assert!(json.contains("\"stall_cycles\""));
        assert!(json.contains("\"utilization\""));
    }

    #[test]
    fn chrome_trace_has_one_track_per_stage() {
        let t = trace(4);
        let ct = t.to_chrome_trace(300e6);
        // 5 thread_name metadata events + one complete event each.
        assert_eq!(ct.len(), 5 + t.events.len());
        let json = ct.to_json();
        assert!(json.contains("\"traceEvents\""));
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{s}\"")), "{s} track missing");
        }
        assert!(json.contains("\"pack 0\""));
        assert!(json.contains("\"row 3\""));
        assert!(json.contains("\"start_cycle\""));
        // 6144 cycles at 300 MHz = 20.48 µs.
        assert!(json.contains("20.48"));
    }

    #[test]
    fn single_row_needs_no_packing() {
        let t = trace(1);
        assert_eq!(t.stage_events(Stage::Pack).count(), 0);
        assert_eq!(t.total_cycles, 4 * 6144);
    }
}
