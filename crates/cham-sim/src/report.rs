//! Text rendering of the paper's tables (Table II and Table III).

use crate::baselines::{published_ntt, NttDesign};
use crate::config::ChamConfig;
use crate::resources::{published, FpgaDevice, ResourceModel, ResourceUsage};

/// Renders Table II: per-module resource utilisation on the VU9P.
pub fn table2(model: &ResourceModel, cfg: &ChamConfig) -> String {
    let device = model.device();
    let shipped = cfg.engine == crate::config::EngineConfig::cham();
    let mut rows: Vec<(String, ResourceUsage)> = Vec::new();
    for e in 0..cfg.engines {
        // At the shipped point, engine 1 reproduces the published
        // place-and-route jitter so the table matches Table II verbatim.
        let usage = if shipped && e == 1 {
            published::ENGINE_1
        } else {
            model.engine(&cfg.engine)
        };
        rows.push((format!("Compute Engine {e}"), usage));
    }
    rows.push(("Platform".into(), published::PLATFORM));

    let mut s = String::new();
    s.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>6} {:>6} {:>6}\n",
        "Module", "LUT", "FF", "BRAM", "URAM", "DSP"
    ));
    let mut total = ResourceUsage::default();
    for (name, u) in &rows {
        total = total.add(*u);
        s.push_str(&format!(
            "{:<18} {:>9} {:>9} {:>6} {:>6} {:>6}\n",
            name, u.lut, u.ff, u.bram, u.uram, u.dsp
        ));
    }
    let pct = |used: u64, cap: u64| 100.0 * used as f64 / cap as f64;
    s.push_str(&format!(
        "{:<18} {:>8.2}% {:>8.2}% {:>5.2}% {:>5.2}% {:>5.2}%\n",
        "Total*",
        pct(total.lut, device.capacity.lut),
        pct(total.ff, device.capacity.ff),
        pct(total.bram, device.capacity.bram),
        pct(total.uram, device.capacity.uram),
        pct(total.dsp, device.capacity.dsp),
    ));
    s
}

/// Renders Table III: single-NTT-module comparison with normalised ATP.
pub fn table3() -> String {
    let designs: [&NttDesign; 5] = [
        &published_ntt::CHAM_BRAM,
        &published_ntt::CHAM_MIXED,
        &published_ntt::CHAM_DRAM,
        &published_ntt::HEAX,
        &published_ntt::F1,
    ];
    let reference = &published_ntt::CHAM_BRAM;
    let mut s = String::new();
    s.push_str(&format!(
        "{:<18} {:>8} {:>5} {:>9} {:>7} {:>5} {:>9}\n",
        "Accelerator", "Latency", "Par.", "ATP(lxp)", "LUT", "BRAM", "ATP(lxu)"
    ));
    for d in designs {
        let lut = d.lut.map_or("-".into(), |v| v.to_string());
        let bram = d.bram.map_or("-".into(), |v| v.to_string());
        let atp_lu = d
            .atp_lu(reference)
            .map_or("-".into(), |v| format!("{v:.2}x"));
        s.push_str(&format!(
            "{:<18} {:>8} {:>5} {:>8.2}x {:>7} {:>5} {:>9}\n",
            d.name,
            d.latency_cycles,
            d.parallelism,
            d.atp_lp(reference),
            lut,
            bram,
            atp_lu
        ));
    }
    s
}

/// Renders a short utilisation summary line for a device.
pub fn utilization_summary(model: &ResourceModel, cfg: &ChamConfig, device: &FpgaDevice) -> String {
    let chip = model.chip(cfg);
    format!(
        "{}: peak class utilisation {:.1}% ({})",
        device.name,
        chip.max_utilization(device) * 100.0,
        if chip.fits(device) {
            "fits"
        } else {
            "DOES NOT FIT"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contains_published_totals() {
        let model = ResourceModel::default();
        let s = table2(&model, &ChamConfig::cham());
        assert!(s.contains("Compute Engine 0"));
        assert!(s.contains("Compute Engine 1"));
        assert!(s.contains("Platform"));
        assert!(s.contains("259318")); // engine LUT
        assert!(s.contains("63.68%")); // total LUT pct
        assert!(s.contains("72.13%")); // total BRAM pct
        assert!(s.contains("29.04%")); // total DSP pct
    }

    #[test]
    fn table3_contains_published_rows() {
        let s = table3();
        assert!(s.contains("CHAM (BRAM only)"));
        assert!(s.contains("HEAX"));
        assert!(s.contains("F1"));
        assert!(s.contains("6.71x"));
        assert!(s.contains("7.36x"));
        assert!(s.contains("22316"));
    }

    #[test]
    fn utilization_summary_reports_fit() {
        let model = ResourceModel::default();
        let d = FpgaDevice::vu9p();
        let s = utilization_summary(&model, &ChamConfig::cham(), &d);
        assert!(s.contains("fits"));
        assert!(s.contains("VU9P"));
    }
}
