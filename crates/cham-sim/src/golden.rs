//! Golden-vector generation for RTL verification.
//!
//! An FPGA team bringing up the real CHAM needs stimulus/response pairs
//! for every functional unit. This module derives them from the verified
//! software stack in a stable text format (one hex word per line, sections
//! separated by headers), deterministic for a given seed — the standard
//! hand-off artifact between a C/Rust golden model and an RTL testbench.

use crate::config::RamStrategy;
use crate::ntt_unit::NttUnitSim;
use crate::{Result, SimError};
use cham_math::modulus::Modulus;
use cham_math::poly::Poly;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A stimulus/response pair for one functional unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenVector {
    /// Unit name (section header in the dump).
    pub unit: String,
    /// Input words.
    pub input: Vec<u64>,
    /// Expected output words.
    pub output: Vec<u64>,
}

impl GoldenVector {
    /// Renders the vector in the dump format.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# unit: {}", self.unit);
        let _ = writeln!(
            s,
            "# in: {} words, out: {} words",
            self.input.len(),
            self.output.len()
        );
        let _ = writeln!(s, ".input");
        for w in &self.input {
            let _ = writeln!(s, "{w:016x}");
        }
        let _ = writeln!(s, ".output");
        for w in &self.output {
            let _ = writeln!(s, "{w:016x}");
        }
        s
    }

    /// Parses a single rendered vector back (for testbench self-checks).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for malformed dumps.
    pub fn parse(text: &str) -> Result<Self> {
        let mut unit = None;
        let mut input = Vec::new();
        let mut output = Vec::new();
        let mut section = 0u8;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# unit: ") {
                unit = Some(rest.to_string());
            } else if line.starts_with('#') {
                continue;
            } else if line == ".input" {
                section = 1;
            } else if line == ".output" {
                section = 2;
            } else {
                let w = u64::from_str_radix(line, 16)
                    .map_err(|_| SimError::InvalidConfig("bad hex word in golden vector"))?;
                match section {
                    1 => input.push(w),
                    2 => output.push(w),
                    _ => return Err(SimError::InvalidConfig("word outside a section")),
                }
            }
        }
        Ok(Self {
            unit: unit.ok_or(SimError::InvalidConfig("missing unit header"))?,
            input,
            output,
        })
    }
}

/// Deterministic golden-vector generator for the CHAM functional units.
#[derive(Debug)]
pub struct GoldenGenerator {
    q: Modulus,
    n: usize,
    rng: rand::rngs::StdRng,
}

impl GoldenGenerator {
    /// Creates a generator for degree `n`, modulus `q`, and a seed.
    pub fn new(n: usize, q: Modulus, seed: u64) -> Self {
        Self {
            q,
            n,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    fn random_poly(&mut self) -> Vec<u64> {
        let q = self.q.value();
        (0..self.n).map(|_| self.rng.gen_range(0..q)).collect()
    }

    /// Forward CG-NTT vectors (input normal order, output bit-reversed).
    ///
    /// # Errors
    /// Math errors for unusable `n`/`q`.
    pub fn ntt_forward(&mut self, count: usize) -> Result<Vec<GoldenVector>> {
        let unit = NttUnitSim::new(self.n, self.q, 4, RamStrategy::BramOnly)?;
        (0..count)
            .map(|_| {
                let input = self.random_poly();
                let mut output = input.clone();
                unit.run_forward(&mut output)?;
                Ok(GoldenVector {
                    unit: "ntt_fwd".into(),
                    input,
                    output,
                })
            })
            .collect()
    }

    /// Inverse CG-NTT vectors.
    ///
    /// # Errors
    /// Math errors for unusable `n`/`q`.
    pub fn ntt_inverse(&mut self, count: usize) -> Result<Vec<GoldenVector>> {
        let unit = NttUnitSim::new(self.n, self.q, 4, RamStrategy::BramOnly)?;
        (0..count)
            .map(|_| {
                let input = self.random_poly();
                let mut output = input.clone();
                unit.run_inverse(&mut output)?;
                Ok(GoldenVector {
                    unit: "ntt_inv".into(),
                    input,
                    output,
                })
            })
            .collect()
    }

    /// Modular-multiplier vectors: pairs `(a, b)` concatenated as input,
    /// products as output.
    pub fn modmul(&mut self, count: usize) -> Vec<GoldenVector> {
        (0..count)
            .map(|_| {
                let a = self.random_poly();
                let b = self.random_poly();
                let out: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| self.q.mul(x, y)).collect();
                let mut input = a;
                input.extend(b);
                GoldenVector {
                    unit: "modmul".into(),
                    input,
                    output: out,
                }
            })
            .collect()
    }

    /// `AUTOMORPH` vectors for an index `k` (first input word carries `k`).
    ///
    /// # Errors
    /// Math errors for an even `k`.
    pub fn automorph(&mut self, k: usize, count: usize) -> Result<Vec<GoldenVector>> {
        (0..count)
            .map(|_| {
                let a = self.random_poly();
                let out = Poly::from_coeffs(a.clone())
                    .automorph(k, &self.q)
                    .map_err(SimError::Math)?;
                let mut input = vec![k as u64];
                input.extend(&a);
                Ok(GoldenVector {
                    unit: "automorph".into(),
                    input,
                    output: out.into_coeffs(),
                })
            })
            .collect()
    }

    /// `SHIFTNEG` vectors for a shift `s` (first input word carries `s`).
    pub fn shift_neg(&mut self, s: usize, count: usize) -> Vec<GoldenVector> {
        (0..count)
            .map(|_| {
                let a = self.random_poly();
                let out = Poly::from_coeffs(a.clone()).shift_neg(s, &self.q);
                let mut input = vec![s as u64];
                input.extend(&a);
                GoldenVector {
                    unit: "shift_neg".into(),
                    input,
                    output: out.into_coeffs(),
                }
            })
            .collect()
    }

    /// A complete dump across all units.
    ///
    /// # Errors
    /// Propagates unit failures.
    pub fn full_dump(&mut self, per_unit: usize) -> Result<String> {
        let mut out = String::new();
        for v in self.ntt_forward(per_unit)? {
            out.push_str(&v.render());
        }
        for v in self.ntt_inverse(per_unit)? {
            out.push_str(&v.render());
        }
        for v in self.modmul(per_unit) {
            out.push_str(&v.render());
        }
        for v in self.automorph(3, per_unit)? {
            out.push_str(&v.render());
        }
        for v in self.shift_neg(1, per_unit) {
            out.push_str(&v.render());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cham_math::modulus::Q0;
    use cham_math::ntt::NttTable;

    fn generator() -> GoldenGenerator {
        GoldenGenerator::new(256, Modulus::new(Q0).unwrap(), 42)
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generator().ntt_forward(2).unwrap();
        let b = generator().ntt_forward(2).unwrap();
        assert_eq!(a, b);
        let c = GoldenGenerator::new(256, Modulus::new(Q0).unwrap(), 43)
            .ntt_forward(2)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn ntt_vectors_match_reference() {
        let vs = generator().ntt_forward(3).unwrap();
        let table = NttTable::new(256, Modulus::new(Q0).unwrap()).unwrap();
        for v in vs {
            assert_eq!(v.output, table.forward_to_vec(&v.input));
        }
    }

    #[test]
    fn inverse_vectors_invert_forward() {
        let mut g = generator();
        let fwd = g.ntt_forward(1).unwrap().remove(0);
        let table = NttTable::new(256, Modulus::new(Q0).unwrap()).unwrap();
        assert_eq!(table.inverse_to_vec(&fwd.output), fwd.input);
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut g = generator();
        for v in [
            g.ntt_forward(1).unwrap().remove(0),
            g.modmul(1).remove(0),
            g.automorph(5, 1).unwrap().remove(0),
            g.shift_neg(7, 1).remove(0),
        ] {
            let parsed = GoldenVector::parse(&v.render()).unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(GoldenVector::parse("garbage").is_err());
        assert!(GoldenVector::parse("# unit: x\n.input\nzzzz\n").is_err());
        assert!(GoldenVector::parse("# unit: x\n123\n").is_err());
    }

    #[test]
    fn full_dump_contains_all_units() {
        let dump = generator().full_dump(1).unwrap();
        for unit in ["ntt_fwd", "ntt_inv", "modmul", "automorph", "shift_neg"] {
            assert!(dump.contains(&format!("# unit: {unit}")), "{unit}");
        }
    }

    #[test]
    fn automorph_rejects_even_index() {
        assert!(generator().automorph(2, 1).is_err());
    }
}
