//! Cycle model of the 9-stage macro-pipeline (paper §III-A, Fig. 1a).
//!
//! Each macro-stage processes a whole polynomial batch over thousands of
//! cycles; steady-state throughput is set by the most loaded resource
//! class. At the shipped design point every stage balances at 6144 cycles
//! per matrix row (the DSE balance rule `P_A = k·P_B`, §III-B):
//!
//! | stage | work per row | units | cycles |
//! |-------|--------------|-------|--------|
//! | 1 NTT | 3 plaintext limb transforms | 6 modules | 3·6144/6 ≈ half-loaded |
//! | 2 MULTPOLY | 6 polys × N muls | 4 lanes | 6·4096/4 = 6144 |
//! | 3 INTT | 6 limb transforms | 6 modules | 6144 |
//! | 4 RESCALE+EXTRACT | 6 polys × N ops | 4 lanes | 6144 |
//! | 5–9 PACKTWOLWES | 1 reduction | 1 unit | 6144 |
//!
//! Packing is a binary tree (m−1 reductions for m rows); its key-switch
//! NTTs run on the pack unit's own transform slots, and intermediate
//! reductions re-enter through the reduce buffer — when the buffer fills,
//! the front stages stall (modelled in the drain/stall terms).

use crate::config::ChamConfig;
use crate::memory::DdrModel;
use crate::{Result, SimError};

/// Ring/modulus shape constants for the cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingShape {
    /// Ring degree `N`.
    pub degree: usize,
    /// Augmented limb count (ciphertext primes + special prime).
    pub aug_limbs: usize,
    /// Normal-basis limb count.
    pub ct_limbs: usize,
}

impl RingShape {
    /// The paper's shape: `N = 4096`, limbs `{q0, q1, p}`.
    pub const fn cham() -> Self {
        Self {
            degree: 4096,
            aug_limbs: 3,
            ct_limbs: 2,
        }
    }

    /// Cycles for one limb transform with `n_bf` butterflies.
    pub const fn ntt_cycles(&self, n_bf: usize) -> u64 {
        let log_n = (usize::BITS - self.degree.leading_zeros() - 1) as u64;
        ((self.degree / 2) as u64 * log_n) / n_bf as u64
    }
}

/// Cycle accounting for one HMVP execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleReport {
    /// End-to-end cycles (fill + steady state + drain).
    pub total_cycles: u64,
    /// Forward-NTT array busy cycles.
    pub ntt_cycles: u64,
    /// Inverse-NTT array busy cycles.
    pub intt_cycles: u64,
    /// MULTPOLY lane busy cycles.
    pub mult_cycles: u64,
    /// PPU lane busy cycles (rescale/extract).
    pub ppu_cycles: u64,
    /// PACKTWOLWES busy cycles.
    pub pack_cycles: u64,
    /// Cycles the front stages stall for reduce-buffer preemption.
    pub stall_cycles: u64,
    /// Pipeline fill + drain overhead.
    pub overhead_cycles: u64,
}

impl CycleReport {
    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.total_cycles as f64 / clock_hz
    }

    /// Fraction of `total_cycles` the steady-state pipeline loses to
    /// stalls and fill/drain overhead (0.0 = perfectly overlapped).
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        (self.stall_cycles + self.overhead_cycles) as f64 / self.total_cycles as f64
    }

    /// All cycle-accounting fields plus the derived stall fraction as a
    /// JSON object, for embedding in benchmark run records.
    pub fn to_json(&self) -> cham_telemetry::json::JsonValue {
        use cham_telemetry::json::JsonValue;
        JsonValue::Object(vec![
            ("total_cycles".into(), JsonValue::UInt(self.total_cycles)),
            ("ntt_cycles".into(), JsonValue::UInt(self.ntt_cycles)),
            ("intt_cycles".into(), JsonValue::UInt(self.intt_cycles)),
            ("mult_cycles".into(), JsonValue::UInt(self.mult_cycles)),
            ("ppu_cycles".into(), JsonValue::UInt(self.ppu_cycles)),
            ("pack_cycles".into(), JsonValue::UInt(self.pack_cycles)),
            ("stall_cycles".into(), JsonValue::UInt(self.stall_cycles)),
            (
                "overhead_cycles".into(),
                JsonValue::UInt(self.overhead_cycles),
            ),
            (
                "stall_fraction".into(),
                JsonValue::Float(self.stall_fraction()),
            ),
        ])
    }
}

/// The HMVP cycle model for a full accelerator configuration.
#[derive(Debug, Clone)]
pub struct HmvpCycleModel {
    config: ChamConfig,
    shape: RingShape,
    ddr: DdrModel,
}

impl HmvpCycleModel {
    /// Builds the model.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on invalid configurations or degenerate
    /// shapes.
    pub fn new(config: ChamConfig, shape: RingShape) -> Result<Self> {
        config.validate()?;
        if !shape.degree.is_power_of_two()
            || shape.aug_limbs <= shape.ct_limbs
            || shape.ct_limbs == 0
        {
            return Err(SimError::InvalidConfig("invalid ring shape"));
        }
        Ok(Self {
            config,
            shape,
            ddr: DdrModel::default(),
        })
    }

    /// Replaces the DDR model (e.g. to study bandwidth-starved designs).
    pub fn with_ddr(mut self, ddr: DdrModel) -> Self {
        self.ddr = ddr;
        self
    }

    /// The default paper model: shipped config, paper shape.
    pub fn cham() -> Self {
        Self::new(ChamConfig::cham(), RingShape::cham()).expect("shipped config is valid")
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &ChamConfig {
        &self.config
    }

    /// The ring shape.
    #[inline]
    pub fn shape(&self) -> &RingShape {
        &self.shape
    }

    /// Cycles for a single-engine slice of an HMVP covering `rows` rows of
    /// an `n_cols`-column matrix.
    pub fn engine_cycles(&self, rows: usize, n_cols: usize) -> CycleReport {
        cham_telemetry::counter_add!("cham_sim.pipeline.engine_cycles", 1);
        let e = &self.config.engine;
        let n = self.shape.degree as u64;
        let la = self.shape.aug_limbs as u64; // 3
        let tiles = n_cols.div_ceil(self.shape.degree) as u64;
        let m = rows as u64;
        let tn = self.shape.ntt_cycles(e.bfus_per_ntt);

        // Stage 1: plaintext limb transforms (one augmented plaintext = la
        // limbs) per row and tile, plus the one-time ciphertext transform
        // (2·la limbs per tile).
        let fwd_execs = la * m * tiles + 2 * la * tiles;
        let ntt_cycles = fwd_execs * tn / e.ntt_units as u64;
        // Stage 3: inverse transform of the accumulated product (2·la
        // limbs per row).
        let inv_execs = 2 * la * m;
        let intt_cycles = inv_execs * tn / e.intt_units as u64;
        // Stage 2: coefficient-wise multiply-accumulate, 2·la polys per row
        // and tile, plus the cross-tile aggregation passes when a row
        // spans multiple ciphertexts ("a row, residing in multiple
        // ciphertexts, needs to be aggregated", §V-B.2 — the Fig. 6
        // degradation for n ≥ m).
        let aggregation = (tiles - 1) * 2 * la * n * m;
        let mult_cycles = (2 * la * n * m * tiles + aggregation) / e.mult_lanes as u64;
        // Stage 4: rescale (reads 2·la limbs, writes 2·lc) + extract, one
        // coefficient-wise pass over 2·la polys per row.
        let ppu_cycles = 2 * la * n * m / e.ppu_lanes as u64;
        // Stages 5–9: one reduction per packed pair; each reduction's
        // internal stages (mono/add/sub, automorph, digit NTT, MAC,
        // rescale) are balanced to one transform time.
        let reductions = m.saturating_sub(1);
        let pack_ii = tn / e.pack_units as u64;
        let pack_cycles = reductions * pack_ii;

        // Off-chip streaming bound: the matrix plaintexts must arrive from
        // DDR, with the link shared by all engines.
        let mem_cycles = self.ddr.stream_cycles(
            &self.shape,
            m,
            tiles,
            self.config.engines,
            self.config.clock_hz,
        );
        let steady = ntt_cycles
            .max(intt_cycles)
            .max(mult_cycles)
            .max(ppu_cycles)
            .max(pack_cycles)
            .max(mem_cycles);
        // Reduce-buffer preemption: tree levels deeper than the buffer
        // capacity force the front stages to stall for one pack interval
        // per overflowing level.
        let levels = (64 - m.max(1).leading_zeros()) as u64;
        let buffered = (e.reduce_buffer_cts as u64).ilog2() as u64;
        let stall_cycles = levels.saturating_sub(buffered) * pack_ii;
        // Fill + drain: one interval per macro-stage plus the tail of the
        // pack tree.
        let overhead_cycles = e.pipeline_stages as u64 * tn + levels * pack_ii;
        CycleReport {
            total_cycles: steady + stall_cycles + overhead_cycles,
            ntt_cycles,
            intt_cycles,
            mult_cycles,
            ppu_cycles,
            pack_cycles,
            stall_cycles,
            overhead_cycles,
        }
    }

    /// Cycles for a full HMVP: rows are split across engines (the engines
    /// work on disjoint row blocks; the makespan is the largest block).
    pub fn hmvp_cycles(&self, rows: usize, n_cols: usize) -> CycleReport {
        let per_engine = rows.div_ceil(self.config.engines);
        self.engine_cycles(per_engine, n_cols)
    }

    /// Wall-clock seconds for one HMVP.
    pub fn hmvp_seconds(&self, rows: usize, n_cols: usize) -> f64 {
        self.hmvp_cycles(rows, n_cols).seconds(self.config.clock_hz)
    }

    /// HMVP throughput in MAC/s (the `m·n` multiply-accumulates of the
    /// plaintext computation per second) — the Fig. 6 metric.
    pub fn hmvp_throughput_macs(&self, rows: usize, n_cols: usize) -> f64 {
        (rows as f64 * n_cols as f64) / self.hmvp_seconds(rows, n_cols)
    }

    /// Raw limb-transform slots per second across the forward-NTT arrays.
    pub fn transform_slots_per_sec(&self) -> f64 {
        let e = &self.config.engine;
        let tn = self.shape.ntt_cycles(e.bfus_per_ntt) as f64;
        self.config.engines as f64 * e.ntt_units as f64 * self.config.clock_hz / tn
    }

    /// "NTT ops/sec" in the paper's accounting: one op = one augmented
    /// plaintext transform (3 limb transforms). The shipped config yields
    /// ≈195k (paper §V-B.1).
    pub fn ntt_ops_per_sec(&self) -> f64 {
        self.transform_slots_per_sec() / self.shape.aug_limbs as f64
    }

    /// Key-switch throughput: one key-switch consumes 9 transform slots
    /// (6 digit-lift NTTs + 3 shared inverse slots) in our reconstruction,
    /// which reproduces the paper's ≈65k ops/s.
    pub fn keyswitch_ops_per_sec(&self) -> f64 {
        self.transform_slots_per_sec() / (3.0 * self.shape.aug_limbs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;

    #[test]
    fn ring_shape_cycles() {
        let s = RingShape::cham();
        assert_eq!(s.ntt_cycles(4), 6144);
        assert_eq!(s.ntt_cycles(8), 3072);
    }

    #[test]
    fn paper_throughput_claims() {
        let m = HmvpCycleModel::cham();
        // 12 forward modules × 300 MHz / 6144 = 585,937 slots/s.
        let slots = m.transform_slots_per_sec();
        assert!((slots - 585_937.5).abs() < 1.0, "slots {slots}");
        // Paper: 195k NTT ops/s.
        let ntt = m.ntt_ops_per_sec();
        assert!((ntt - 195_312.5).abs() < 1.0, "ntt {ntt}");
        // Paper: 65k key-switch ops/s.
        let ks = m.keyswitch_ops_per_sec();
        assert!((ks - 65_104.0).abs() < 1.0, "ks {ks}");
    }

    #[test]
    fn stages_balance_at_shipped_point() {
        let m = HmvpCycleModel::cham();
        let r = m.engine_cycles(1024, 4096);
        // INTT, MULT, PPU, PACK all ≈ 6144 per row; forward NTT half-loaded.
        assert_eq!(r.intt_cycles, 6144 * 1024);
        assert_eq!(r.mult_cycles, 6144 * 1024);
        assert_eq!(r.ppu_cycles, 6144 * 1024);
        assert_eq!(r.pack_cycles, 6144 * 1023);
        assert!(r.ntt_cycles < r.intt_cycles);
    }

    #[test]
    fn throughput_grows_with_rows_then_saturates() {
        let m = HmvpCycleModel::cham();
        let t64 = m.hmvp_throughput_macs(64, 4096);
        let t1024 = m.hmvp_throughput_macs(1024, 4096);
        let t8192 = m.hmvp_throughput_macs(8192, 4096);
        assert!(t1024 > t64, "amortization should help: {t64} vs {t1024}");
        // Near saturation the gain flattens.
        let gain_hi = t8192 / t1024;
        assert!(gain_hi < 1.3, "gain {gain_hi}");
    }

    #[test]
    fn wide_columns_degrade_per_row_latency() {
        let m = HmvpCycleModel::cham();
        let narrow = m.hmvp_cycles(1024, 4096).total_cycles;
        let wide = m.hmvp_cycles(1024, 8192).total_cycles;
        assert!(wide > narrow);
    }

    #[test]
    fn two_engines_roughly_halve_time() {
        let one = HmvpCycleModel::new(
            ChamConfig {
                engines: 1,
                ..ChamConfig::cham()
            },
            RingShape::cham(),
        )
        .unwrap();
        let two = HmvpCycleModel::cham();
        let t1 = one.hmvp_seconds(4096, 4096);
        let t2 = two.hmvp_seconds(4096, 4096);
        let ratio = t1 / t2;
        assert!(ratio > 1.8 && ratio < 2.05, "ratio {ratio}");
    }

    #[test]
    fn pareto_points_perform_similarly() {
        // The paper's two optimal points should land within ~25% of each
        // other on throughput.
        let a = HmvpCycleModel::cham();
        let b = HmvpCycleModel::new(ChamConfig::cham_wide(), RingShape::cham()).unwrap();
        let ta = a.hmvp_throughput_macs(4096, 4096);
        let tb = b.hmvp_throughput_macs(4096, 4096);
        let ratio = ta / tb;
        assert!(ratio > 0.75 && ratio < 1.35, "ratio {ratio}");
    }

    #[test]
    fn invalid_shape_rejected() {
        let bad = RingShape {
            degree: 1000,
            aug_limbs: 3,
            ct_limbs: 2,
        };
        assert!(HmvpCycleModel::new(ChamConfig::cham(), bad).is_err());
        let bad2 = RingShape {
            degree: 4096,
            aug_limbs: 2,
            ct_limbs: 2,
        };
        assert!(HmvpCycleModel::new(ChamConfig::cham(), bad2).is_err());
    }

    #[test]
    fn stalls_appear_for_deep_trees_with_small_buffers() {
        let cfg = ChamConfig {
            engine: EngineConfig {
                reduce_buffer_cts: 2,
                ..EngineConfig::cham()
            },
            ..ChamConfig::cham()
        };
        let m = HmvpCycleModel::new(cfg, RingShape::cham()).unwrap();
        let r = m.engine_cycles(4096, 4096);
        assert!(r.stall_cycles > 0);
        let big_buf = HmvpCycleModel::cham().engine_cycles(4096, 4096);
        assert!(big_buf.stall_cycles < r.stall_cycles);
    }
}
