//! # cham-sim — cycle-level model of the CHAM FPGA accelerator
//!
//! The architectural half of the CHAM reproduction (DAC'23). The physical
//! Xilinx VU9P board is replaced by a calibrated simulator (see DESIGN.md,
//! Substitutions):
//!
//! * [`config`] — the design-space axes (engines, NTT modules, butterfly
//!   PEs, pack units, pipeline split),
//! * [`resources`] — LUT/FF/BRAM/URAM/DSP cost model calibrated to the
//!   published Table II / Table III figures,
//! * [`ntt_unit`] — functional + cycle-exact model of the constant-
//!   geometry NTT datapath (8 RAM banks, BFUs, swap network, twiddle ROM
//!   columns),
//! * [`pipeline`] — the 9-stage macro-pipeline cycle model with
//!   reduce-buffer preemption,
//! * [`engine`] — functional co-simulation: real `cham-he` computation
//!   plus modelled cycles,
//! * [`roofline`] — Fig. 2a's op-intensity analysis,
//! * [`dse`] — Fig. 2b's design-space exploration,
//! * [`hetero`] — Fig. 1b's host/FPGA overlap schedule with RAS fault
//!   injection,
//! * [`baselines`] — HEAX / F1 / GPU comparator models,
//! * [`report`] — Table II / Table III renderers.
//!
//! ## Example
//!
//! ```
//! use cham_sim::pipeline::HmvpCycleModel;
//! let model = HmvpCycleModel::cham();
//! // Paper §V-B.1: ≈195k NTT ops/s and ≈65k key-switch ops/s.
//! assert!((model.ntt_ops_per_sec() - 195_312.5).abs() < 1.0);
//! assert!((model.keyswitch_ops_per_sec() - 65_104.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
pub mod baselines;
pub mod config;
pub mod dse;
pub mod engine;
pub mod golden;
pub mod hetero;
pub mod memory;
pub mod ntt_unit;
pub mod pipeline;
pub mod report;
pub mod resources;
pub mod roofline;
pub mod sensitivity;
pub mod trace;

use std::error::Error;
use std::fmt;

/// Errors from the simulator.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration violates a structural constraint.
    InvalidConfig(&'static str),
    /// The modelled schedule would violate a hardware invariant.
    StructuralHazard(&'static str),
    /// The functional co-simulation diverged from the software oracle.
    FunctionalMismatch,
    /// Underlying arithmetic error.
    Math(cham_math::MathError),
    /// Underlying HE-layer error.
    He(cham_he::HeError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SimError::StructuralHazard(m) => write!(f, "structural hazard: {m}"),
            SimError::FunctionalMismatch => write!(f, "functional co-simulation mismatch"),
            SimError::Math(e) => write!(f, "math error: {e}"),
            SimError::He(e) => write!(f, "he error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Math(e) => Some(e),
            SimError::He(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cham_math::MathError> for SimError {
    fn from(e: cham_math::MathError) -> Self {
        SimError::Math(e)
    }
}

impl From<cham_he::HeError> for SimError {
    fn from(e: cham_he::HeError) -> Self {
        SimError::He(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
