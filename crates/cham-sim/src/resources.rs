//! FPGA resource model (Table II / Table III calibration).
//!
//! The model assigns each functional-unit class a LUT/FF/BRAM/URAM/DSP cost
//! and aggregates per engine. Costs are *calibrated*: the published Table II
//! engine totals are exactly reproduced at the shipped configuration, with
//! the per-FU split being our reconstruction from Table III (NTT module
//! costs are published directly) plus proportional allocation of the
//! remainder ("datapath glue": interconnect, FIFOs, control). Scaling a
//! configuration scales FU costs structurally and glue proportionally — the
//! relative ordering the design-space exploration (Fig. 2b) needs.

use crate::config::{EngineConfig, RamStrategy};

/// A LUT/FF/BRAM/URAM/DSP usage vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// 6-input look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36 kbit block RAMs.
    pub bram: u64,
    /// UltraRAM blocks.
    pub uram: u64,
    /// DSP48 slices (one 27×18 multiply each — the paper's "operation").
    pub dsp: u64,
}

impl ResourceUsage {
    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Self) -> Self {
        Self {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            uram: self.uram + rhs.uram,
            dsp: self.dsp + rhs.dsp,
        }
    }

    /// Component-wise scale.
    pub fn scale(self, k: u64) -> Self {
        Self {
            lut: self.lut * k,
            ff: self.ff * k,
            bram: self.bram * k,
            uram: self.uram * k,
            dsp: self.dsp * k,
        }
    }

    /// True when every component fits within `device`.
    pub fn fits(self, device: &FpgaDevice) -> bool {
        self.lut <= device.capacity.lut
            && self.ff <= device.capacity.ff
            && self.bram <= device.capacity.bram
            && self.uram <= device.capacity.uram
            && self.dsp <= device.capacity.dsp
    }

    /// The maximum utilisation fraction across resource classes on
    /// `device` (the "resource utilization" axis of Fig. 2b).
    pub fn max_utilization(self, device: &FpgaDevice) -> f64 {
        let ratios = [
            self.lut as f64 / device.capacity.lut as f64,
            self.ff as f64 / device.capacity.ff as f64,
            self.bram as f64 / device.capacity.bram as f64,
            self.uram as f64 / device.capacity.uram as f64,
            self.dsp as f64 / device.capacity.dsp as f64,
        ];
        ratios.into_iter().fold(0.0, f64::max)
    }
}

/// An FPGA device with its resource capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// Total resources.
    pub capacity: ResourceUsage,
    /// Peak DDR bandwidth in bytes/s (roofline ceiling).
    pub mem_bandwidth: f64,
}

impl FpgaDevice {
    /// Xilinx Virtex UltraScale+ VU9P (the production device, Table II).
    pub fn vu9p() -> Self {
        Self {
            name: "VU9P",
            capacity: ResourceUsage {
                lut: 1_182_240,
                ff: 2_364_480,
                bram: 2_160,
                uram: 960,
                dsp: 6_840,
            },
            // 4 × DDR4-2400 channels ≈ 77 GB/s.
            mem_bandwidth: 77e9,
        }
    }

    /// Xilinx Alveo U200 (prototyping board; same VU9P die, Fig. 2a).
    pub fn u200() -> Self {
        Self {
            name: "U200",
            ..Self::vu9p()
        }
    }

    /// Peak 27×18 multiply throughput in ops/s at `clock_hz` — the
    /// roofline compute ceiling (Fig. 2a counts one DSP slice as one op).
    pub fn peak_ops_per_sec(&self, clock_hz: f64) -> f64 {
        self.capacity.dsp as f64 * clock_hz
    }
}

/// Published Table II figures (per engine and platform shell), used for
/// calibration and for the `table2_resources` reproduction.
pub mod published {
    use super::ResourceUsage;

    /// Compute Engine 0 (Table II). Engine 1 differs by <0.1% from P&R
    /// jitter; the model treats engines as identical.
    pub const ENGINE: ResourceUsage = ResourceUsage {
        lut: 259_318,
        ff: 89_894,
        bram: 640,
        uram: 294,
        dsp: 986,
    };

    /// Engine 1 as published (for the verbatim table).
    pub const ENGINE_1: ResourceUsage = ResourceUsage {
        lut: 259_502,
        ff: 90_043,
        bram: 640,
        uram: 294,
        dsp: 986,
    };

    /// Platform shell (Vitis/DMA infrastructure).
    pub const PLATFORM: ResourceUsage = ResourceUsage {
        lut: 234_066,
        ff: 302_670,
        bram: 278,
        uram: 7,
        dsp: 14,
    };
}

/// Per-FU structural cost model.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    device: FpgaDevice,
}

impl Default for ResourceModel {
    fn default() -> Self {
        Self::new(FpgaDevice::vu9p())
    }
}

impl ResourceModel {
    /// Creates a model targeting `device`.
    pub fn new(device: FpgaDevice) -> Self {
        Self { device }
    }

    /// The target device.
    #[inline]
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Cost of one NTT module with `n_bf` butterfly units under a RAM
    /// strategy. The 4-BFU figures are published (Table III); other widths
    /// scale the butterfly datapath linearly and keep the buffer cost.
    pub fn ntt_module(&self, n_bf: usize, strategy: RamStrategy) -> ResourceUsage {
        // Table III, 4-BFU module: (lut, bram) per strategy.
        let (lut4, bram4) = match strategy {
            RamStrategy::BramOnly => (3_324u64, 14u64),
            RamStrategy::BramPlusDram => (6_508, 6),
            RamStrategy::DramOnly => (9_248, 0),
        };
        // Split: roughly half the LUTs are per-BFU datapath, half are the
        // swap network + ROM/addressing that scale with n_bf too; model all
        // as linear in n_bf. BRAM banks scale with n_bf (banked storage).
        let k = n_bf as u64;
        ResourceUsage {
            lut: lut4 * k / 4,
            ff: 300 * k, // pipeline registers per BFU lane
            bram: bram4 * k / 4,
            uram: 0,
            // One modular butterfly = one 34×35 multiply = 4 DSP (2×2
            // 27×18 tiles) + shift-add reduction in fabric.
            dsp: 4 * k,
        }
    }

    /// Cost of one coefficient-wise multiplier lane (stage-2 `MULTPOLY`
    /// and the key-switch MAC): a full-width modular multiplier.
    pub fn mult_lane(&self) -> ResourceUsage {
        ResourceUsage {
            lut: 1_100,
            ff: 800,
            bram: 0,
            uram: 0,
            dsp: 6, // 38×39-bit product needs 2×3 27×18 tiles
        }
    }

    /// Cost of one PPU lane (rescale / extract / mono / automorph /
    /// add-sub): one modular multiplier plus shift/permute logic.
    pub fn ppu_lane(&self) -> ResourceUsage {
        ResourceUsage {
            lut: 1_400,
            ff: 700,
            bram: 0,
            uram: 0,
            dsp: 6,
        }
    }

    /// Buffering for one engine: input/output ping-pong RAMs, twiddle ROM
    /// sharing (two sets per engine, §IV-A.2), and the pack reduce buffer.
    /// URAM soaks the big ciphertext buffers (the paper moved BRAM → URAM
    /// to relieve P&R, §V-A).
    pub fn engine_buffers(&self, reduce_buffer_cts: usize) -> ResourceUsage {
        ResourceUsage {
            lut: 0,
            ff: 0,
            // Reduce buffer: one normal-basis ciphertext = 4 polys × 4096
            // × 35 bit ≈ 16 BRAM36; plus I/O staging.
            bram: 16 * reduce_buffer_cts as u64 + 64,
            uram: 294, // calibrated to Table II: all engine URAM is buffering
            dsp: 0,
        }
    }

    /// Aggregates an engine configuration, including the calibrated
    /// "datapath glue" term that absorbs interconnect/control so the
    /// shipped configuration reproduces Table II exactly.
    pub fn engine(&self, cfg: &EngineConfig) -> ResourceUsage {
        let structural = self.engine_structural(cfg);
        let glue = self.glue_for(cfg);
        structural.add(glue)
    }

    fn engine_structural(&self, cfg: &EngineConfig) -> ResourceUsage {
        let mut total = ResourceUsage::default();
        total = total.add(
            self.ntt_module(cfg.bfus_per_ntt, cfg.ram_strategy)
                .scale((cfg.ntt_units + cfg.intt_units) as u64),
        );
        total = total.add(self.mult_lane().scale(cfg.mult_lanes as u64));
        total = total.add(self.ppu_lane().scale(cfg.ppu_lanes as u64));
        // A PACKTWOLWES module embeds its own mono/add/automorph PPUs and
        // the key-switch MAC lanes.
        let pack_unit =
            self.ppu_lane()
                .scale(4)
                .add(self.mult_lane().scale(4))
                .add(ResourceUsage {
                    lut: 2_000,
                    ff: 1_500,
                    bram: 8,
                    uram: 0,
                    dsp: 0,
                });
        total = total.add(pack_unit.scale(cfg.pack_units as u64));
        total.add(self.engine_buffers(cfg.reduce_buffer_cts))
    }

    /// Glue (interconnect, FIFOs, stage control): calibrated so the
    /// shipped engine hits Table II, scaled by pipeline-stage count and
    /// datapath width for other design points.
    fn glue_for(&self, cfg: &EngineConfig) -> ResourceUsage {
        let reference = self.engine_structural(&EngineConfig::cham());
        let target = published::ENGINE;
        let glue_ref = ResourceUsage {
            lut: target.lut.saturating_sub(reference.lut),
            ff: target.ff.saturating_sub(reference.ff),
            bram: target.bram.saturating_sub(reference.bram),
            uram: target.uram.saturating_sub(reference.uram),
            dsp: target.dsp.saturating_sub(reference.dsp),
        };
        // Scale glue with the number of pipeline stages and the datapath
        // width (lanes) relative to the shipped point.
        let ref_cfg = EngineConfig::cham();
        let width_num = (cfg.ntt_units + cfg.intt_units + cfg.mult_lanes + cfg.ppu_lanes) as u64
            * cfg.pipeline_stages as u64;
        let width_den =
            (ref_cfg.ntt_units + ref_cfg.intt_units + ref_cfg.mult_lanes + ref_cfg.ppu_lanes)
                as u64
                * ref_cfg.pipeline_stages as u64;
        ResourceUsage {
            lut: glue_ref.lut * width_num / width_den,
            ff: glue_ref.ff * width_num / width_den,
            bram: glue_ref.bram * width_num / width_den,
            uram: glue_ref.uram * width_num / width_den,
            dsp: glue_ref.dsp * width_num / width_den,
        }
    }

    /// Full-chip usage: engines plus the platform shell.
    pub fn chip(&self, cfg: &crate::config::ChamConfig) -> ResourceUsage {
        self.engine(&cfg.engine)
            .scale(cfg.engines as u64)
            .add(published::PLATFORM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChamConfig;

    #[test]
    fn vu9p_capacities() {
        let d = FpgaDevice::vu9p();
        assert_eq!(d.capacity.dsp, 6840);
        assert_eq!(d.capacity.bram, 2160);
        // Peak ops at 300 MHz ≈ 2.05 Tops.
        let peak = d.peak_ops_per_sec(300e6);
        assert!((peak - 2.052e12).abs() / 2.052e12 < 1e-9);
    }

    #[test]
    fn shipped_engine_matches_table2_exactly() {
        let model = ResourceModel::default();
        let engine = model.engine(&EngineConfig::cham());
        assert_eq!(engine, published::ENGINE);
    }

    #[test]
    fn chip_utilization_matches_table2_totals() {
        let model = ResourceModel::default();
        let chip = model.chip(&ChamConfig::cham());
        let d = FpgaDevice::vu9p();
        // Table II totals: LUT 63.68%, FF 20.41%, BRAM 72.13%, URAM 61.98%,
        // DSP 29.04% (computed with Engine 1 ≈ Engine 0).
        let lut_pct = chip.lut as f64 / d.capacity.lut as f64 * 100.0;
        let ff_pct = chip.ff as f64 / d.capacity.ff as f64 * 100.0;
        let bram_pct = chip.bram as f64 / d.capacity.bram as f64 * 100.0;
        let uram_pct = chip.uram as f64 / d.capacity.uram as f64 * 100.0;
        let dsp_pct = chip.dsp as f64 / d.capacity.dsp as f64 * 100.0;
        assert!((lut_pct - 63.68).abs() < 0.05, "lut {lut_pct}");
        assert!((ff_pct - 20.41).abs() < 0.05, "ff {ff_pct}");
        assert!((bram_pct - 72.13).abs() < 0.05, "bram {bram_pct}");
        assert!((uram_pct - 61.98).abs() < 0.05, "uram {uram_pct}");
        assert!((dsp_pct - 29.04).abs() < 0.05, "dsp {dsp_pct}");
        assert!(chip.fits(&d));
        // All below 75% — the paper's P&R closure criterion (§V-A).
        assert!(chip.max_utilization(&d) < 0.75);
    }

    #[test]
    fn ntt_module_strategies_match_table3() {
        let model = ResourceModel::default();
        let b = model.ntt_module(4, RamStrategy::BramOnly);
        assert_eq!((b.lut, b.bram), (3324, 14));
        let m = model.ntt_module(4, RamStrategy::BramPlusDram);
        assert_eq!((m.lut, m.bram), (6508, 6));
        let d = model.ntt_module(4, RamStrategy::DramOnly);
        assert_eq!((d.lut, d.bram), (9248, 0));
    }

    #[test]
    fn wider_ntt_costs_more() {
        let model = ResourceModel::default();
        let a = model.ntt_module(4, RamStrategy::BramOnly);
        let b = model.ntt_module(8, RamStrategy::BramOnly);
        assert!(b.lut > a.lut && b.dsp > a.dsp);
    }

    #[test]
    fn bigger_configs_use_more_resources() {
        let model = ResourceModel::default();
        let small = model.engine(&EngineConfig::cham());
        let wide = model.engine(&EngineConfig::cham_wide());
        assert!(wide.dsp > small.dsp);
        assert!(wide.lut > small.lut);
    }

    #[test]
    fn usage_arithmetic() {
        let a = ResourceUsage {
            lut: 1,
            ff: 2,
            bram: 3,
            uram: 4,
            dsp: 5,
        };
        let s = a.add(a).scale(2);
        assert_eq!(s.lut, 4);
        assert_eq!(s.dsp, 20);
    }
}
