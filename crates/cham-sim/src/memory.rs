//! Off-chip memory traffic model.
//!
//! The HMVP pipeline streams the matrix plaintexts from DDR continuously
//! (they are used once — this is what pushes standalone operators under
//! the memory roof in Fig. 2a). This module turns the device bandwidth
//! into a per-engine cycle bound that [`crate::pipeline::HmvpCycleModel`]
//! folds into its bottleneck computation, so bandwidth-starved design
//! points surface in the DSE rather than being silently over-credited.

use crate::pipeline::RingShape;

/// DDR subsystem model: aggregate bandwidth shared by the engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrModel {
    /// Aggregate sustained bandwidth in bytes/s (U200/VU9P: ≈77 GB/s).
    pub bytes_per_sec: f64,
    /// Access efficiency for the streaming pattern (long sequential
    /// bursts; 0.85 is typical for DDR4 row-major streams).
    pub efficiency: f64,
}

impl Default for DdrModel {
    fn default() -> Self {
        Self {
            bytes_per_sec: 77e9,
            efficiency: 0.85,
        }
    }
}

impl DdrModel {
    /// Effective bandwidth after access efficiency.
    pub fn effective(&self) -> f64 {
        self.bytes_per_sec * self.efficiency
    }

    /// Bytes streamed per matrix row: one augmented plaintext per column
    /// tile (the vector ciphertext and intermediates stay on chip).
    pub fn bytes_per_row(&self, shape: &RingShape, tiles: u64) -> u64 {
        tiles * shape.aug_limbs as u64 * shape.degree as u64 * 8
    }

    /// Cycle bound for streaming `rows` rows into one engine when the
    /// bandwidth is split across `engines`.
    pub fn stream_cycles(
        &self,
        shape: &RingShape,
        rows: u64,
        tiles: u64,
        engines: usize,
        clock_hz: f64,
    ) -> u64 {
        let bytes = rows * self.bytes_per_row(shape, tiles);
        let per_engine_bw = self.effective() / engines as f64;
        (bytes as f64 / per_engine_bw * clock_hz).ceil() as u64
    }

    /// The row rate (rows/s per engine) the memory system can sustain.
    pub fn max_rows_per_sec(&self, shape: &RingShape, tiles: u64, engines: usize) -> f64 {
        self.effective() / engines as f64 / self.bytes_per_row(shape, tiles) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_row_matches_shape() {
        let ddr = DdrModel::default();
        let s = RingShape::cham();
        // 3 limbs × 4096 coeffs × 8 B = 98,304 B.
        assert_eq!(ddr.bytes_per_row(&s, 1), 98_304);
        assert_eq!(ddr.bytes_per_row(&s, 2), 196_608);
    }

    #[test]
    fn shipped_point_is_not_bandwidth_bound() {
        // Two engines at 48,828 rows/s each need 2 × 4.8 GB/s — far below
        // the 65 GB/s effective bandwidth.
        let ddr = DdrModel::default();
        let s = RingShape::cham();
        let sustained = ddr.max_rows_per_sec(&s, 1, 2);
        assert!(sustained > 300_000.0, "rows/s {sustained}");
        // Streaming cycles per row << the 6144-cycle compute interval.
        let per_row = ddr.stream_cycles(&s, 1, 1, 2, 300e6);
        assert!(per_row < 2000, "stream cycles {per_row}");
    }

    #[test]
    fn stream_cycles_scale_linearly() {
        let ddr = DdrModel::default();
        let s = RingShape::cham();
        let one = ddr.stream_cycles(&s, 100, 1, 1, 300e6);
        let two = ddr.stream_cycles(&s, 200, 1, 1, 300e6);
        assert!((two as f64 / one as f64 - 2.0).abs() < 0.01);
        // More engines sharing the link slows each stream.
        let shared = ddr.stream_cycles(&s, 100, 1, 4, 300e6);
        assert!(shared > one);
    }

    #[test]
    fn starved_configuration_becomes_bound() {
        // A hypothetical 1 GB/s link cannot keep even one engine fed.
        let ddr = DdrModel {
            bytes_per_sec: 1e9,
            efficiency: 1.0,
        };
        let s = RingShape::cham();
        let per_row = ddr.stream_cycles(&s, 1, 1, 1, 300e6);
        assert!(per_row > 6144, "stream cycles {per_row}");
    }
}
