//! Roofline model (paper Fig. 2a).
//!
//! An *operation* is one 27×18 integer multiply — exactly one DSP slice per
//! cycle (the paper's convention). The device ceiling is
//! `DSP count × f_clk`; the memory ceiling is `bandwidth × intensity`.
//! The figure's point: individual HE operators (NTT, key-switch) have low
//! compute intensity and sit under the memory roof, while the fused HMVP
//! keeps the matrix streaming against on-chip reuse of the vector
//! ciphertext and climbs toward the compute roof — the argument for
//! accelerating HMVP *as a whole* (§III-B).

use crate::pipeline::RingShape;
use crate::resources::FpgaDevice;

/// DSP-operations per 34/38-bit modular multiply (2×2 tiles of 27×18).
pub const OPS_PER_MODMUL: u64 = 4;

/// An operator characterised by its op count and off-chip traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operator name (plot label).
    pub name: String,
    /// 27×18 multiply count.
    pub ops: u64,
    /// Off-chip bytes moved (reads + writes).
    pub bytes: u64,
}

impl OpProfile {
    /// Compute intensity in ops/byte.
    pub fn intensity(&self) -> f64 {
        self.ops as f64 / self.bytes as f64
    }

    /// One limb NTT invoked standalone: `N/2·log2 N` butterflies, one
    /// modmul each; the polynomial is read and written off-chip.
    pub fn ntt(shape: &RingShape) -> Self {
        let n = shape.degree as u64;
        let log_n = shape.degree.trailing_zeros() as u64;
        Self {
            name: "NTT".into(),
            ops: (n / 2) * log_n * OPS_PER_MODMUL,
            bytes: 2 * n * 8,
        }
    }

    /// One key-switch invoked standalone: 9 transform-equivalents plus the
    /// MAC, but the key-switch key (2 digits × 2 polys × `aug` limbs) must
    /// stream from off-chip every time.
    pub fn keyswitch(shape: &RingShape) -> Self {
        let n = shape.degree as u64;
        let log_n = shape.degree.trailing_zeros() as u64;
        let la = shape.aug_limbs as u64;
        let transforms = 3 * la; // digit lifts + inverse slots
        let ops = transforms * (n / 2) * log_n * OPS_PER_MODMUL + 4 * la * n * OPS_PER_MODMUL;
        // ct in/out (2·lc polys each way) + KSK stream (2 digits × 2 polys
        // × la limbs).
        let lc = shape.ct_limbs as u64;
        let bytes = (2 * lc * 2 + 2 * 2 * la) * n * 8;
        Self {
            name: "KeySwitch".into(),
            ops,
            bytes,
        }
    }

    /// A fused `m × n` HMVP: the vector ciphertext and all intermediates
    /// stay on chip; only the matrix plaintexts stream in and one packed
    /// ciphertext leaves.
    pub fn hmvp(shape: &RingShape, rows: usize, cols: usize) -> Self {
        let n = shape.degree as u64;
        let log_n = shape.degree.trailing_zeros() as u64;
        let la = shape.aug_limbs as u64;
        let lc = shape.ct_limbs as u64;
        let m = rows as u64;
        let tiles = cols.div_ceil(shape.degree) as u64;
        let transform = (n / 2) * log_n * OPS_PER_MODMUL;
        // Per row: la plaintext NTTs per tile + 2·la inverse + pack's
        // 3·la transforms per reduction; plus the pointwise MACs.
        let ops = m * tiles * la * transform
            + m * 2 * la * transform
            + m.saturating_sub(1) * 3 * la * transform
            + m * tiles * 2 * la * n * OPS_PER_MODMUL
            + m.saturating_sub(1) * 4 * la * n * OPS_PER_MODMUL;
        // Traffic: matrix plaintexts (m·tiles·la limbs — coefficient form,
        // one limb is enough since |A| < t; we charge la for the lifted
        // form the hardware streams), vector ciphertext in, one packed
        // ciphertext out.
        let bytes = (m * tiles * la + tiles * 2 * la + 2 * lc) * n * 8;
        Self {
            name: format!("HMVP {rows}x{cols}"),
            ops,
            bytes,
        }
    }
}

/// The roofline for a device at a clock frequency.
#[derive(Debug, Clone)]
pub struct Roofline {
    device: FpgaDevice,
    clock_hz: f64,
}

impl Roofline {
    /// Creates the roofline.
    pub fn new(device: FpgaDevice, clock_hz: f64) -> Self {
        Self { device, clock_hz }
    }

    /// The compute ceiling in ops/s.
    pub fn peak_ops(&self) -> f64 {
        self.device.peak_ops_per_sec(self.clock_hz)
    }

    /// The ridge point (ops/byte where the roofs meet).
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_ops() / self.device.mem_bandwidth
    }

    /// Attainable performance at a given compute intensity.
    pub fn attainable(&self, intensity: f64) -> f64 {
        (self.device.mem_bandwidth * intensity).min(self.peak_ops())
    }

    /// Attainable performance for a profiled operator.
    pub fn attainable_for(&self, p: &OpProfile) -> f64 {
        self.attainable(p.intensity())
    }

    /// Whether an operator is memory-bound on this device.
    pub fn memory_bound(&self, p: &OpProfile) -> bool {
        p.intensity() < self.ridge_intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roofline() -> Roofline {
        Roofline::new(FpgaDevice::u200(), 300e6)
    }

    #[test]
    fn ridge_point() {
        let r = roofline();
        let ridge = r.ridge_intensity();
        // 2.052e12 / 77e9 ≈ 26.6 ops/byte.
        assert!((ridge - 26.65).abs() < 0.1, "ridge {ridge}");
    }

    #[test]
    fn hmvp_intensity_exceeds_individual_ops() {
        // The Fig. 2a claim: HMVP has much higher compute intensity than
        // NTT or key-switch invoked individually.
        let s = RingShape::cham();
        let ntt = OpProfile::ntt(&s);
        let ks = OpProfile::keyswitch(&s);
        let hmvp = OpProfile::hmvp(&s, 4096, 4096);
        assert!(hmvp.intensity() > 5.0 * ntt.intensity());
        assert!(hmvp.intensity() > 5.0 * ks.intensity());
    }

    #[test]
    fn ntt_and_keyswitch_are_memory_bound() {
        let r = roofline();
        let s = RingShape::cham();
        assert!(r.memory_bound(&OpProfile::ntt(&s)));
        assert!(r.memory_bound(&OpProfile::keyswitch(&s)));
    }

    #[test]
    fn attainable_clamps_to_peak() {
        let r = roofline();
        assert_eq!(r.attainable(1e9), r.peak_ops());
        assert!(r.attainable(1.0) < r.peak_ops());
        assert!((r.attainable(1.0) - 77e9).abs() < 1.0);
    }

    #[test]
    fn larger_matrices_increase_intensity() {
        let s = RingShape::cham();
        let small = OpProfile::hmvp(&s, 64, 4096);
        let big = OpProfile::hmvp(&s, 8192, 4096);
        assert!(big.intensity() >= small.intensity() * 0.9);
        // Both well above standalone NTT.
        assert!(small.intensity() > OpProfile::ntt(&s).intensity());
    }
}
