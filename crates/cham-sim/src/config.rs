//! Accelerator configuration — the design-space axes of paper §III-B.
//!
//! A design point fixes: how many compute engines, how many NTT modules per
//! engine, the butterfly parallelism (`n_bf`, "PEs" in Fig. 2b), the number
//! of `PACKTWOLWES` units, the macro-pipeline split, and buffer sizing.
//! The paper's shipped configuration is
//! `(9 stages, 1×PACKTWOLWES, 6×NTT, 4-PE NTT, 2 engines)`; the second
//! Pareto point is `(9, 1, 6, 8-PE, 1 engine)`.

use crate::{Result, SimError};

/// Memory technology used for the twiddle-factor ROMs and NTT local buffer
/// (Table III rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RamStrategy {
    /// Twiddle ROM and local buffer in block RAM.
    #[default]
    BramOnly,
    /// Twiddle ROM in LUT-based distributed RAM, local buffer in BRAM.
    BramPlusDram,
    /// Everything in distributed RAM.
    DramOnly,
}

/// One compute-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Forward-NTT modules feeding the dot-product stage.
    pub ntt_units: usize,
    /// Inverse-NTT modules after the coefficient-wise multiply.
    pub intt_units: usize,
    /// Butterfly units per NTT module (`n_bf`, a power of two).
    pub bfus_per_ntt: usize,
    /// Coefficient-wise multiplier lanes (stage-2 `MULTPOLY`).
    pub mult_lanes: usize,
    /// Polynomial-processing-unit lanes (rescale/extract/mono/automorph).
    pub ppu_lanes: usize,
    /// `PACKTWOLWES` modules.
    pub pack_units: usize,
    /// Macro-pipeline stage count (the paper explores 5–11; 9 shipped).
    pub pipeline_stages: usize,
    /// Reduce-buffer capacity in ciphertexts (holds pending tree levels).
    pub reduce_buffer_cts: usize,
    /// RAM technology for NTT ROM/buffers.
    pub ram_strategy: RamStrategy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::cham()
    }
}

impl EngineConfig {
    /// The shipped CHAM engine: 6 NTT + 6 INTT modules with 4 BFUs each,
    /// 4 multiplier and 4 PPU lanes, one pack unit, 9 pipeline stages.
    pub fn cham() -> Self {
        Self {
            ntt_units: 6,
            intt_units: 6,
            bfus_per_ntt: 4,
            mult_lanes: 4,
            ppu_lanes: 4,
            pack_units: 1,
            pipeline_stages: 9,
            reduce_buffer_cts: 16,
            ram_strategy: RamStrategy::BramOnly,
        }
    }

    /// The alternative Pareto point: a single fat engine with 8-PE NTTs.
    pub fn cham_wide() -> Self {
        Self {
            bfus_per_ntt: 8,
            mult_lanes: 8,
            ppu_lanes: 8,
            ..Self::cham()
        }
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] when any unit count is zero, `n_bf` is
    /// not a power of two, or `n_bf` exceeds the 8-bank RAM layout of the
    /// constant-geometry datapath (§IV-A.1).
    pub fn validate(&self) -> Result<()> {
        if self.ntt_units == 0
            || self.intt_units == 0
            || self.mult_lanes == 0
            || self.ppu_lanes == 0
            || self.pack_units == 0
            || self.pipeline_stages == 0
        {
            return Err(SimError::InvalidConfig("unit counts must be positive"));
        }
        if !self.bfus_per_ntt.is_power_of_two() {
            return Err(SimError::InvalidConfig(
                "bfus_per_ntt must be a power of two",
            ));
        }
        if self.bfus_per_ntt > 8 {
            return Err(SimError::InvalidConfig(
                "bfus_per_ntt cannot exceed the 8 round-robin RAM banks",
            ));
        }
        if self.reduce_buffer_cts < 2 {
            return Err(SimError::InvalidConfig(
                "reduce buffer must hold at least one pending pair",
            ));
        }
        Ok(())
    }
}

/// A full accelerator configuration: engines + clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChamConfig {
    /// Per-engine configuration (engines are homogeneous).
    pub engine: EngineConfig,
    /// Number of compute engines on the FPGA.
    pub engines: usize,
    /// Clock frequency in Hz (300 MHz shipped).
    pub clock_hz: f64,
}

impl Default for ChamConfig {
    fn default() -> Self {
        Self::cham()
    }
}

impl ChamConfig {
    /// The shipped CHAM configuration: 2 engines @ 300 MHz.
    pub fn cham() -> Self {
        Self {
            engine: EngineConfig::cham(),
            engines: 2,
            clock_hz: 300e6,
        }
    }

    /// The single-engine 8-PE Pareto alternative.
    pub fn cham_wide() -> Self {
        Self {
            engine: EngineConfig::cham_wide(),
            engines: 1,
            clock_hz: 300e6,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for zero engines, a non-positive clock,
    /// or an invalid engine config.
    pub fn validate(&self) -> Result<()> {
        if self.engines == 0 {
            return Err(SimError::InvalidConfig("at least one engine required"));
        }
        if self.clock_hz <= 0.0 || self.clock_hz.is_nan() {
            return Err(SimError::InvalidConfig("clock must be positive"));
        }
        self.engine.validate()
    }

    /// Seconds per clock cycle.
    #[inline]
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_configs_are_valid() {
        ChamConfig::cham().validate().unwrap();
        ChamConfig::cham_wide().validate().unwrap();
        assert_eq!(ChamConfig::cham().engines, 2);
        assert_eq!(ChamConfig::cham().engine.bfus_per_ntt, 4);
        assert_eq!(ChamConfig::cham_wide().engines, 1);
        assert_eq!(ChamConfig::cham_wide().engine.bfus_per_ntt, 8);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = EngineConfig::cham();
        c.ntt_units = 0;
        assert!(c.validate().is_err());
        let mut c = EngineConfig::cham();
        c.bfus_per_ntt = 3;
        assert!(c.validate().is_err());
        let mut c = EngineConfig::cham();
        c.bfus_per_ntt = 16;
        assert!(c.validate().is_err());
        let mut c = EngineConfig::cham();
        c.reduce_buffer_cts = 1;
        assert!(c.validate().is_err());
        let mut c = ChamConfig::cham();
        c.engines = 0;
        assert!(c.validate().is_err());
        let mut c = ChamConfig::cham();
        c.clock_hz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_time() {
        let c = ChamConfig::cham();
        assert!((c.cycle_time() - 1.0 / 300e6).abs() < 1e-18);
    }
}
