//! Cross-crate integration: HeteroLR and Beaver triples end to end,
//! including failure paths.

use cham::apps::beaver::BeaverGenerator;
use cham::apps::datasets::VerticalDataset;
use cham::apps::lr::{train_plain, HeteroLr, LrBackend, LrConfig};
use cham::apps::protocol::Transcript;
use cham::he::hmvp::Matrix;
use cham::he::prelude::ChamParams;
use rand::SeedableRng;

#[test]
fn heterolr_bfv_learns_and_logs_protocol() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let data = VerticalDataset::generate(96, 3, 3, 0.02, &mut rng);
    let cfg = LrConfig {
        iterations: 10,
        learning_rate: 1.0,
        batch_size: None,
        backend: LrBackend::Bfv,
        degree: 256,
    };
    let lr = HeteroLr::new(cfg.clone(), &mut rng).unwrap();
    let result = lr.train(&data, &mut rng).unwrap();
    assert!(*result.accuracy_history.last().unwrap() > 0.8);
    // Accuracy should broadly track the plain reference.
    let plain = train_plain(&data, &cfg);
    let diff =
        (result.accuracy_history.last().unwrap() - plain.accuracy_history.last().unwrap()).abs();
    assert!(diff < 0.15, "encrypted vs plain accuracy gap {diff}");
    // Protocol shape: A->B, B->A, B->arbiter, arbiter->parties each round.
    assert!(result.transcript.rounds() >= cfg.iterations * 3);
    assert!(result.transcript.total_bytes() > 10_000);
}

#[test]
fn heterolr_minibatch_tiling() {
    // Batch larger than the ring degree exercises HMVP column tiling
    // inside the gradient step.
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let data = VerticalDataset::generate(600, 2, 2, 0.02, &mut rng);
    let cfg = LrConfig {
        iterations: 4,
        learning_rate: 1.0,
        batch_size: Some(600), // > degree 256 -> 3 column tiles
        backend: LrBackend::Bfv,
        degree: 256,
    };
    let lr = HeteroLr::new(cfg, &mut rng).unwrap();
    let result = lr.train(&data, &mut rng).unwrap();
    assert_eq!(result.accuracy_history.len(), 4);
    assert!(*result.accuracy_history.last().unwrap() > 0.6);
}

#[test]
fn beaver_triples_across_backends_agree() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let params = ChamParams::insecure_test_default().unwrap();
    let t = *params.plain_modulus();
    let generator = BeaverGenerator::new(&params, &mut rng).unwrap();
    let w = Matrix::random(16, 32, t.value(), &mut rng);

    let mut transcript = Transcript::new();
    let coeff = generator
        .generate(&w, 2, &mut transcript, &mut rng)
        .unwrap();
    for tr in &coeff {
        assert!(tr.verify(&w, &t).unwrap());
    }

    let (batch, rotations) = generator.generate_batch_baseline(&w, 2, &mut rng).unwrap();
    for tr in &batch {
        assert!(tr.verify(&w, &t).unwrap());
    }
    // The baseline pays O(rows·log N) rotations; the coefficient path pays
    // rows−1 pack reductions. For 16 rows at N=256 the baseline needs
    // 16·log2(128) = 112 rotations.
    assert_eq!(rotations, 2 * 16 * 7);
}

#[test]
fn beaver_rejects_oversized_requests() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let params = ChamParams::insecure_test_default().unwrap();
    let generator = BeaverGenerator::new(&params, &mut rng).unwrap();
    // Batch baseline capacity is N/2 columns.
    let w = Matrix::random(8, 256, 65537, &mut rng);
    assert!(generator.generate_batch_baseline(&w, 1, &mut rng).is_err());
}
