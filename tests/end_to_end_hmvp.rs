//! Cross-crate integration: the full HMVP pipeline through the simulator,
//! with functional verification against plain arithmetic and cycle-model
//! consistency checks.

use cham::he::hmvp::{Hmvp, Matrix};
use cham::he::prelude::*;
use cham::sim::config::ChamConfig;
use cham::sim::engine::SimulatedCham;
use cham::sim::hetero::{HeteroSystem, HmvpJob};
use cham::sim::pipeline::{HmvpCycleModel, RingShape};
use rand::{Rng, SeedableRng};

fn setup(
    seed: u64,
) -> (
    ChamParams,
    SecretKey,
    Encryptor,
    Decryptor,
    GaloisKeys,
    rand::rngs::StdRng,
) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let params = ChamParams::insecure_test_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
    (params, sk, enc, dec, gkeys, rng)
}

#[test]
fn simulator_and_software_agree_across_shapes() {
    let (params, _, enc, dec, gkeys, mut rng) = setup(1);
    let sim = SimulatedCham::new(ChamConfig::cham(), &params).unwrap();
    let t = params.plain_modulus().value();
    for (m, n) in [(4usize, 4usize), (32, 16), (16, 300), (300, 16)] {
        let a = Matrix::random(m, n, t, &mut rng);
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let secs = sim
            .verify_roundtrip(&a, &v, &enc, &dec, &gkeys, &mut rng)
            .unwrap();
        assert!(secs > 0.0, "shape {m}x{n}");
    }
}

#[test]
fn two_party_share_semantics() {
    // A holds one share, B the other (paper §II-F): B combines shares
    // homomorphically before the product; reconstruction matches plain.
    let (params, _, enc, dec, gkeys, mut rng) = setup(2);
    let t = *params.plain_modulus();
    let n = 32;
    let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
    let (share_a, share_b) = cham::apps::secretshare::share_vector(&v, &t, &mut rng);

    let hmvp = Hmvp::new(&params);
    // A encrypts her share and sends it to B.
    let ct_a = hmvp.encrypt_vector(&share_a, &enc, &mut rng).unwrap();
    // B adds his share into the ciphertext (add_plain) then multiplies.
    let coder = hmvp.encoder();
    let pt_b = coder.encode_vector(&share_b).unwrap();
    let combined: Vec<RlweCiphertext> = ct_a
        .iter()
        .map(|ct| cham::he::ops::add_plain(ct, &pt_b, &params).unwrap())
        .collect();
    let a = Matrix::random(16, n, t.value(), &mut rng);
    let em = hmvp.encode_matrix(&a).unwrap();
    let result = hmvp.multiply(&em, &combined, &gkeys).unwrap();
    let got = hmvp.decrypt_result(&result, &dec).unwrap();
    assert_eq!(got, a.mul_vector_mod(&v, &t).unwrap());
}

#[test]
fn cycle_model_monotonicity() {
    let model = HmvpCycleModel::new(ChamConfig::cham(), RingShape::cham()).unwrap();
    // More rows, more columns, fewer engines — all increase time.
    let base = model.hmvp_seconds(1024, 4096);
    assert!(model.hmvp_seconds(2048, 4096) > base);
    assert!(model.hmvp_seconds(1024, 8192) > base);
    let single = HmvpCycleModel::new(
        ChamConfig {
            engines: 1,
            ..ChamConfig::cham()
        },
        RingShape::cham(),
    )
    .unwrap();
    assert!(single.hmvp_seconds(1024, 4096) > base);
}

#[test]
fn hetero_schedule_scales_with_jobs() {
    let model = HmvpCycleModel::new(ChamConfig::cham(), RingShape::cham()).unwrap();
    let sys = HeteroSystem::new(model, 2, 12e9).unwrap();
    let one = sys.run(
        &[HmvpJob {
            rows: 1024,
            cols: 4096,
        }],
        &[],
    );
    let four = sys.run(
        &[HmvpJob {
            rows: 1024,
            cols: 4096,
        }; 4],
        &[],
    );
    assert!(four.makespan > one.makespan);
    // Overlap means 4 jobs cost less than 4x one job.
    assert!(four.makespan < 4.0 * one.makespan);
}

#[test]
fn noise_survives_paper_scale_dot_product() {
    // At the paper's full N = 4096 parameters: encrypt, one dot product,
    // rescale, extract, small pack — checking the noise trajectory the
    // paper quotes (≈30 bit after multiply, smaller after rescale).
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let params = ChamParams::cham_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let coder = CoeffEncoder::new(&params);
    let t = params.plain_modulus().value();
    let n = params.degree();
    let row: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
    let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
    let ct = enc.encrypt_augmented(&coder.encode_vector(&v).unwrap(), &mut rng);
    let prod = cham::he::ops::mul_plain(&ct, &coder.encode_row(&row).unwrap(), &params).unwrap();
    let before = dec.decrypt_with_noise(&prod);
    // Paper: ~30-bit noise after the multiply.
    assert!(
        before.noise_bits > 20.0 && before.noise_bits < 36.0,
        "post-multiply noise {} bits",
        before.noise_bits
    );
    let rescaled = cham::he::ops::rescale(&prod, &params).unwrap();
    let after = dec.decrypt_with_noise(&rescaled);
    assert!(
        after.noise_bits < before.noise_bits - 10.0,
        "rescale should remove ~log2(p) bits: {} -> {}",
        before.noise_bits,
        after.noise_bits
    );
    // The dot product decodes correctly.
    let tm = params.plain_modulus();
    let expect = row
        .iter()
        .zip(&v)
        .fold(0u64, |acc, (&a, &b)| tm.add(acc, tm.mul(a, b)));
    assert_eq!(after.plaintext.values()[0], expect);

    // Pack 16 such results at full parameters.
    let gkeys = GaloisKeys::generate_for_packing(&sk, 4, &mut rng).unwrap();
    let lwes: Vec<_> = (0..16)
        .map(|_| cham::he::extract::extract_lwe(&rescaled, 0).unwrap())
        .collect();
    let packed = cham::he::pack::pack_lwes(&lwes, &gkeys, &params).unwrap();
    let report = dec.decrypt_with_noise(&packed.ciphertext);
    assert!(
        report.budget_bits > 0.0,
        "packed budget {}",
        report.budget_bits
    );
    let decoded = packed.decode(&report.plaintext, &params).unwrap();
    assert!(decoded.iter().all(|&x| x == expect));
}
