//! Workspace-level property tests (proptest) on the cross-crate
//! invariants: HMVP == plain product, pack/extract inverses, simulator
//! cost-model sanity, secret-sharing linearity.

use cham::he::hmvp::{Hmvp, Matrix};
use cham::he::prelude::*;
use cham::sim::config::ChamConfig;
use cham::sim::pipeline::{HmvpCycleModel, RingShape};
use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use std::sync::OnceLock;

struct Fixture {
    params: ChamParams,
    enc: Encryptor,
    dec: Decryptor,
    gkeys: GaloisKeys,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1);
        let params = ChamParams::insecure_test_default().unwrap();
        let sk = SecretKey::generate(&params, &mut rng);
        let enc = Encryptor::new(&params, &sk);
        let dec = Decryptor::new(&params, &sk);
        let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
        Fixture {
            params,
            enc,
            dec,
            gkeys,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hmvp_matches_plain_product(
        seed in any::<u64>(),
        m in 1usize..24,
        n in 1usize..48,
    ) {
        let fix = fixture();
        let t = fix.params.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, n, t.value(), &mut rng);
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
        let hmvp = Hmvp::new(&fix.params);
        let cts = hmvp.encrypt_vector(&v, &fix.enc, &mut rng).unwrap();
        let em = hmvp.encode_matrix(&a).unwrap();
        let result = hmvp.multiply(&em, &cts, &fix.gkeys).unwrap();
        let got = hmvp.decrypt_result(&result, &fix.dec).unwrap();
        prop_assert_eq!(got, a.mul_vector_mod(&v, t).unwrap());
    }

    #[test]
    fn encrypt_is_homomorphic_for_addition(
        seed in any::<u64>(),
        len in 1usize..32,
    ) {
        let fix = fixture();
        let t = fix.params.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coder = CoeffEncoder::new(&fix.params);
        let xs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..t.value())).collect();
        let ys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..t.value())).collect();
        let cx = fix.enc.encrypt_augmented(&coder.encode_vector(&xs).unwrap(), &mut rng);
        let cy = fix.enc.encrypt_augmented(&coder.encode_vector(&ys).unwrap(), &mut rng);
        let sum = fix.dec.decrypt(&cx.add(&cy).unwrap());
        for i in 0..len {
            prop_assert_eq!(sum.values()[i], t.add(xs[i], ys[i]));
        }
    }

    #[test]
    fn extract_then_pack_roundtrips(
        seed in any::<u64>(),
        count in 1usize..12,
    ) {
        let fix = fixture();
        let t = fix.params.plain_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coder = CoeffEncoder::new(&fix.params);
        let values: Vec<u64> = (0..count).map(|_| rng.gen_range(0..t.value())).collect();
        let lwes: Vec<_> = values
            .iter()
            .map(|&v| {
                let ct = fix.enc.encrypt(&coder.encode_vector(&[v]).unwrap(), &mut rng);
                cham::he::extract::extract_lwe(&ct, 0).unwrap()
            })
            .collect();
        let packed = cham::he::pack::pack_lwes(&lwes, &fix.gkeys, &fix.params).unwrap();
        let pt = fix.dec.decrypt(&packed.ciphertext);
        prop_assert_eq!(packed.decode(&pt, &fix.params).unwrap(), values);
    }

    #[test]
    fn cycle_model_is_positive_and_monotone_in_rows(
        m in 1usize..8192,
        n in 1usize..8192,
    ) {
        let model = HmvpCycleModel::new(ChamConfig::cham(), RingShape::cham()).unwrap();
        let t1 = model.hmvp_seconds(m, n);
        let t2 = model.hmvp_seconds(m + 64, n);
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn secret_shares_are_linear(
        x in 0u64..65537,
        y in 0u64..65537,
        seed in any::<u64>(),
    ) {
        let t = cham::math::Modulus::new(65537).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (x1, x2) = cham::apps::secretshare::share_scalar(x, &t, &mut rng);
        let (y1, y2) = cham::apps::secretshare::share_scalar(y, &t, &mut rng);
        let s = cham::apps::secretshare::reconstruct_scalar(t.add(x1, y1), t.add(x2, y2), &t);
        prop_assert_eq!(s, t.add(x, y));
    }
}
