//! Cross-crate integration: serialized two-party protocol flow (keys and
//! ciphertexts crossing a byte boundary), wire-parser robustness against
//! corruption, and the Delphi online inference phase end to end.

use cham::apps::beaver::BeaverGenerator;
use cham::apps::fixed::FixedCodec;
use cham::apps::inference::MlpInference;
use cham::apps::protocol::Transcript;
use cham::he::hmvp::{Hmvp, Matrix};
use cham::he::prelude::*;
use cham::he::wire;
use rand::{Rng, SeedableRng};

#[test]
fn serialized_two_party_hmvp() {
    // Party A's artifacts cross to party B as bytes and back; the result
    // returns as bytes too — the full Fig. 1 dataflow at wire fidelity.
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let params = ChamParams::insecure_test_default().unwrap();
    let t = params.plain_modulus();

    // --- Party A: keys, encrypted vector, serialized. ---
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let dec = Decryptor::new(&params, &sk);
    let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng).unwrap();
    let hmvp = Hmvp::new(&params);
    let n = 48;
    let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.value())).collect();
    let ct = hmvp.encrypt_vector(&v, &enc, &mut rng).unwrap().remove(0);
    let indices: Vec<usize> = (1..=params.max_pack_log())
        .map(|j| (1usize << j) + 1)
        .collect();
    let wire_ct = wire::rlwe_to_bytes(&ct);
    let wire_keys = wire::galois_keys_to_bytes(&gkeys, &indices).unwrap();

    // --- Party B: deserialize, compute, serialize the result. ---
    let ct_b = wire::rlwe_from_bytes(&wire_ct, &params).unwrap();
    let gkeys_b = wire::galois_keys_from_bytes(&wire_keys, &params).unwrap();
    let a = Matrix::random(16, n, t.value(), &mut rng);
    let em = hmvp.encode_matrix(&a).unwrap();
    let result = hmvp.multiply(&em, &[ct_b], &gkeys_b).unwrap();
    let wire_out = wire::rlwe_to_bytes(&result.packed[0].ciphertext);

    // --- Party A: deserialize and decrypt. ---
    let out_ct = wire::rlwe_from_bytes(&wire_out, &params).unwrap();
    let pt = dec.decrypt(&out_ct);
    let got = result.packed[0].decode(&pt, &params).unwrap();
    assert_eq!(got, a.mul_vector_mod(&v, t).unwrap());
}

#[test]
fn wire_parser_never_panics_on_corruption() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
    let params = ChamParams::insecure_test_default().unwrap();
    let sk = SecretKey::generate(&params, &mut rng);
    let enc = Encryptor::new(&params, &sk);
    let coder = CoeffEncoder::new(&params);
    let ct = enc.encrypt(&coder.encode_vector(&[1, 2, 3]).unwrap(), &mut rng);
    let good = wire::rlwe_to_bytes(&ct);

    // Random single-byte corruptions: must return Ok or Err, never panic,
    // and a corrupted header must never be accepted as a different kind.
    for _ in 0..300 {
        let mut bad = good.clone();
        let pos = rng.gen_range(0..bad.len());
        bad[pos] ^= 1 << rng.gen_range(0..8);
        let _ = wire::rlwe_from_bytes(&bad, &params);
        let _ = wire::lwe_from_bytes(&bad, &params);
        let _ = wire::plaintext_from_bytes(&bad, &params);
        let _ = wire::galois_keys_from_bytes(&bad, &params);
    }
    // Random truncations.
    for _ in 0..100 {
        let cut = rng.gen_range(0..good.len());
        let _ = wire::rlwe_from_bytes(&good[..cut], &params);
    }
    // Pure noise.
    for _ in 0..100 {
        let len = rng.gen_range(0..256);
        let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert!(wire::rlwe_from_bytes(&noise, &params).is_err());
    }
}

#[test]
fn delphi_online_inference_end_to_end() {
    // Preprocessing (HE Beaver triples) + online (masked linear layers):
    // the full Delphi flow over this repository's stack.
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let params = ChamParamsBuilder::new()
        .degree(256)
        .plain_modulus((1 << 24) + 1)
        .build()
        .unwrap();
    let generator = BeaverGenerator::new(&params, &mut rng).unwrap();
    let codec = FixedCodec::new(*params.plain_modulus(), 6).unwrap();
    let t = params.plain_modulus();

    // Quantized 3-layer MLP.
    let quant = |rows: usize, cols: usize, rng: &mut rand::rngs::StdRng| {
        let data: Vec<u64> = (0..rows * cols)
            .map(|_| t.from_signed(rng.gen_range(-64..=64)))
            .collect();
        Matrix::from_data(rows, cols, data).unwrap()
    };
    let weights = vec![
        quant(10, 12, &mut rng),
        quant(6, 10, &mut rng),
        quant(2, 6, &mut rng),
    ];
    let mut transcript = Transcript::new();
    let mlp = MlpInference::setup(weights, &generator, codec, &mut transcript, &mut rng).unwrap();
    assert_eq!(mlp.layer_count(), 3);
    let preprocessing_bytes = transcript.total_bytes();
    assert!(preprocessing_bytes > 0);

    let x: Vec<f64> = (0..12).map(|i| ((i * 7) % 5) as f64 / 5.0 - 0.4).collect();
    let online = mlp.infer(&x, &mut transcript).unwrap();
    let plain = mlp.infer_plain(&x).unwrap();
    assert_eq!(online.len(), 2);
    for (a, b) in online.iter().zip(&plain) {
        assert!((a - b).abs() < 1e-9, "online {a} vs plain {b}");
    }
    // The online phase is crypto-free: its traffic is tiny next to the
    // HE preprocessing.
    let online_bytes = transcript.total_bytes() - preprocessing_bytes;
    assert!(
        online_bytes * 10 < preprocessing_bytes,
        "online {online_bytes} vs prep {preprocessing_bytes}"
    );
}
