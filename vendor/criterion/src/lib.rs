//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the small API slice the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: a short warm-up, then `sample_size` timed samples
//! whose minimum/mean are printed per benchmark. No statistics engine,
//! no HTML reports; results are indicative, not rigorous.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (accepted and echoed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Sampling knobs shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Sampling {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Sampling {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

fn run_one(full_name: &str, sampling: Sampling, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: how long does one iteration take?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = sampling.measurement_time.max(Duration::from_millis(1));
    let per_sample = budget / sampling.sample_size.max(1) as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sampling.sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / sampling.sample_size.max(1) as u32;
    println!(
        "bench {full_name:<48} min {:>12?}  mean {:>12?}  ({} iters x {} samples)",
        best,
        mean,
        iters,
        sampling.sample_size.max(1)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sampling: Sampling,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sampling.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.sampling.measurement_time = d;
        self
    }

    /// Records the per-iteration throughput (echoed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("bench {}: throughput {t:?}", self.name);
        self
    }

    /// Benchmarks `f` under `id` (a string or [`BenchmarkId`]).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sampling, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), self.sampling, &mut g);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sampling: Sampling,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sampling = self.sampling;
        BenchmarkGroup {
            name: name.into(),
            sampling,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sampling, &mut f);
        self
    }
}

/// Declares a group-runner function invoking each bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_group_and_function() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        let mut ran = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }
}
