//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* slice of the `rand 0.8` API it actually uses:
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64` only), and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, statistically solid for tests and benchmarks, and explicitly
//! **not** a cryptographically secure RNG. That matches how the
//! reproduction uses it: seeded, reproducible test/bench streams (the
//! HE stack's security parameters are toy-sized anyway; see
//! `ChamParams::insecure_test_default`).

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Unbiased uniform draw from `[0, span)` for nonzero `span`.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span` that fits.
    let zone = u128::MAX - (u128::MAX % span + 1) % span;
    loop {
        let v = u128::sample(rng);
        if v <= zone {
            return v % span;
        }
    }
}

/// Value types `gen_range` can sample uniformly from a bounded range.
///
/// Mirrors real rand's shape: [`SampleRange`] has a single blanket impl
/// per range type, generic over `T: SampleUniform`, so type inference
/// unifies range-literal types with the result type exactly like the
/// upstream crate does.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + uniform_u128(rng, hi - lo)
    }

    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full-width inclusive range: every value is fair.
            return u128::sample(rng);
        }
        lo.wrapping_add(uniform_u128(rng, span))
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * <$t>::sample(rng)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * <$t>::sample(rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f64, f32);

/// Range types `gen_range` accepts for a value type `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed; **not** cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small generator is the same xoshiro core.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x: u128 = rng.gen_range(0..u128::from(u64::MAX) + 5);
            assert!(x < u128::from(u64::MAX) + 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-1i64..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_samples_all_widths() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u8 = rng.gen();
        let _: u32 = rng.gen();
        let _: u128 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
