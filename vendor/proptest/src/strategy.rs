//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
