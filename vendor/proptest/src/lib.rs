//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, integer
//! range and `any::<T>()` strategies, `prop_map`, tuple strategies,
//! `collection::vec`, and `sample::select`. Semantics differ from real
//! proptest in one deliberate way: there is **no shrinking** — a failing
//! case reports the test name, case index, and seed so it can be replayed
//! deterministically (every test derives its RNG seed from its name, so
//! failures are stable across runs).

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Test-case configuration and failure plumbing.

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test path.
    pub fn seed_for(name: &str) -> u64 {
        name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
}

pub mod arbitrary {
    //! `any::<T>()` — uniform over the whole domain of `T`.

    use crate::strategy::Strategy;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Marker strategy for [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Uniform strategy over the full domain of `T`.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> T {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use rand::Rng;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from
    /// `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use crate::strategy::Strategy;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option set");
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod prelude {
    //! The imports property tests are expected to glob.

    /// `prop::...` paths (e.g. `prop::sample::select`) resolve to this
    /// crate, mirroring real proptest's prelude.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Wraps property functions in a deterministic randomized runner.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, ys in vec(any::<u64>(), 4)) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __pt_rng =
                    <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
                for __pt_case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)+
                    let __pt_result = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __pt_result {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            __pt_case + 1,
                            config.cases,
                            seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        // `match` (as in std's assert_eq!) extends temporaries from the
        // operand expressions over the whole arm body.
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{}` != `{}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, y in -3i64..=3) {
            prop_assert!(x < 10);
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in vec(0u64..100, 1..16),
            w in vec(any::<u64>(), 4),
            pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(pair <= 6);
        }

        #[test]
        fn select_picks_from_set(x in prop::sample::select(vec![1usize, 2, 4, 8])) {
            prop_assert!([1, 2, 4, 8].contains(&x));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u8>()) {
            prop_assert!(u64::from(x) < 256);
        }
    }

    #[test]
    #[should_panic(expected = "proptest inner failed")]
    fn failing_case_reports() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
