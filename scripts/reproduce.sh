#!/usr/bin/env bash
# Regenerates every paper table/figure into results/, then runs the test
# suite and Criterion benches. Usage: scripts/reproduce.sh [results_dir]
#
# RESULTS_JSON=1 additionally writes one structured run record
# ($OUT/<bin>.json, schema cham-run-record/v1) per figure binary and
# builds with the `telemetry` feature so the records carry the full
# counter/timer snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

RESULTS_JSON="${RESULTS_JSON:-0}"
FEATURES=()
if [[ "$RESULTS_JSON" == "1" ]]; then
  FEATURES=(--features telemetry)
fi

BINS=(
  fig2a_roofline
  fig2b_dse
  table2_resources
  table3_ntt
  fig6_throughput
  fig8_hmvp
  fig7ab_heterolr
  fig7c_beaver
  sensitivity
  headline
)

echo "== building workspace (release) =="
cargo build --workspace --release "${FEATURES[@]}"

for bin in "${BINS[@]}"; do
  echo "== $bin =="
  EXTRA=()
  if [[ "$RESULTS_JSON" == "1" ]]; then
    EXTRA=(--json "$OUT/$bin.json")
  fi
  cargo run --release -p cham-bench "${FEATURES[@]}" --bin "$bin" -- "${EXTRA[@]}" \
    | tee "$OUT/$bin.txt"
done

echo "== golden vectors (degree 4096, 1 per unit) =="
GOLDEN_EXTRA=()
if [[ "$RESULTS_JSON" == "1" ]]; then
  GOLDEN_EXTRA=(--json "$OUT/golden_dump.json")
fi
cargo run --release -p cham-bench "${FEATURES[@]}" --bin golden_dump -- \
  4096 1 1 "${GOLDEN_EXTRA[@]}" > "$OUT/golden_vectors.txt"

echo "== test suite =="
cargo test --workspace --release 2>&1 | tee "$OUT/test_output.txt"

echo "== criterion benches =="
cargo bench -p cham-bench 2>&1 | tee "$OUT/bench_output.txt"

echo "all artifacts in $OUT/"
