#!/usr/bin/env bash
# Regenerates every paper table/figure into results/, then runs the test
# suite and Criterion benches. Usage: scripts/reproduce.sh [results_dir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

BINS=(
  fig2a_roofline
  fig2b_dse
  table2_resources
  table3_ntt
  fig6_throughput
  fig8_hmvp
  fig7ab_heterolr
  fig7c_beaver
  sensitivity
  headline
)

echo "== building workspace (release) =="
cargo build --workspace --release

for bin in "${BINS[@]}"; do
  echo "== $bin =="
  cargo run --release -p cham-bench --bin "$bin" | tee "$OUT/$bin.txt"
done

echo "== golden vectors (degree 4096, 1 per unit) =="
cargo run --release -p cham-bench --bin golden_dump 4096 1 1 > "$OUT/golden_vectors.txt"

echo "== test suite =="
cargo test --workspace --release 2>&1 | tee "$OUT/test_output.txt"

echo "== criterion benches =="
cargo bench -p cham-bench 2>&1 | tee "$OUT/bench_output.txt"

echo "all artifacts in $OUT/"
