#!/usr/bin/env bash
# bench_guard.sh — compare two cham-run-record/v1 JSON files and fail on
# performance regressions beyond a tolerance.
#
# Usage:
#   scripts/bench_guard.sh <baseline.json> <current.json>
#
# The guarded metric set is chosen by the record's "name" field:
#   table3_ntt       -> cpu_ntt_ops_per_sec, simd_speedup_fwd_ntt (higher
#                       is better), ntt_lazy_seconds, ntt_simd_seconds
#                       (lower is better); additionally fails on a silent
#                       scalar fallback — a record whose params say the
#                       host should vectorize (simd_expect_vector = 1) but
#                       whose resolved backend is scalar (simd_lanes <= 1)
#   fig8_hmvp        -> dot_phase_serial_seconds, dot_phase_parallel_seconds,
#                       dot_phase_unfused_seconds (lower is better)
#   serve_throughput -> served_seconds, latency_p99_ns (lower is better),
#                       speedup (higher is better)
#   serve_cluster    -> latency_p99_ns (lower is better),
#                       goodput_rps (higher is better); failed_requests
#                       gates at exactly zero regardless of tolerance
#   serve_store      -> cold/warm_first_result_seconds (lower is better),
#                       warm_speedup (higher is better); warm_matrix_encodes
#                       and warm_chunks_sent gate at exactly zero — a warm
#                       restart that re-encodes or re-streams is a
#                       persistence bug, not a perf regression
#   serve_repair     -> time_to_converged_seconds (lower is better);
#                       failed_requests and post_repair_inventory_diff gate
#                       at exactly zero — a lost request during the outage
#                       or a segment repair left behind is a self-healing
#                       bug, not a perf regression
# Metrics missing from either file are skipped (so a pre-ablation baseline
# still guards the metrics it has — new observability fields like
# latency_p50/p99/p999_ns and the phase_ns.* map never fail on their first
# appearance). phase_ns.* entries present in both records are diffed
# informationally but never gate. Exits 1 if any guarded metric regresses
# by more than BENCH_GUARD_TOLERANCE (default 0.10 = 10%).
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 <baseline.json> <current.json>" >&2
    exit 2
fi

BASELINE="$1" CURRENT="$2" python3 - <<'PY'
import json
import os
import sys

tolerance = float(os.environ.get("BENCH_GUARD_TOLERANCE", "0.10"))

# metric -> direction ("higher" or "lower" is better), keyed by record name.
GUARDS = {
    "table3_ntt": {
        "cpu_ntt_ops_per_sec": "higher",
        "ntt_lazy_seconds": "lower",
        "ntt_simd_seconds": "lower",
        "simd_speedup_fwd_ntt": "higher",
    },
    "fig8_hmvp": {
        "dot_phase_serial_seconds": "lower",
        "dot_phase_parallel_seconds": "lower",
        "dot_phase_unfused_seconds": "lower",
    },
    "serve_throughput": {
        "served_seconds": "lower",
        "latency_p99_ns": "lower",
        "speedup": "higher",
    },
    "serve_cluster": {
        "latency_p99_ns": "lower",
        "goodput_rps": "higher",
    },
    "serve_store": {
        "cold_first_result_seconds": "lower",
        "warm_first_result_seconds": "lower",
        "warm_speedup": "higher",
    },
    "serve_repair": {
        "time_to_converged_seconds": "lower",
    },
}


def load(path):
    with open(path) as f:
        rec = json.load(f)
    if rec.get("schema") != "cham-run-record/v1":
        sys.exit(f"{path}: not a cham-run-record/v1 file")
    return rec


base = load(os.environ["BASELINE"])
cur = load(os.environ["CURRENT"])

if base.get("name") != cur.get("name"):
    sys.exit(f"record name mismatch: {base.get('name')!r} vs {cur.get('name')!r}")

name = cur.get("name")
guards = GUARDS.get(name)
if guards is None:
    sys.exit(f"no guarded metrics defined for record {name!r}")

failures = []
checked = 0
for metric, direction in guards.items():
    b = base.get("metrics", {}).get(metric)
    c = cur.get("metrics", {}).get(metric)
    if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
        print(f"  skip  {metric}: missing from baseline or current")
        continue
    if b <= 0:
        print(f"  skip  {metric}: non-positive baseline {b}")
        continue
    checked += 1
    if direction == "higher":
        change = (c - b) / b  # negative change = regression
    else:
        change = (b - c) / b  # current above baseline = regression
    status = "ok" if change >= -tolerance else "FAIL"
    print(
        f"  {status:>4}  {metric}: baseline {b:.6g} -> current {c:.6g} "
        f"({'+' if change >= 0 else ''}{change * 100:.1f}%, {direction} is better)"
    )
    if change < -tolerance:
        failures.append(metric)

# Correctness gates: some records carry counters that must be exactly
# zero — a single lost request is a resilience bug, not a 10% regression.
ZERO_GATES = {
    "serve_cluster": ["failed_requests"],
    "serve_store": ["warm_matrix_encodes", "warm_chunks_sent"],
    "serve_repair": ["failed_requests", "post_repair_inventory_diff"],
}
for metric in ZERO_GATES.get(name, []):
    c = cur.get("metrics", {}).get(metric)
    if not isinstance(c, (int, float)):
        print(f"  skip  {metric}: missing from current")
        continue
    checked += 1
    status = "ok" if c == 0 else "FAIL"
    print(f"  {status:>4}  {metric}: {c:.6g} (must be exactly 0)")
    if c != 0:
        failures.append(metric)

# Silent-scalar-fallback gate: the run record stamps two independent
# views of the SIMD story — `simd_expect_vector` is computed straight from
# host feature detection + the raw CHAM_SIMD request (bypassing the
# dispatch code entirely), while `simd_lanes` reports what the dispatcher
# actually resolved. If the host should vectorize but the dispatcher fell
# back to scalar, every "simd" metric above silently benchmarks scalar
# against scalar and passes — so this is a hard failure, not a tolerance.
if name == "table3_ntt":
    params = cur.get("params", {})
    expect = params.get("simd_expect_vector")
    lanes = params.get("simd_lanes")
    if isinstance(expect, (int, float)) and isinstance(lanes, (int, float)):
        checked += 1
        if expect == 1 and lanes <= 1:
            print(
                f"  FAIL  simd dispatch: host expects a vector backend but "
                f"resolved simd_lanes={lanes:.0f} (silent scalar fallback)"
            )
            failures.append("simd_silent_fallback")
        else:
            print(
                f"  ok    simd dispatch: simd_expect_vector={expect:.0f}, "
                f"simd_lanes={lanes:.0f}"
            )
    else:
        print("  skip  simd dispatch: simd_expect_vector/simd_lanes not in current params")

if checked == 0:
    sys.exit(f"{name}: no guarded metrics present in both records")

# Informational per-phase attribution diff: phase_ns.* keys are new
# observability output — report drift when both records carry them, never
# fail on them (a first run after the fields appeared has no baseline).
phase_keys = sorted(
    k
    for k in set(base.get("metrics", {})) | set(cur.get("metrics", {}))
    if k.startswith("phase_ns.")
)
for key in phase_keys:
    b = base.get("metrics", {}).get(key)
    c = cur.get("metrics", {}).get(key)
    if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
        print(f"  info  {key}: present in one record only (not gated)")
        continue
    if b > 0:
        drift = (c - b) / b
        print(
            f"  info  {key}: baseline {b:.6g} -> current {c:.6g} "
            f"({'+' if drift >= 0 else ''}{drift * 100:.1f}%, informational)"
        )
    else:
        print(f"  info  {key}: baseline {b:.6g} -> current {c:.6g} (informational)")

if failures:
    sys.exit(
        f"{name}: {len(failures)} metric(s) regressed more than "
        f"{tolerance * 100:.0f}%: {', '.join(failures)}"
    )
print(f"{name}: {checked} guarded metric(s) within {tolerance * 100:.0f}% tolerance")
PY
