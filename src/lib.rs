//! # cham — reproduction of the CHAM homomorphic-encryption accelerator
//!
//! CHAM (DAC 2023, Ren et al.) is a customized FPGA accelerator for fast
//! *homomorphic matrix-vector product* (HMVP) over coefficient-encoded
//! B/FV ciphertexts, with LWE↔RLWE ciphertext conversion. This workspace
//! reimplements the complete system in pure Rust:
//!
//! * [`math`] (crate `cham-math`) — modular arithmetic, NTTs (iterative
//!   and constant-geometry), polynomial rings, RNS,
//! * [`he`] (crate `cham-he`) — the B/FV scheme, extraction/packing, and
//!   the HMVP algorithm with its batch-encoded baselines,
//! * [`sim`] (crate `cham-sim`) — the cycle-level accelerator model
//!   (pipeline, resources, roofline, DSE, host/FPGA overlap),
//! * [`apps`] (crate `cham-apps`) — HeteroLR federated logistic
//!   regression, Beaver triple generation, and the Paillier baseline,
//! * [`serve`] (crate `cham-serve`) — the batched multi-worker HMVP
//!   service: framed TCP wire protocol, content-addressed session/key
//!   cache, bounded batching scheduler with deadlines and backpressure.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use cham::he::prelude::*;
//! use cham::he::hmvp::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ChamParams::insecure_test_default()?;
//! let sk = SecretKey::generate(&params, &mut rng);
//! let enc = Encryptor::new(&params, &sk);
//! let dec = Decryptor::new(&params, &sk);
//! let gkeys = GaloisKeys::generate_for_packing(&sk, params.max_pack_log(), &mut rng)?;
//!
//! // Encrypted A·v with the CHAM pipeline.
//! let t = params.plain_modulus();
//! let a = Matrix::random(8, 8, t.value(), &mut rng);
//! let v = vec![1u64; 8];
//! let hmvp = Hmvp::new(&params);
//! let cts = hmvp.encrypt_vector(&v, &enc, &mut rng)?;
//! let em = hmvp.encode_matrix(&a)?;
//! let result = hmvp.multiply(&em, &cts, &gkeys)?;
//! let out = hmvp.decrypt_result(&result, &dec)?;
//! assert_eq!(out, a.mul_vector_mod(&v, t)?);
//! # Ok::<(), cham::he::HeError>(())
//! ```

#![warn(missing_docs)]
/// Arithmetic substrate (re-export of `cham-math`).
pub use cham_math as math;

/// HE scheme and HMVP algorithm (re-export of `cham-he`).
pub use cham_he as he;

/// Cycle-level accelerator model (re-export of `cham-sim`).
pub use cham_sim as sim;

/// Privacy-preserving applications (re-export of `cham-apps`).
pub use cham_apps as apps;

/// Batched multi-worker HMVP serving layer (re-export of `cham-serve`).
pub use cham_serve as serve;
